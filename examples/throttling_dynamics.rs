//! Watch coordinated throttling work: wrap the policy so every sampling
//! interval's feedback and decisions are printed, then run a workload whose
//! phases exercise the paper's Table 3 heuristics.
//!
//! ```text
//! cargo run --release -p ecdp --example throttling_dynamics [workload]
//! ```

use ecdp::profile::profile_workload;
use ecdp::system::{CompilerArtifacts, SystemBuilder, SystemKind};
use sim_core::{IntervalFeedback, ThrottleDecision, ThrottlePolicy};
use throttle::CoordinatedThrottle;
use workloads::{registry, InputSet};

/// A logging decorator for any throttling policy.
struct Logged<P> {
    inner: P,
    interval: u32,
}

impl<P: ThrottlePolicy> ThrottlePolicy for Logged<P> {
    fn name(&self) -> &'static str {
        "logged"
    }

    fn adjust(&mut self, feedback: &[IntervalFeedback]) -> Vec<ThrottleDecision> {
        let decisions = self.inner.adjust(feedback);
        self.interval += 1;
        if self.interval <= 30 {
            print!("interval {:>3}:", self.interval);
            let names = ["stream", "cdp"];
            for (i, (f, d)) in feedback.iter().zip(&decisions).enumerate() {
                print!(
                    "  {}[acc={:.2} cov={:.2} {:?} -> {:?}]",
                    names.get(i).unwrap_or(&"pf"),
                    f.accuracy,
                    f.coverage,
                    f.level,
                    d
                );
            }
            println!();
        }
        decisions
    }
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "pfast".to_string());
    let workload = registry::lookup(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name}");
        std::process::exit(1);
    });
    let train = workload.generate(InputSet::Train);
    let artifacts = CompilerArtifacts::from_profile(&profile_workload(&train));
    let reference = workload.generate(InputSet::Ref);

    println!("== {name}: coordinated throttling, first 30 intervals ==");
    let mut machine = SystemBuilder::new(SystemKind::StreamEcdpThrottled)
        .artifacts(&artifacts)
        .build();
    machine.set_throttle(Box::new(Logged {
        inner: CoordinatedThrottle::default(),
        interval: 0,
    }));
    let stats = machine.run(&reference).expect("run");
    println!(
        "\nfinished: IPC {:.3}, BPKI {:.1}, {} sampling intervals total",
        stats.ipc(),
        stats.bpki(),
        stats.intervals
    );
    for p in &stats.prefetchers {
        println!(
            "  {}: issued {} used {} ({:.0}% accurate, {} late)",
            p.name,
            p.issued,
            p.used,
            p.accuracy() * 100.0,
            p.late
        );
    }
}
