//! Trace tooling: record a workload trace, save it to disk, reload it,
//! and verify the replay is bit-identical.
//!
//! ```text
//! cargo run --release -p ecdp --example trace_tools [workload] [file.trc|file.xtrc]
//! ```
//!
//! The output extension picks the format:
//!
//! * `.trc` — the harness's compact resident format (the
//!   `BENCH_TRACE_CACHE` disk-cache workflow): save, reload, replay both
//!   copies and compare.
//! * `.xtrc` — the versioned *external* streamed-trace format accepted by
//!   `run_all --workload-file`: export, then replay it through
//!   `Machine::run_streamed` in bounded windows and compare against the
//!   resident run. This is how a `.xtrc` fixture for the bring-your-own-
//!   workload frontend is fabricated from a built-in kernel.

use std::fs::File;
use std::io::{BufReader, BufWriter};

use sim_core::{trace_io, ExternalTrace, Machine, MachineConfig, XtraceWriter};
use workloads::{registry, InputSet};

fn main() -> std::io::Result<()> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mst".to_string());
    let path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| format!("target/{name}-train.trc"));
    let workload = registry::lookup(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name}");
        std::process::exit(1);
    });

    println!("recording `{name}` (train input) ...");
    let trace = workload.generate(InputSet::Train);
    println!(
        "  {} ops / {} instructions / {} resident pages",
        trace.ops.len(),
        trace.instructions,
        trace.initial_memory.resident_pages()
    );

    let a = Machine::new(MachineConfig::default())
        .run(&trace)
        .expect("run");

    if path.ends_with(".xtrc") {
        let mut w = XtraceWriter::new(BufWriter::new(File::create(&path)?), &trace.initial_memory)?;
        for op in &trace.ops {
            w.push(op)?;
        }
        w.finish()?;
        let bytes = std::fs::metadata(&path)?.len();
        println!(
            "  exported external trace {path} ({:.1} MB)",
            bytes as f64 / 1e6
        );

        let mut xt = ExternalTrace::open(&path).unwrap_or_else(|e| {
            eprintln!("reopen failed: {e}");
            std::process::exit(1);
        });
        println!(
            "  reopened: {} ops, content hash {:016x}",
            xt.op_count(),
            xt.content_hash()
        );
        let b = Machine::new(MachineConfig::default())
            .run_streamed(&mut xt)
            .expect("streamed run");
        assert_eq!(a, b, "streamed replay must match the resident run");
        println!(
            "  replay check: {} cycles streamed in a {}-op window — identical ✓",
            b.cycles,
            xt.max_resident_ops()
        );
        return Ok(());
    }

    trace_io::write(&trace, &mut BufWriter::new(File::create(&path)?))?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("  saved to {path} ({:.1} MB)", bytes as f64 / 1e6);

    let reloaded = trace_io::read(&mut BufReader::new(File::open(&path)?))?;
    println!("  reloaded: {} ops", reloaded.ops.len());

    let b = Machine::new(MachineConfig::default())
        .run(&reloaded)
        .expect("run");
    assert_eq!(a.cycles, b.cycles, "replays must be identical");
    println!(
        "  replay check: {} cycles, {} bus transfers — identical both ways ✓",
        a.cycles, a.bus_transfers
    );
    Ok(())
}
