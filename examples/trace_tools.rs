//! Trace tooling: record a workload trace, save it in the compact binary
//! format, reload it, and verify the replay is bit-identical — the workflow
//! behind the harness's `BENCH_TRACE_CACHE` disk cache.
//!
//! ```text
//! cargo run --release -p ecdp --example trace_tools [workload] [file.trc]
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};

use sim_core::{trace_io, Machine, MachineConfig};
use workloads::{by_name, InputSet};

fn main() -> std::io::Result<()> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mst".to_string());
    let path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| format!("target/{name}-train.trc"));
    let workload = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name}");
        std::process::exit(1);
    });

    println!("recording `{name}` (train input) ...");
    let trace = workload.generate(InputSet::Train);
    println!(
        "  {} ops / {} instructions / {} resident pages",
        trace.ops.len(),
        trace.instructions,
        trace.initial_memory.resident_pages()
    );

    trace_io::write(&trace, &mut BufWriter::new(File::create(&path)?))?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("  saved to {path} ({:.1} MB)", bytes as f64 / 1e6);

    let reloaded = trace_io::read(&mut BufReader::new(File::open(&path)?))?;
    println!("  reloaded: {} ops", reloaded.ops.len());

    let a = Machine::new(MachineConfig::default())
        .run(&trace)
        .expect("run");
    let b = Machine::new(MachineConfig::default())
        .run(&reloaded)
        .expect("run");
    assert_eq!(a.cycles, b.cycles, "replays must be identical");
    println!(
        "  replay check: {} cycles, {} bus transfers — identical both ways ✓",
        a.cycles, a.bus_transfers
    );
    Ok(())
}
