//! Bring your own workload: build a linked data structure in simulated
//! memory, record its traversal as a trace, profile it, and see how much
//! ECDP + coordinated throttling helps.
//!
//! The example models an ordered-index range scan: 64-byte leaf records
//! `{key, payload_ptr, columns..., next}` where scans chase `next` and only
//! occasionally dereference `payload_ptr` — one beneficial and one harmful
//! pointer group, built from scratch with the public `sim-mem` + `sim-core`
//! APIs.
//!
//! ```text
//! cargo run --release -p ecdp --example custom_workload
//! ```

#![allow(clippy::unwrap_used)]

use ecdp::profile::profile_workload;
use ecdp::system::{CompilerArtifacts, SystemBuilder, SystemKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_core::{Trace, TraceBuilder};
use sim_mem::{layout, Heap, SimMemory};

const PC_KEY: u32 = 0x100;
const PC_NEXT: u32 = 0x104;
const PC_PAYLOAD: u32 = 0x108;

/// Builds the index and records `scans` range scans of `scan_len` entries.
fn generate(seed: u64, entries: usize, scans: usize, scan_len: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tb = TraceBuilder::new(SimMemory::new());
    let mut heap = Heap::new(layout::HEAP_BASE, layout::HEAP_LIMIT);

    // Allocate leaf nodes, scramble their link order (the index was built
    // by random insertions), attach payloads in a second phase.
    let mut nodes: Vec<u32> = (0..entries).map(|_| heap.alloc(64).unwrap()).collect();
    let mut heads = Vec::new();
    tb.setup(|mem| {
        use rand::seq::SliceRandom;
        nodes.shuffle(&mut rng);
        for (i, &n) in nodes.iter().enumerate() {
            mem.write_u32(n, rng.gen()); // key
            let payload = if rng.gen_bool(0.3) {
                heap.alloc(48).unwrap()
            } else {
                0
            };
            mem.write_u32(n + 4, payload);
            for w in 2..15 {
                // Inline columns: bounded values, never pointer-like.
                mem.write_u32(n + w * 4, rng.gen::<u32>() & 0xFFFF);
            }
            let next = if i + 1 < nodes.len() { nodes[i + 1] } else { 0 };
            mem.write_u32(n + 60, next);
        }
        heads = nodes.clone();
    });

    for _ in 0..scans {
        let mut cur = heads[rng.gen_range(0..heads.len())];
        let mut dep = None;
        for _ in 0..scan_len {
            if cur == 0 {
                break;
            }
            let (key, kid) = tb.load(PC_KEY, cur, dep);
            tb.compute(6);
            if key % 50 == 0 {
                // Rare payload dereference: the harmful pointer group.
                let (p, pid) = tb.load(PC_PAYLOAD, cur + 4, Some(kid));
                if p != 0 {
                    let _ = tb.load(PC_PAYLOAD, p, Some(pid));
                }
            }
            let (next, nid) = tb.load(PC_NEXT, cur + 60, Some(kid));
            cur = next;
            dep = Some(nid);
        }
        tb.compute(20);
    }
    tb.finish()
}

fn main() {
    println!("building a 60k-record scrambled ordered index ...");
    let train = generate(1, 40_000, 1_200, 120);
    let reference = generate(2, 60_000, 3_000, 150);

    let profile = profile_workload(&train);
    let (beneficial, harmful) = profile.counts();
    println!("profiled: {beneficial} beneficial / {harmful} harmful pointer groups");
    let artifacts = CompilerArtifacts::from_profile(&profile);

    let base = SystemBuilder::new(SystemKind::StreamOnly)
        .artifacts(&artifacts)
        .run(&reference)
        .expect("run")
        .stats;
    let cdp = SystemBuilder::new(SystemKind::StreamCdp)
        .artifacts(&artifacts)
        .run(&reference)
        .expect("run")
        .stats;
    let ours = SystemBuilder::new(SystemKind::StreamEcdpThrottled)
        .artifacts(&artifacts)
        .run(&reference)
        .expect("run")
        .stats;
    println!(
        "\n{:<24} {:>8} {:>9} {:>8}",
        "system", "IPC", "speedup", "BPKI"
    );
    for (label, s) in [
        ("stream baseline", &base),
        ("stream+CDP", &cdp),
        ("stream+ECDP+throttle", &ours),
    ] {
        println!(
            "{:<24} {:>8.3} {:>8.2}x {:>8.1}",
            label,
            s.ipc(),
            s.ipc() / base.ipc(),
            s.bpki()
        );
    }
    println!(
        "\nECDP accuracy {:.0}% vs CDP {:.0}% — the filter keeps the next-pointer chain\n\
         and drops the payload prefetches.",
        ours.prefetchers[1].accuracy() * 100.0,
        cdp.prefetchers[1].accuracy() * 100.0
    );
}
