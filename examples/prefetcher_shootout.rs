//! Prefetcher shootout: run one workload across every prefetching system in
//! the library — the single-workload version of the paper's Figures 7, 11,
//! 12 and 13.
//!
//! ```text
//! cargo run --release -p ecdp --example prefetcher_shootout [workload]
//! ```

use ecdp::profile::profile_workload;
use ecdp::system::{CompilerArtifacts, SystemBuilder, SystemKind};
use workloads::{registry, InputSet};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "health".to_string());
    let workload = registry::lookup(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name}");
        std::process::exit(1);
    });

    let train = workload.generate(InputSet::Train);
    let artifacts = CompilerArtifacts::from_profile(&profile_workload(&train));
    let reference = workload.generate(InputSet::Ref);

    let systems = [
        SystemKind::NoPrefetch,
        SystemKind::StreamOnly,
        SystemKind::StreamCdp,
        SystemKind::StreamEcdp,
        SystemKind::StreamEcdpThrottled,
        SystemKind::StreamDbp,
        SystemKind::StreamMarkov,
        SystemKind::GhbAlone,
        SystemKind::StreamCdpHwFilter,
        SystemKind::StreamEcdpFdp,
        SystemKind::StreamEcdpPab,
        SystemKind::OracleLds,
    ];

    let base = SystemBuilder::new(SystemKind::StreamOnly)
        .artifacts(&artifacts)
        .run(&reference)
        .expect("run")
        .stats;
    println!("workload: {name} ({} memory ops)\n", reference.memory_ops());
    println!(
        "{:<30} {:>8} {:>9} {:>8} {:>10}",
        "system", "IPC", "speedup", "BPKI", "L2 misses"
    );
    for kind in systems {
        let s = SystemBuilder::new(kind)
            .artifacts(&artifacts)
            .run(&reference)
            .expect("run")
            .stats;
        println!(
            "{:<30} {:>8.3} {:>8.2}x {:>8.1} {:>10}",
            kind.label(),
            s.ipc(),
            s.ipc() / base.ipc(),
            s.bpki(),
            s.l2_demand_misses
        );
    }
    println!("\n(OracleLds is the Figure 1 upper bound: every LDS miss becomes a hit.)");
}
