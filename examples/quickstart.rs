//! Quickstart: profile a workload, build the paper's full proposal
//! (ECDP + coordinated prefetcher throttling), and compare it against the
//! stream-prefetcher baseline and the original content-directed prefetcher.
//!
//! ```text
//! cargo run --release -p ecdp --example quickstart [workload]
//! ```

use ecdp::profile::profile_workload;
use ecdp::system::{CompilerArtifacts, SystemBuilder, SystemKind};
use workloads::{registry, InputSet};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mst".to_string());
    let workload = registry::lookup(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name}; try mst, health, xalancbmk, ...");
        std::process::exit(1);
    });

    // Step 1 — the "compiler": run the train input with unfiltered CDP and
    // classify every pointer group PG(load, offset) as beneficial/harmful.
    println!("profiling `{name}` on its train input ...");
    let train = workload.generate(InputSet::Train);
    let profile = profile_workload(&train);
    let (beneficial, harmful) = profile.counts();
    println!("  pointer groups: {beneficial} beneficial, {harmful} harmful");
    let artifacts = CompilerArtifacts::from_profile(&profile);
    println!(
        "  hint bit vectors emitted for {} static loads",
        artifacts.hints.len()
    );

    // Step 2 — evaluate on the ref input.
    let reference = workload.generate(InputSet::Ref);
    println!(
        "running the ref input ({} memory ops) on four systems ...\n",
        reference.memory_ops()
    );
    let base = SystemBuilder::new(SystemKind::StreamOnly)
        .artifacts(&artifacts)
        .run(&reference)
        .expect("run")
        .stats;
    println!(
        "{:<24} {:>8} {:>8} {:>10} {:>9}",
        "system", "IPC", "speedup", "BPKI", "CDP acc"
    );
    for kind in [
        SystemKind::StreamOnly,
        SystemKind::StreamCdp,
        SystemKind::StreamEcdp,
        SystemKind::StreamEcdpThrottled,
    ] {
        let stats = SystemBuilder::new(kind)
            .artifacts(&artifacts)
            .run(&reference)
            .expect("run")
            .stats;
        let acc = stats
            .prefetchers
            .get(1)
            .map_or("-".to_string(), |p| format!("{:.0}%", p.accuracy() * 100.0));
        println!(
            "{:<24} {:>8.3} {:>7.2}x {:>10.1} {:>9}",
            kind.label(),
            stats.ipc(),
            stats.ipc() / base.ipc(),
            stats.bpki(),
            acc
        );
    }
}
