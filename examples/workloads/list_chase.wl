# Minimal bring-your-own-workload spec: a singly linked list chased
# front to back, touching one data word per node.
#
#   cargo run --release -p bench --bin run_all -- --sweep \
#       --workload-file examples/workloads/list_chase.wl
#
# `seed` fixes the layout RNG, so two runs of this file are
# byte-identical. `repeat` is the ref-input traversal count; the train
# input halves it and the test input always runs one pass.
workload list_chase {
    seed 42;
    node Node { size 32; ptr next @ 24; field payload @ 0; }
    chain items: Node { count 4096; layout shuffled; }
    traverse items { order forward; repeat 4; visit { load payload; compute 12; } }
}
