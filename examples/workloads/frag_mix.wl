# Two allocation-graph policies in one file: a sequentially laid-out
# chain (stride-friendly, stream prefetcher territory) and a padded,
# fragmented chain whose chase defeats stride detection — the contrast
# the paper's content-directed prefetcher targets. A `.wl` file may
# declare any number of workloads; both names join the sweep grid.
workload seq_walk {
    seed 7;
    node Cell { size 16; ptr next @ 8; field val @ 0; }
    chain lane: Cell { count 8192; layout sequential; }
    traverse lane { order forward; repeat 2; visit { load val; compute 4; } }
}

workload frag_walk {
    seed 7;
    node Cell { size 16; ptr next @ 8; field val @ 0; }
    # 48 bytes of dead space between cells: consecutive nodes land on
    # different cache lines, so the chase is pointer-dependent loads
    # all the way down.
    chain lane: Cell { count 8192; layout padded 48; }
    traverse lane { order forward; repeat 2; visit { load val; compute 4; } }
}
