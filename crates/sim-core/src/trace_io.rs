//! Compact binary serialisation for [`Trace`]s.
//!
//! Workload generation is deterministic but not free (tens of milliseconds
//! to minutes per trace); experiments that run as separate processes can
//! cache traces on disk instead of regenerating them. The format is a
//! simple private container: a magic/version header, the sparse non-zero
//! 4 KB pages of the initial memory image, and the fixed-width op records.
//!
//! # Example
//!
//! ```
//! use sim_core::{trace_io, TraceBuilder};
//! use sim_mem::SimMemory;
//!
//! let mut tb = TraceBuilder::new(SimMemory::new());
//! tb.store(1, 0x4000_0000, 7, None);
//! tb.load(2, 0x4000_0000, None);
//! let trace = tb.finish();
//!
//! let mut buf = Vec::new();
//! trace_io::write(&trace, &mut buf)?;
//! let back = trace_io::read(&mut buf.as_slice())?;
//! assert_eq!(back.ops, trace.ops);
//! # Ok::<(), std::io::Error>(())
//! ```

use std::io::{self, Read, Write};

use sim_mem::SimMemory;

use crate::trace::{OpKind, Trace, TraceOp};

const MAGIC: &[u8; 8] = b"ECDPTRC1";
const PAGE_BYTES: usize = 4096;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Serialises a trace.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write(trace: &Trace, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;

    // Sparse memory image: page count, then (page index, 4096 raw bytes)
    // for every resident page with non-zero content.
    let image = &trace.initial_memory;
    let mut pages: Vec<(u32, [u8; PAGE_BYTES])> = Vec::new();
    for page_idx in image.resident_page_indices() {
        let base = page_idx * PAGE_BYTES as u32;
        let mut buf = [0u8; PAGE_BYTES];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = image.read_u8(base + i as u32);
        }
        if buf.iter().any(|&b| b != 0) {
            pages.push((page_idx, buf));
        }
    }
    write_u32(w, pages.len() as u32)?;
    for (idx, buf) in &pages {
        write_u32(w, *idx)?;
        w.write_all(buf)?;
    }

    // Ops.
    write_u64(w, trace.instructions)?;
    write_u32(w, trace.ops.len() as u32)?;
    for op in &trace.ops {
        let kind = match op.kind {
            OpKind::Load => 0u8,
            OpKind::Store => 1,
            OpKind::Compute => 2,
        };
        w.write_all(&[kind, u8::from(op.lds)])?;
        write_u32(w, op.pc)?;
        write_u32(w, op.addr)?;
        write_u32(w, op.value)?;
        write_u32(w, op.dep)?;
    }
    Ok(())
}

/// Deserialises a trace written by [`write()`].
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic/version or malformed records, and
/// propagates reader I/O errors.
pub fn read(r: &mut impl Read) -> io::Result<Trace> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an ECDP trace (bad magic)",
        ));
    }

    let mut memory = SimMemory::new();
    let page_count = read_u32(r)?;
    for _ in 0..page_count {
        let idx = read_u32(r)?;
        let mut buf = [0u8; PAGE_BYTES];
        r.read_exact(&mut buf)?;
        let base = idx
            .checked_mul(PAGE_BYTES as u32)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "page index overflow"))?;
        for (i, &b) in buf.iter().enumerate() {
            if b != 0 {
                memory.write_u8(base + i as u32, b);
            }
        }
    }

    let instructions = read_u64(r)?;
    let op_count = read_u32(r)?;
    let mut ops = Vec::with_capacity(op_count as usize);
    for _ in 0..op_count {
        let mut head = [0u8; 2];
        r.read_exact(&mut head)?;
        let kind = match head[0] {
            0 => OpKind::Load,
            1 => OpKind::Store,
            2 => OpKind::Compute,
            k => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad op kind {k}"),
                ))
            }
        };
        ops.push(TraceOp {
            pc: read_u32(r)?,
            addr: read_u32(r)?,
            value: read_u32(r)?,
            dep: read_u32(r)?,
            kind,
            lds: head[1] != 0,
        });
    }
    Ok(Trace {
        initial_memory: memory,
        ops,
        instructions,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn sample() -> Trace {
        let mut tb = TraceBuilder::new(SimMemory::new());
        tb.setup(|m| {
            m.write_u32(0x4000_0000, 0x4000_0040);
            m.write_u32(0x4000_0040, 0);
        });
        let (p, id) = tb.load(0x100, 0x4000_0000, None);
        let _ = tb.load(0x104, p, Some(id));
        tb.store(0x108, 0x4000_0080, 99, None);
        tb.compute(130); // chunks into 64 + 64 + 2
        tb.finish()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let mut buf = Vec::new();
        write(&t, &mut buf).unwrap();
        let back = read(&mut buf.as_slice()).unwrap();
        assert_eq!(back.ops, t.ops);
        assert_eq!(back.instructions, t.instructions);
        assert_eq!(
            back.initial_memory.read_u32(0x4000_0000),
            t.initial_memory.read_u32(0x4000_0000)
        );
        assert_eq!(back.initial_memory.read_u32(0x4000_0080), 0);
    }

    #[test]
    fn replay_of_deserialised_trace_matches() {
        let t = sample();
        let mut buf = Vec::new();
        write(&t, &mut buf).unwrap();
        let back = read(&mut buf.as_slice()).unwrap();
        let a = crate::Machine::new(crate::MachineConfig::default())
            .run(&t)
            .expect("run");
        let b = crate::Machine::new(crate::MachineConfig::default())
            .run(&back)
            .expect("run");
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.bus_transfers, b.bus_transfers);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read(&mut &b"NOTATRACE_______"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let t = sample();
        let mut buf = Vec::new();
        write(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read(&mut buf.as_slice()).is_err());
    }
}
