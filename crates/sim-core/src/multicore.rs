//! Multi-core simulation: private L1/L2/prefetchers per core, shared memory
//! request buffer, DRAM banks and data bus.
//!
//! Methodology follows the paper's multi-core experiments: every core runs
//! its own workload; when a core finishes its trace its statistics are
//! snapshotted and the core *restarts* the trace (with warm caches) so that
//! memory-system contention persists until the slowest core completes.

use crate::dram::Dram;
use crate::engine::{
    check_registration, restore_prefetcher_states, restore_throttle_state, save_prefetcher_states,
    save_throttle_state, CoreSim,
};
use crate::error::SimError;
use crate::obs::{ObsCollector, ObsConfig, RunTrace};
use crate::prefetcher::{NullObserver, Prefetcher};
use crate::snapshot::{config_fingerprint, CoreState, Snapshot, SnapshotError};
use crate::stats::RunStats;
use crate::throttling::{NoThrottle, ThrottlePolicy};
use crate::trace::{ResidentOps, Trace};
use crate::MachineConfig;
use std::sync::Arc;

/// Per-core prefetcher + throttling configuration for [`MultiMachine`].
pub struct CoreSetup {
    /// Prefetchers, registration order = [`crate::PrefetcherId`].
    pub prefetchers: Vec<Box<dyn Prefetcher>>,
    /// Throttling policy for this core.
    pub throttle: Box<dyn ThrottlePolicy>,
}

impl CoreSetup {
    /// A core with no prefetching and no throttling.
    pub fn bare() -> Self {
        CoreSetup {
            prefetchers: Vec::new(),
            throttle: Box::new(NoThrottle),
        }
    }
}

impl std::fmt::Debug for CoreSetup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreSetup")
            .field("prefetchers", &self.prefetchers.len())
            .finish()
    }
}

/// Results of a multi-core run.
#[derive(Debug, Clone)]
pub struct MultiRunStats {
    /// Per-core statistics, snapshotted when each core first completed its
    /// trace.
    pub per_core: Vec<RunStats>,
    /// Total bus transfers across all cores during the measured region.
    pub total_bus_transfers: u64,
    /// Per-core observability traces (empty unless enabled with
    /// [`MultiMachine::set_obs`]; one entry per core otherwise).
    pub traces: Vec<RunTrace>,
}

impl MultiRunStats {
    /// Weighted speedup against per-core alone IPCs (Snavely & Tullsen):
    /// `sum_i IPC_shared_i / IPC_alone_i`.
    pub fn weighted_speedup(&self, alone_ipc: &[f64]) -> f64 {
        self.per_core
            .iter()
            .zip(alone_ipc)
            .map(|(s, &a)| s.ipc() / a)
            .sum()
    }

    /// Harmonic-mean speedup (Luo et al.): `n / sum_i (IPC_alone_i /
    /// IPC_shared_i)`.
    pub fn hmean_speedup(&self, alone_ipc: &[f64]) -> f64 {
        let n = self.per_core.len() as f64;
        let denom: f64 = self
            .per_core
            .iter()
            .zip(alone_ipc)
            .map(|(s, &a)| a / s.ipc())
            .sum();
        n / denom
    }

    /// Unfairness: the maximum per-core slowdown (`IPC_alone / IPC_shared`)
    /// divided by the minimum — 1.0 means perfectly even degradation.
    pub fn unfairness(&self, alone_ipc: &[f64]) -> f64 {
        let slowdowns: Vec<f64> = self
            .per_core
            .iter()
            .zip(alone_ipc)
            .map(|(s, &a)| a / s.ipc().max(1e-12))
            .collect();
        let max = slowdowns.iter().cloned().fold(f64::MIN, f64::max);
        let min = slowdowns.iter().cloned().fold(f64::MAX, f64::min);
        max / min.max(1e-12)
    }
}

/// A chip multiprocessor: N cores with private cache hierarchies sharing the
/// DRAM system.
pub struct MultiMachine {
    config: Arc<MachineConfig>,
    cores: Vec<CoreSetup>,
    obs_config: Option<ObsConfig>,
    validate_config: Option<crate::validate::ValidateConfig>,
    warm_cycles: Option<u64>,
    wall_deadline: Option<std::time::Duration>,
    captured: Option<Snapshot>,
    resume: Option<Snapshot>,
}

impl MultiMachine {
    /// Creates a multi-core machine from per-core setups. The configuration
    /// is shared (not cloned) across all cores.
    pub fn new(config: impl Into<Arc<MachineConfig>>, cores: Vec<CoreSetup>) -> Self {
        MultiMachine {
            config: config.into(),
            cores,
            obs_config: None,
            validate_config: None,
            warm_cycles: None,
            wall_deadline: None,
            captured: None,
            resume: None,
        }
    }

    /// Caps the wall-clock time of a run, mirroring
    /// [`crate::Machine::set_wall_deadline`]: on overrun the run fails
    /// with [`SimError::DeadlineExceeded`] carrying a diagnostic
    /// snapshot of the first unfinished core. `None` disarms.
    pub fn set_wall_deadline(&mut self, deadline: Option<std::time::Duration>) -> &mut Self {
        self.wall_deadline = deadline;
        self
    }

    /// Enables observability collection on every core for subsequent runs.
    pub fn set_obs(&mut self, cfg: ObsConfig) -> &mut Self {
        self.obs_config = cfg.any().then_some(cfg);
        self
    }

    /// Opts every core into (or out of) the paper-conformance runtime
    /// invariants, mirroring [`crate::Machine::set_validate`]. Only the
    /// interval-boundary checks run here: per-core statistics are
    /// snapshotted mid-flight while rewound cores keep generating
    /// contention, so the end-of-run exact decomposition does not apply.
    pub fn set_validate(&mut self, cfg: crate::validate::ValidateConfig) -> &mut Self {
        self.validate_config = Some(cfg);
        self
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Arms warm-state capture, mirroring
    /// [`crate::Machine::set_warm_checkpoint`]: the next
    /// [`MultiMachine::run`] records a [`Snapshot`] of every core plus the
    /// shared DRAM system at the first visited cycle at or past `cycles`.
    /// Capture is a pure read; `None` disarms.
    pub fn set_warm_checkpoint(&mut self, cycles: Option<u64>) -> &mut Self {
        self.warm_cycles = cycles;
        self
    }

    /// Removes and returns the snapshot captured by the most recent run.
    pub fn take_snapshot(&mut self) -> Option<Snapshot> {
        self.captured.take()
    }

    /// Arms the next [`MultiMachine::run`] to resume from `snapshot`.
    /// Single-shot, and the forked run must replay the **same traces** the
    /// snapshot was captured on (see [`crate::Machine::fork_from`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SnapshotRejected`] when the snapshot's core
    /// count differs from this machine's, was captured under a different
    /// configuration (fingerprint mismatch), or any core's
    /// prefetcher/throttle registration does not match.
    pub fn fork_from(&mut self, snapshot: &Snapshot) -> Result<&mut Self, SimError> {
        let n = self.cores.len();
        if snapshot.cores.len() != n
            || snapshot.finished.len() != n
            || snapshot.bus_at_start.len() != n
        {
            return Err(SimError::SnapshotRejected(format!(
                "{n}-core machine cannot fork a {}-core snapshot",
                snapshot.cores.len()
            )));
        }
        let fp = config_fingerprint(&self.config);
        if snapshot.config_fp != fp {
            return Err(SimError::SnapshotRejected(format!(
                "configuration fingerprint {fp:#018x} != snapshot {:#018x}",
                snapshot.config_fp
            )));
        }
        for (c, (cs, setup)) in snapshot.cores.iter().zip(&self.cores).enumerate() {
            check_registration(cs, &setup.prefetchers, setup.throttle.as_ref(), c)?;
        }
        self.resume = Some(snapshot.clone());
        Ok(self)
    }

    /// Runs one trace per core until every core has completed its trace at
    /// least once.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] (with a diagnostic snapshot of the
    /// first unfinished core) when no core makes forward progress for the
    /// configured `deadlock_cycles`, or when the whole chip goes
    /// quiescent with unfinished work.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len()` differs from the core count.
    pub fn run(&mut self, traces: &[Trace]) -> Result<MultiRunStats, SimError> {
        assert_eq!(traces.len(), self.cores.len(), "one trace per core");
        let n = self.cores.len();
        let mut dram = Dram::new(self.config.dram.clone(), n as u32);
        let mut sims: Vec<CoreSim> = (0..n)
            .map(|i| {
                CoreSim::new(
                    i as u8,
                    Arc::clone(&self.config),
                    &traces[i].initial_memory,
                    traces[i].ops.len(),
                    self.cores[i].prefetchers.len(),
                    self.resume.is_some(),
                )
            })
            .collect();
        if let Some(cfg) = &self.obs_config {
            for sim in &mut sims {
                sim.obs = Some(Box::new(ObsCollector::new(*cfg)));
            }
        }
        if self.validate_config.is_some() {
            for sim in &mut sims {
                sim.validate =
                    crate::validate::runtime_validator_for(self.validate_config.as_ref());
            }
        }
        let mut observer = NullObserver;
        let mut snapshots: Vec<Option<RunStats>> = vec![None; n];
        let mut bus_at_start: Vec<u64> = vec![0; n];
        let mut now: u64 = 0;
        self.captured = None;
        if let Some(snap) = self.resume.take() {
            let rej = |e: SnapshotError| SimError::SnapshotRejected(e.to_string());
            for (c, cs) in snap.cores.iter().enumerate() {
                sims[c].restore_warm(cs).map_err(rej)?;
                restore_prefetcher_states(&mut self.cores[c].prefetchers, &cs.prefetchers)
                    .map_err(rej)?;
                restore_throttle_state(self.cores[c].throttle.as_mut(), &cs.throttle)
                    .map_err(rej)?;
            }
            dram.restore_state(&snap.dram).map_err(rej)?;
            snapshots.clone_from(&snap.finished);
            bus_at_start.clone_from(&snap.bus_at_start);
            now = snap.cycle;
        }
        let mut capture_at = self.warm_cycles.unwrap_or(u64::MAX);
        let wall = self
            .wall_deadline
            .map(|limit| (std::time::Instant::now(), limit));
        let mut wall_poll: u32 = 0;

        // Attribute a wedge to the first core that has not completed its
        // trace (rewound cores count as finished for blame purposes).
        let stuck_core_error =
            |sims: &[CoreSim], snapshots: &[Option<RunStats>], now, dram: &Dram| {
                let c = snapshots
                    .iter()
                    .position(Option::is_none)
                    .unwrap_or_default();
                SimError::Deadlock(sims[c].snapshot(now, dram))
            };

        while snapshots.iter().any(Option::is_none) {
            // Warm-state capture: a pure read of chip state at the top of
            // the loop, before this cycle's DRAM tick (same phase the
            // single-core engine captures at).
            if now >= capture_at {
                capture_at = u64::MAX;
                let snap = Snapshot {
                    cycle: now,
                    config_fp: config_fingerprint(&self.config),
                    cores: (0..n)
                        .map(|c| CoreState {
                            mem: Arc::new(sims[c].mem.clone()),
                            core: sims[c].save_warm(now),
                            prefetchers: save_prefetcher_states(&self.cores[c].prefetchers),
                            throttle: save_throttle_state(self.cores[c].throttle.as_ref()),
                        })
                        .collect(),
                    dram: dram.save_state(),
                    finished: snapshots.clone(),
                    bus_at_start: bus_at_start.clone(),
                };
                self.captured = Some(snap);
            }
            let mut activity = false;
            for completion in dram.tick(now) {
                if completion.request.is_write {
                    continue;
                }
                let c = completion.request.core as usize;
                sims[c].apply_completion(
                    completion,
                    now,
                    &mut self.cores[c].prefetchers,
                    &mut observer,
                );
                activity = true;
            }
            // Rotate core service order for fairness.
            for k in 0..n {
                let c = (k + (now as usize)) % n;
                let mut ops = ResidentOps(&traces[c].ops);
                activity |= sims[c].step(
                    &mut ops,
                    now,
                    &mut dram,
                    &mut self.cores[c].prefetchers,
                    &mut observer,
                );
                activity |= sims[c].issue_to_dram(&mut dram, now, &mut observer);
                let core = &mut self.cores[c];
                sims[c].maybe_end_interval(
                    &mut core.prefetchers,
                    core.throttle.as_mut(),
                    now,
                    dram.bus_transfers_for(c as u8),
                    dram.bus_busy_slack(),
                );
                if sims[c].finished() {
                    if snapshots[c].is_none() {
                        let mut s = sims[c].stats.clone();
                        s.cycles = now.max(1);
                        s.bus_transfers = dram.bus_transfers_for(c as u8) - bus_at_start[c];
                        s.bus_busy_cycles = s.bus_transfers * self.config.dram.bus_transfer_cycles;
                        for (i, p) in self.cores[c].prefetchers.iter().enumerate() {
                            s.prefetchers[i].name = p.name().to_string();
                        }
                        snapshots[c] = Some(s);
                    }
                    // Restart the trace to keep generating contention
                    // (unless everyone is done).
                    if snapshots.iter().any(Option::is_none) {
                        sims[c].rewind(&traces[c].initial_memory);
                    }
                }
            }

            // Watchdog: if *no* core retired or drained an MSHR within the
            // deadlock budget, the chip is livelocked even if prefetch
            // churn keeps "activity" alive.
            let newest_progress = sims.iter().map(CoreSim::last_progress).max().unwrap_or(0);
            if now.saturating_sub(newest_progress) >= self.config.deadlock_cycles {
                return Err(stuck_core_error(&sims, &snapshots, now, &dram));
            }
            // Wall-clock deadline, polled at the same coarse cadence as
            // the single-core engine (see `WALL_DEADLINE_POLL_ITERS`).
            if let Some((started, limit)) = wall {
                wall_poll += 1;
                if wall_poll >= crate::engine::WALL_DEADLINE_POLL_ITERS {
                    wall_poll = 0;
                    if started.elapsed() >= limit {
                        let c = snapshots
                            .iter()
                            .position(Option::is_none)
                            .unwrap_or_default();
                        return Err(SimError::DeadlineExceeded {
                            deadline_ms: limit.as_millis() as u64,
                            snapshot: sims[c].snapshot(now, &dram),
                        });
                    }
                }
            }

            if activity {
                now += 1;
                continue;
            }
            let dram_full = dram.is_full();
            if sims.iter().enumerate().any(|(c, s)| {
                s.has_immediate_work(&mut ResidentOps(&traces[c].ops), now, dram_full)
            }) {
                now += 1;
            } else {
                let mut next: Option<u64> = None;
                for s in &sims {
                    if let Some(e) = s.next_local_event(now) {
                        next = Some(next.map_or(e, |n: u64| n.min(e)));
                    }
                }
                if let Some(d) = dram.next_event(now) {
                    next = Some(next.map_or(d, |n| n.min(d)));
                }
                match next {
                    Some(e) => now = e,
                    // Fully quiescent with unfinished cores: no future
                    // event can change state — report immediately.
                    None => return Err(stuck_core_error(&sims, &snapshots, now, &dram)),
                }
            }
        }
        let _ = bus_at_start;

        for sim in &mut sims {
            if let Some(v) = sim.validate.take() {
                v.into_error()?;
            }
        }

        let traces = if self.obs_config.is_some() {
            sims.iter_mut()
                .map(|s| s.obs.take().map(|o| o.into_trace()).unwrap_or_default())
                .collect()
        } else {
            Vec::new()
        };
        Ok(MultiRunStats {
            per_core: snapshots.into_iter().flatten().collect(),
            total_bus_transfers: dram.bus_transfers(),
            traces,
        })
    }
}

impl std::fmt::Debug for MultiMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiMachine")
            .field("cores", &self.cores.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use sim_mem::{layout, SimMemory};

    fn stream_trace(len: u32, base_off: u32) -> Trace {
        let mut tb = TraceBuilder::new(SimMemory::new());
        for i in 0..len {
            tb.load(0x400, layout::HEAP_BASE + base_off + i * 64, None);
            tb.compute(4);
        }
        tb.finish()
    }

    #[test]
    fn two_cores_complete() {
        let cfg = MachineConfig::default();
        let mut mm = MultiMachine::new(cfg, vec![CoreSetup::bare(), CoreSetup::bare()]);
        let t0 = stream_trace(500, 0);
        let t1 = stream_trace(500, 0x100_0000);
        let r = mm.run(&[t0, t1]).expect("run");
        assert_eq!(r.per_core.len(), 2);
        for s in &r.per_core {
            assert_eq!(s.retired_instructions, 500 * 5);
            assert!(s.cycles > 0);
        }
        assert!(r.total_bus_transfers >= 1000);
    }

    #[test]
    fn contention_slows_cores_down() {
        let cfg = MachineConfig::default();
        let alone = {
            let mut m = crate::Machine::new(cfg.clone());
            m.run(&stream_trace(500, 0)).expect("run")
        };
        let mut mm = MultiMachine::new(
            cfg,
            vec![
                CoreSetup::bare(),
                CoreSetup::bare(),
                CoreSetup::bare(),
                CoreSetup::bare(),
            ],
        );
        let traces: Vec<Trace> = (0..4).map(|i| stream_trace(500, i * 0x100_0000)).collect();
        let r = mm.run(&traces).expect("run");
        // With four cores sharing the bus, at least one core must be slower
        // than running alone.
        assert!(
            r.per_core.iter().any(|s| s.cycles > alone.cycles),
            "expected shared-resource contention"
        );
    }

    #[test]
    fn forked_multicore_run_matches_cold_run() {
        let cfg = MachineConfig::default();
        let traces: Vec<Trace> = (0..2).map(|i| stream_trace(400, i * 0x100_0000)).collect();
        let mut cold = MultiMachine::new(cfg.clone(), vec![CoreSetup::bare(), CoreSetup::bare()]);
        cold.set_obs(ObsConfig::enabled());
        let base = cold.run(&traces).expect("run");

        let mut warm = MultiMachine::new(cfg.clone(), vec![CoreSetup::bare(), CoreSetup::bare()]);
        warm.set_obs(ObsConfig::enabled());
        let warm_at = base.per_core.iter().map(|s| s.cycles).max().expect("cores") / 2;
        warm.set_warm_checkpoint(Some(warm_at));
        let unperturbed = warm.run(&traces).expect("run");
        assert_eq!(
            base.per_core, unperturbed.per_core,
            "capture is a pure read"
        );
        assert_eq!(base.total_bus_transfers, unperturbed.total_bus_transfers);
        let snap = warm.take_snapshot().expect("snapshot");
        // Round-trip through the wire format, then fork a fresh machine.
        let snap = Snapshot::from_bytes(&snap.to_bytes()).expect("decode");

        let mut fork = MultiMachine::new(cfg.clone(), vec![CoreSetup::bare(), CoreSetup::bare()]);
        fork.set_obs(ObsConfig::enabled());
        fork.fork_from(&snap).expect("fork");
        let stats = fork.run(&traces).expect("forked run");
        assert_eq!(base.per_core, stats.per_core, "forked run is bit-identical");
        assert_eq!(base.total_bus_transfers, stats.total_bus_transfers);
        assert_eq!(base.traces, stats.traces);

        // Core-count mismatch is rejected eagerly.
        let mut wrong = MultiMachine::new(cfg, vec![CoreSetup::bare()]);
        let err = wrong.fork_from(&snap).expect_err("core count mismatch");
        assert_eq!(err.kind(), "snapshot-rejected");
        // And a multi-core snapshot cannot fork a single-core machine.
        let err = crate::Machine::new(MachineConfig::default())
            .fork_from(&snap)
            .expect_err("multi snapshot into single-core machine");
        assert_eq!(err.kind(), "snapshot-rejected");
    }

    #[test]
    fn speedup_metrics_are_sane() {
        let stats = MultiRunStats {
            per_core: vec![
                RunStats {
                    cycles: 100,
                    retired_instructions: 100,
                    ..Default::default()
                },
                RunStats {
                    cycles: 100,
                    retired_instructions: 50,
                    ..Default::default()
                },
            ],
            total_bus_transfers: 0,
            traces: Vec::new(),
        };
        // Alone IPCs of 1.0 and 1.0: weighted speedup = 1.0 + 0.5.
        let ws = stats.weighted_speedup(&[1.0, 1.0]);
        assert!((ws - 1.5).abs() < 1e-12);
        // Slowdowns are 1.0 and 2.0: unfairness = 2.0.
        assert!((stats.unfairness(&[1.0, 1.0]) - 2.0).abs() < 1e-9);
        // denom = 1/1 + 1/0.5 = 3, hmean speedup = 2/3.
        let hs = stats.hmean_speedup(&[1.0, 1.0]);
        assert!((hs - 2.0 / 3.0).abs() < 1e-9);
    }
}
