//! Run-time feedback collection and the throttling-policy interface.
//!
//! The engine maintains, per prefetcher, the two counters of the paper's
//! §4.1 (*total-prefetched*, *total-used*) plus *total-misses* shared across
//! prefetchers, and two additional counters (late, pollution) needed by the
//! FDP comparison. At the end of every sampling interval (8192 L2 evictions)
//! each counter is halved into a running value per the paper's Equation 3:
//!
//! ```text
//! CounterValue = 1/2 * CounterValueAtBeginningOfInterval
//!              + 1/2 * CounterValueDuringInterval
//! ```
//!
//! and the [`ThrottlePolicy`] is consulted with the resulting accuracy and
//! coverage.

use crate::prefetcher::Aggressiveness;

/// The coordinated-throttling thresholds of the paper's Table 4.
///
/// This is the **single const table** shared by every consumer: the
/// `throttle` crate's coordinated policy classifies decisions with it, and
/// the validate subsystem re-derives logged Table 3 transitions from the
/// same values — so the two can never drift apart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleThresholds {
    /// Coverage at or above which coverage is "high" (`T_coverage`).
    pub coverage: f64,
    /// Accuracy below which accuracy is "low" (`A_low`).
    pub accuracy_low: f64,
    /// Accuracy at or above which accuracy is "high" (`A_high`).
    pub accuracy_high: f64,
}

/// The paper's Table 4 values: `T_coverage` = 0.2, `A_low` = 0.4,
/// `A_high` = 0.7.
pub const TABLE4_THRESHOLDS: ThrottleThresholds = ThrottleThresholds {
    coverage: 0.2,
    accuracy_low: 0.4,
    accuracy_high: 0.7,
};

impl Default for ThrottleThresholds {
    fn default() -> Self {
        TABLE4_THRESHOLDS
    }
}

/// Accuracy band relative to [`ThrottleThresholds`]: the paper's
/// Low / Medium / High classification used by Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccuracyClass {
    /// `accuracy < A_low`.
    Low,
    /// `A_low <= accuracy < A_high`.
    Medium,
    /// `accuracy >= A_high`.
    High,
}

impl ThrottleThresholds {
    /// Classifies an accuracy value against `A_low`/`A_high`.
    pub fn accuracy_class(&self, accuracy: f64) -> AccuracyClass {
        if accuracy >= self.accuracy_high {
            AccuracyClass::High
        } else if accuracy < self.accuracy_low {
            AccuracyClass::Low
        } else {
            AccuracyClass::Medium
        }
    }

    /// The paper's Table 3 decision for one prefetcher, with the case
    /// number (1–5) that fired.
    ///
    /// | Case | Own coverage | Own accuracy    | Rival coverage | Decision |
    /// |------|--------------|-----------------|----------------|----------|
    /// | 1    | High         | —               | —              | Up       |
    /// | 2    | Low          | Low             | —              | Down     |
    /// | 3    | Low          | Medium or High  | Low            | Up       |
    /// | 4    | Low          | Medium          | High           | Down     |
    /// | 5    | Low          | High            | High           | Keep     |
    pub fn classify(
        &self,
        own_coverage: f64,
        own_accuracy: f64,
        rival_coverage: f64,
    ) -> (ThrottleDecision, u8) {
        if own_coverage >= self.coverage {
            return (ThrottleDecision::Up, 1);
        }
        let rival_high = rival_coverage >= self.coverage;
        match (self.accuracy_class(own_accuracy), rival_high) {
            (AccuracyClass::Low, _) => (ThrottleDecision::Down, 2),
            (AccuracyClass::Medium | AccuracyClass::High, false) => (ThrottleDecision::Up, 3),
            (AccuracyClass::Medium, true) => (ThrottleDecision::Down, 4),
            (AccuracyClass::High, true) => (ThrottleDecision::Keep, 5),
        }
    }
}

/// One prefetcher's feedback counters.
#[derive(Debug, Clone, Default)]
pub struct FeedbackCounters {
    /// Equation-3 smoothed value of *total-prefetched*.
    pub prefetched: f64,
    /// Equation-3 smoothed value of *total-used* (timely **and** late: a
    /// used prefetch did not waste bandwidth, so it counts toward
    /// accuracy).
    pub used: f64,
    /// Smoothed count of *timely* uses only — the prefetches that actually
    /// eliminated a demand miss; coverage is computed from these (a late
    /// prefetch's demand still missed and is charged to the miss counter).
    pub timely: f64,
    /// Smoothed count of late prefetches (demand merged while in flight).
    pub late: f64,
    /// Smoothed count of pollution events (demand miss to a block this
    /// prefetcher evicted).
    pub pollution: f64,
    /// Raw counts within the current interval.
    pub cur_prefetched: u64,
    /// Raw used count within the current interval.
    pub cur_used: u64,
    /// Raw timely-use count within the current interval.
    pub cur_timely: u64,
    /// Raw late count within the current interval.
    pub cur_late: u64,
    /// Raw pollution count within the current interval.
    pub cur_pollution: u64,
    /// Lifetime totals (for end-of-run statistics, not throttling).
    pub total_prefetched: u64,
    /// Lifetime used total.
    pub total_used: u64,
    /// Lifetime late total.
    pub total_late: u64,
    /// Lifetime pollution total.
    pub total_pollution: u64,
}

impl FeedbackCounters {
    /// Records an issued prefetch.
    pub fn record_issued(&mut self) {
        self.cur_prefetched += 1;
        self.total_prefetched += 1;
    }

    /// Records a used prefetch; `late` if the demand arrived before the fill.
    pub fn record_used(&mut self, late: bool) {
        self.cur_used += 1;
        self.total_used += 1;
        if late {
            self.cur_late += 1;
            self.total_late += 1;
        } else {
            self.cur_timely += 1;
        }
    }

    /// Records a pollution event.
    pub fn record_pollution(&mut self) {
        self.cur_pollution += 1;
        self.total_pollution += 1;
    }

    /// Applies Equation 3 at the end of an interval.
    pub fn end_interval(&mut self) {
        self.prefetched = 0.5 * self.prefetched + 0.5 * self.cur_prefetched as f64;
        self.used = 0.5 * self.used + 0.5 * self.cur_used as f64;
        self.timely = 0.5 * self.timely + 0.5 * self.cur_timely as f64;
        self.late = 0.5 * self.late + 0.5 * self.cur_late as f64;
        self.pollution = 0.5 * self.pollution + 0.5 * self.cur_pollution as f64;
        self.cur_prefetched = 0;
        self.cur_used = 0;
        self.cur_timely = 0;
        self.cur_late = 0;
        self.cur_pollution = 0;
    }
}

/// Smoothed feedback for one prefetcher over the last interval, handed to
/// the throttling policy.
#[derive(Debug, Clone, Copy)]
pub struct IntervalFeedback {
    /// Prefetch accuracy: used / prefetched (Equation 1). 1.0 when no
    /// prefetches were issued (an idle prefetcher is not inaccurate).
    pub accuracy: f64,
    /// Prefetch coverage: used / (used + demand misses) (Equation 2).
    pub coverage: f64,
    /// Fraction of used prefetches that were late (FDP input).
    pub lateness: f64,
    /// Pollution events / demand misses (FDP input).
    pub pollution: f64,
    /// The prefetcher's current aggressiveness level.
    pub level: Aggressiveness,
}

/// A throttling decision for one prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThrottleDecision {
    /// Increase aggressiveness one level.
    Up,
    /// Decrease aggressiveness one level.
    Down,
    /// Leave the level unchanged.
    Keep,
}

/// Why a throttling decision was taken, for the observability layer.
///
/// Policies that classify their decisions (the coordinated policy's Table 3
/// cases) expose one entry per prefetcher after each
/// [`ThrottlePolicy::adjust`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionTrace {
    /// The heuristic case that fired (Table 3 cases 1–5 for the
    /// coordinated policy; 0 when the policy does not classify).
    pub case: u8,
    /// The rival coverage the decision was based on (0.0 when the policy
    /// has no notion of a rival).
    pub rival_coverage: f64,
}

/// A policy that adjusts prefetcher aggressiveness from interval feedback.
///
/// Implementations receive one [`IntervalFeedback`] per registered
/// prefetcher (in registration order) and return one decision per
/// prefetcher.
pub trait ThrottlePolicy {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Decides the per-prefetcher throttling actions for the next interval.
    fn adjust(&mut self, feedback: &[IntervalFeedback]) -> Vec<ThrottleDecision>;

    /// The per-prefetcher rationale for the most recent [`Self::adjust`]
    /// call, if the policy records one (one entry per prefetcher, in the
    /// same order as the returned decisions). The default is `None`; the
    /// observability layer then records case 0 ("unclassified").
    fn decision_trace(&self) -> Option<&[DecisionTrace]> {
        None
    }

    /// Serializes the policy's internal state (selector flags, last
    /// decision traces) for a warm-state snapshot. Stateless policies keep
    /// the default no-op.
    fn save_state(&self, _w: &mut crate::snapshot::SnapWriter) {}

    /// Restores state written by [`ThrottlePolicy::save_state`], fully
    /// overwriting any previous state.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::snapshot::SnapshotError`] on a malformed blob;
    /// the engine surfaces it as a snapshot rejection.
    fn load_state(
        &mut self,
        _r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        Ok(())
    }
}

/// A policy that never changes anything (the paper's non-throttled configs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoThrottle;

impl ThrottlePolicy for NoThrottle {
    fn name(&self) -> &'static str {
        "none"
    }

    fn adjust(&mut self, feedback: &[IntervalFeedback]) -> Vec<ThrottleDecision> {
        vec![ThrottleDecision::Keep; feedback.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation3_halves_history() {
        let mut c = FeedbackCounters::default();
        for _ in 0..100 {
            c.record_issued();
        }
        c.end_interval();
        assert!((c.prefetched - 50.0).abs() < 1e-9);
        for _ in 0..100 {
            c.record_issued();
        }
        c.end_interval();
        assert!((c.prefetched - 75.0).abs() < 1e-9);
        assert_eq!(c.cur_prefetched, 0);
        assert_eq!(c.total_prefetched, 200);
    }

    #[test]
    fn used_and_late_accounting() {
        let mut c = FeedbackCounters::default();
        c.record_used(false);
        c.record_used(true);
        assert_eq!(c.total_used, 2);
        assert_eq!(c.total_late, 1);
    }

    #[test]
    fn table4_constants_match_the_paper() {
        let t = TABLE4_THRESHOLDS;
        assert_eq!(t.coverage, 0.2);
        assert_eq!(t.accuracy_low, 0.4);
        assert_eq!(t.accuracy_high, 0.7);
        assert_eq!(ThrottleThresholds::default(), t);
    }

    #[test]
    fn classify_covers_all_five_table3_cases() {
        let t = ThrottleThresholds::default();
        assert_eq!(t.classify(0.5, 0.0, 0.0), (ThrottleDecision::Up, 1));
        assert_eq!(t.classify(0.1, 0.2, 0.0), (ThrottleDecision::Down, 2));
        assert_eq!(t.classify(0.1, 0.5, 0.1), (ThrottleDecision::Up, 3));
        assert_eq!(t.classify(0.1, 0.5, 0.6), (ThrottleDecision::Down, 4));
        assert_eq!(t.classify(0.1, 0.9, 0.6), (ThrottleDecision::Keep, 5));
    }

    #[test]
    fn boundary_values_classify_as_documented() {
        let t = ThrottleThresholds::default();
        // accuracy == A_high is high; accuracy == A_low is medium.
        assert_eq!(t.accuracy_class(0.7), AccuracyClass::High);
        assert_eq!(t.accuracy_class(0.4), AccuracyClass::Medium);
        assert_eq!(t.accuracy_class(0.39), AccuracyClass::Low);
        // coverage == T_coverage is high: case 1.
        assert_eq!(t.classify(0.2, 0.0, 0.0), (ThrottleDecision::Up, 1));
    }

    #[test]
    fn no_throttle_keeps_everything() {
        let fb = IntervalFeedback {
            accuracy: 0.1,
            coverage: 0.9,
            lateness: 0.0,
            pollution: 0.0,
            level: Aggressiveness::Aggressive,
        };
        let mut p = NoThrottle;
        assert_eq!(p.adjust(&[fb, fb]), vec![ThrottleDecision::Keep; 2]);
    }
}
