//! The interface between the timing engine and pluggable prefetchers.
//!
//! The engine raises two kinds of events: demand accesses at the last-level
//! cache ([`DemandAccess`]) and block fills ([`FillEvent`]). Prefetchers
//! react by pushing [`PrefetchRequest`]s into the per-core prefetch request
//! queue through [`PrefetchCtx`]. The content-directed prefetcher uses the
//! context's view of simulated memory to scan fetched blocks for pointers.

use sim_mem::{Addr, SimMemory, PTRS_PER_BLOCK};

/// Identifies a prefetcher registered with a machine (its registration
/// index). The paper's hybrid system has two: stream = 0, CDP = 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrefetcherId(pub u8);

impl std::fmt::Display for PrefetcherId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pf{}", self.0)
    }
}

/// Broad family of a prefetcher, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// Stream/stride prefetcher.
    Stream,
    /// Content-directed (pointer-scanning) prefetcher, including ECDP.
    ContentDirected,
    /// Address-correlation prefetcher (Markov, GHB).
    Correlation,
    /// Dependence-based LDS prefetcher.
    Dependence,
    /// Anything else.
    Other,
}

/// The four aggressiveness levels of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Aggressiveness {
    /// Stream: distance 4, degree 1. CDP: max recursion depth 1.
    VeryConservative,
    /// Stream: distance 8, degree 1. CDP: max recursion depth 2.
    Conservative,
    /// Stream: distance 16, degree 2. CDP: max recursion depth 3.
    Moderate,
    /// Stream: distance 32, degree 4. CDP: max recursion depth 4.
    Aggressive,
}

impl Aggressiveness {
    /// All levels, least to most aggressive.
    pub const ALL: [Aggressiveness; 4] = [
        Aggressiveness::VeryConservative,
        Aggressiveness::Conservative,
        Aggressiveness::Moderate,
        Aggressiveness::Aggressive,
    ];

    /// Index of this level (0..=3).
    pub fn index(self) -> usize {
        match self {
            Aggressiveness::VeryConservative => 0,
            Aggressiveness::Conservative => 1,
            Aggressiveness::Moderate => 2,
            Aggressiveness::Aggressive => 3,
        }
    }

    /// One level more aggressive (saturating).
    pub fn up(self) -> Aggressiveness {
        Self::ALL[(self.index() + 1).min(3)]
    }

    /// One level less aggressive (saturating).
    pub fn down(self) -> Aggressiveness {
        Self::ALL[self.index().saturating_sub(1)]
    }
}

/// Pointer-group attribution tag: `PG(L, X)` is identified by the static
/// load `L` (its PC) and the byte offset `X` of the pointer from the byte the
/// load accessed (paper §3). Negative offsets are real: a pointer earlier in
/// the block than the accessed byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PgTag {
    /// PC of the demand load whose miss triggered the (root) prefetch.
    pub pc: u32,
    /// Byte offset of the pointer from the accessed byte, word-aligned.
    pub offset: i16,
}

/// What caused a block to be fetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A demand load miss.
    DemandLoad,
    /// A demand store miss (write allocate).
    DemandStore,
    /// A prefetch from the given prefetcher.
    Prefetch(PrefetcherId),
}

impl AccessKind {
    /// True for demand (non-prefetch) accesses.
    pub fn is_demand(self) -> bool {
        !matches!(self, AccessKind::Prefetch(_))
    }
}

/// A demand access observed at the last-level cache.
#[derive(Debug, Clone, Copy)]
pub struct DemandAccess {
    /// PC of the load/store.
    pub pc: u32,
    /// Byte address accessed.
    pub addr: Addr,
    /// Functional value (loads: the loaded word; stores: the stored word).
    /// Used by dependence-based prefetchers that correlate produced pointer
    /// values with consumed addresses.
    pub value: u32,
    /// True if the access hit in the last-level cache.
    pub hit: bool,
    /// True for stores.
    pub is_store: bool,
    /// Cycle of the access.
    pub cycle: u64,
}

/// A block arriving at the last-level cache.
#[derive(Debug, Clone, Copy)]
pub struct FillEvent {
    /// Address of the filled block.
    pub block_addr: Addr,
    /// What fetched the block.
    pub kind: AccessKind,
    /// For demand-load fills: PC of the triggering load. For recursive
    /// content-directed fills: PC of the original (root) demand load.
    pub trigger_pc: u32,
    /// For demand-load fills: the exact byte address the load accessed
    /// (ECDP hint offsets are relative to this byte).
    pub trigger_addr: Addr,
    /// Recursion depth for content-directed prefetch fills (demand fills: 0).
    pub depth: u8,
    /// Pointer-group tag inherited from the root demand miss, if any.
    pub pg: Option<PgTag>,
    /// Cycle of the fill.
    pub cycle: u64,
}

/// A prefetch request emitted by a prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Target address (any byte of the desired block).
    pub addr: Addr,
    /// Issuing prefetcher.
    pub id: PrefetcherId,
    /// Recursion depth of this request (content-directed chains).
    pub depth: u8,
    /// Pointer-group attribution for ECDP profiling.
    pub pg: Option<PgTag>,
    /// PC of the root demand load (propagated through recursive chains).
    pub root_pc: u32,
}

/// Context handed to prefetcher callbacks: read-only memory for block
/// scanning plus a staging area for new prefetch requests.
pub struct PrefetchCtx<'a> {
    mem: &'a SimMemory,
    /// Current cycle.
    pub cycle: u64,
    requests: Vec<PrefetchRequest>,
}

impl<'a> PrefetchCtx<'a> {
    /// Creates a context over the core's memory image.
    pub fn new(mem: &'a SimMemory, cycle: u64) -> Self {
        PrefetchCtx {
            mem,
            cycle,
            requests: Vec::new(),
        }
    }

    /// The 16 pointer-sized words of the cache block containing `addr` —
    /// the view the content-directed prefetcher scans.
    pub fn block_words(&self, addr: Addr) -> [u32; PTRS_PER_BLOCK] {
        self.mem.read_block_words(addr)
    }

    /// Stages a prefetch request for the engine to enqueue.
    pub fn request(&mut self, req: PrefetchRequest) {
        self.requests.push(req);
    }

    /// Drains the staged requests (engine-side).
    pub fn take_requests(&mut self) -> Vec<PrefetchRequest> {
        std::mem::take(&mut self.requests)
    }

    /// Like [`PrefetchCtx::new`], staging into a caller-owned buffer so
    /// the engine's hot path reuses one allocation per core.
    pub(crate) fn with_buffer(
        mem: &'a SimMemory,
        cycle: u64,
        requests: Vec<PrefetchRequest>,
    ) -> Self {
        debug_assert!(requests.is_empty(), "staging buffer must start empty");
        PrefetchCtx {
            mem,
            cycle,
            requests,
        }
    }

    /// Returns the staging buffer (with any staged requests) to the
    /// caller, consuming the context.
    pub(crate) fn into_buffer(self) -> Vec<PrefetchRequest> {
        self.requests
    }
}

impl std::fmt::Debug for PrefetchCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefetchCtx")
            .field("cycle", &self.cycle)
            .field("staged_requests", &self.requests.len())
            .finish()
    }
}

/// A hardware prefetcher plugged into the machine.
///
/// Implementations react to last-level-cache events and stage requests into
/// the prefetch queue; the engine owns issue timing, MSHR allocation and
/// feedback accounting.
pub trait Prefetcher {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// The prefetcher family.
    fn kind(&self) -> PrefetcherKind;

    /// Called on every demand access at the last-level cache (hit or miss).
    fn on_demand_access(&mut self, _ctx: &mut PrefetchCtx<'_>, _ev: &DemandAccess) {}

    /// Called when a block fills into the last-level cache.
    fn on_fill(&mut self, _ctx: &mut PrefetchCtx<'_>, _ev: &FillEvent) {}

    /// Called when one of this prefetcher's own prefetched blocks resolves:
    /// used by a demand access (`used = true`) or evicted untouched
    /// (`used = false`). Hardware prefetch filters learn from this.
    fn on_prefetch_outcome(&mut self, _block_addr: Addr, _pg: Option<PgTag>, _used: bool) {}

    /// Sets the aggressiveness level (coordinated throttling, Table 2).
    fn set_aggressiveness(&mut self, _level: Aggressiveness) {}

    /// Current aggressiveness level.
    fn aggressiveness(&self) -> Aggressiveness {
        Aggressiveness::Aggressive
    }

    /// Serializes this prefetcher's learned state (tables, histories,
    /// LRU clocks) for a warm-state snapshot. The aggressiveness level is
    /// captured separately by the engine; stateless prefetchers keep the
    /// default no-op.
    fn save_state(&self, _w: &mut crate::snapshot::SnapWriter) {}

    /// Restores state written by [`Prefetcher::save_state`], fully
    /// overwriting any previously learned state.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::snapshot::SnapshotError`] on a malformed blob;
    /// the engine surfaces it as a snapshot rejection.
    fn load_state(
        &mut self,
        _r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        Ok(())
    }
}

/// Observes per-prefetch outcomes; used by the ECDP profiling pass to
/// measure pointer-group usefulness, and by experiments that need raw
/// prefetch event streams.
pub trait PrefetchObserver {
    /// A prefetch request was issued past the L2 probe (it will consume
    /// memory bandwidth).
    fn prefetch_issued(&mut self, _req: &PrefetchRequest) {}

    /// A previously prefetched block was used by a demand access (including
    /// late prefetches merged in the MSHRs).
    fn prefetch_used(&mut self, _block_addr: Addr, _id: PrefetcherId, _pg: Option<PgTag>) {}

    /// A prefetched block was evicted without ever being used.
    fn prefetch_unused(&mut self, _block_addr: Addr, _id: PrefetcherId, _pg: Option<PgTag>) {}
}

/// A no-op observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl PrefetchObserver for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggressiveness_ladder() {
        use Aggressiveness::*;
        assert_eq!(VeryConservative.up(), Conservative);
        assert_eq!(Aggressive.up(), Aggressive);
        assert_eq!(VeryConservative.down(), VeryConservative);
        assert_eq!(Aggressive.down(), Moderate);
        assert_eq!(Moderate.index(), 2);
    }

    #[test]
    fn ctx_stages_requests() {
        let mem = SimMemory::new();
        let mut ctx = PrefetchCtx::new(&mem, 7);
        ctx.request(PrefetchRequest {
            addr: 0x40,
            id: PrefetcherId(1),
            depth: 1,
            pg: None,
            root_pc: 0,
        });
        assert_eq!(ctx.take_requests().len(), 1);
        assert!(ctx.take_requests().is_empty());
    }

    #[test]
    fn access_kind_demand() {
        assert!(AccessKind::DemandLoad.is_demand());
        assert!(AccessKind::DemandStore.is_demand());
        assert!(!AccessKind::Prefetch(PrefetcherId(0)).is_demand());
    }
}
