//! A tiny self-contained JSON tree, serializer and parser.
//!
//! The build environment has no crates.io access, so `serde` is not
//! available; this module provides the minimal subset the experiment
//! manifests and golden-stats tests need. Objects preserve insertion
//! order, so serialization is deterministic, and numbers round-trip
//! through the shortest `f64` formatting that re-parses exactly
//! (`{:?}` on `f64` in Rust guarantees this).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key–value pairs.
    pub fn obj<'a>(pairs: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes onto a single line with no whitespace — the JSONL form
    /// used by the observability trace files. Number and string formatting
    /// are shared with [`Json::to_string_pretty`], so both forms are
    /// deterministic and re-parse to the same value.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x:?}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x:?}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n{pad}  ");
                    item.write(out, indent + 1);
                }
                let _ = write!(out, "\n{pad}]");
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n{pad}  ");
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                let _ = write!(out, "\n{pad}}}");
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            s.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    s.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b & 0xE0 == 0xC0 => 2,
        b if b & 0xF0 == 0xE0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_structure() {
        let v = Json::obj(vec![
            ("name", Json::Str("mst \"ref\"".to_string())),
            ("ipc", Json::Num(1.25)),
            ("count", Json::Num(12345.0)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![
                    Json::Num(1.0),
                    Json::Num(2.5),
                    Json::Str("x\n".into()),
                ]),
            ),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let text = v.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn serialization_is_deterministic() {
        let v = Json::obj(vec![("b", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(v.to_string_pretty(), v.to_string_pretty());
        assert!(
            v.to_string_pretty().find("\"b\"").unwrap()
                < v.to_string_pretty().find("\"a\"").unwrap()
        );
    }

    #[test]
    fn float_precision_roundtrips() {
        for x in [0.1, 1.0 / 3.0, 1e-12, 123456.789, f64::MAX / 2.0] {
            let text = Json::Num(x).to_string_pretty();
            assert_eq!(Json::parse(&text).unwrap().as_f64().unwrap(), x);
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": [1, 2], "s": "hi", "n": 7}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn parses_unicode_escapes_and_raw_utf8() {
        let v = Json::parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn compact_form_is_one_line_and_roundtrips() {
        let v = Json::obj(vec![
            ("name", Json::Str("mst \"ref\"".to_string())),
            ("ipc", Json::Num(1.25)),
            ("count", Json::Num(12345.0)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Str("x\n".into())]),
            ),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let text = v.to_string_compact();
        assert!(!text.contains('\n'));
        assert!(!text.contains(": "));
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Pretty and compact forms parse to the same value.
        assert_eq!(
            Json::parse(&v.to_string_pretty()).unwrap(),
            Json::parse(&text).unwrap()
        );
    }
}
