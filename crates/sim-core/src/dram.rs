//! DRAM system: shared memory request buffer, banks with row buffers, and
//! the off-chip data bus.
//!
//! Scheduling is FR-FCFS with demand-first priority: among the pending
//! requests for a free bank, row-buffer hits win, then demand requests beat
//! prefetches, then oldest-first. Every block transfer (read fill or dirty
//! writeback) occupies the shared data bus for a full transfer time — the
//! `BPKI` bandwidth metric counts these bus transfers.

use crate::config::{DramConfig, DramScheduling, RowPolicy};
use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
use sim_mem::{block_of, Addr};

/// A request queued at the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Block address (low bits zero).
    pub block_addr: Addr,
    /// True for dirty writebacks (no completion routing needed).
    pub is_write: bool,
    /// True for demand misses (scheduling priority over prefetches).
    pub is_demand: bool,
    /// Issuing core.
    pub core: u8,
    /// MSHR slot to wake on completion (reads only).
    pub mshr_slot: u32,
    /// Cycle the request entered the buffer.
    pub enqueue_cycle: u64,
}

/// A finished DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCompletion {
    /// The original request.
    pub request: DramRequest,
    /// Cycle at which the data transfer finished.
    pub finish_cycle: u64,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    busy_until: u64,
    open_row: Option<u32>,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    request: DramRequest,
    finish_cycle: u64,
}

/// A buffered request with its bank and row precomputed at enqueue time,
/// so the scheduling scan does no address arithmetic (the divisions in
/// `bank_of`/`row_of` dominated the scan cost).
#[derive(Debug, Clone, Copy)]
struct Queued {
    request: DramRequest,
    bank: u32,
    row: u32,
}

/// The DRAM system shared by all cores.
///
/// Call [`Dram::try_enqueue`] to submit requests (bounded by the memory
/// request buffer), [`Dram::tick`] each cycle to collect completions, and
/// [`Dram::next_event`] to find the next cycle at which anything can happen
/// (for idle-cycle skipping).
#[derive(Debug)]
pub struct Dram {
    config: DramConfig,
    capacity: usize,
    queue: Vec<Queued>,
    banks: Vec<Bank>,
    in_flight: Vec<InFlight>,
    bus_free_at: u64,
    bus_transfers: u64,
    bus_transfers_by_core: Vec<u64>,
    row_hits: u64,
    row_conflicts: u64,
    /// Scratch buffer returned by [`Dram::tick`]; reused across calls so
    /// the steady state allocates nothing.
    completions: Vec<DramCompletion>,
    /// Earliest in-flight finish cycle (`u64::MAX` when none) — kept
    /// exact so `tick` can skip the drain scan and `next_event` is O(1).
    next_finish: u64,
    /// Set by `try_enqueue`; cleared by the next scheduling scan. While
    /// clear, no scan can succeed before `next_bank_free` (see proof in
    /// [`Dram::schedule`]), so scans in between are skipped.
    sched_dirty: bool,
    /// Earliest `busy_until` over the banks that were still busy at the
    /// end of the last scheduling scan (`u64::MAX` when none were).
    next_bank_free: u64,
}

impl Dram {
    /// Creates a DRAM system serving `cores` cores (the request buffer holds
    /// `request_buffer_per_core * cores` entries).
    pub fn new(config: DramConfig, cores: u32) -> Self {
        let capacity = (config.request_buffer_per_core * cores) as usize;
        let banks = vec![
            Bank {
                busy_until: 0,
                open_row: None
            };
            config.num_banks as usize
        ];
        Dram {
            config,
            capacity,
            queue: Vec::new(),
            banks,
            in_flight: Vec::new(),
            bus_free_at: 0,
            bus_transfers: 0,
            bus_transfers_by_core: vec![0; cores as usize],
            row_hits: 0,
            row_conflicts: 0,
            completions: Vec::new(),
            next_finish: u64::MAX,
            sched_dirty: false,
            next_bank_free: u64::MAX,
        }
    }

    /// Total block transfers over the data bus so far (reads + writebacks).
    pub fn bus_transfers(&self) -> u64 {
        self.bus_transfers
    }

    /// Block transfers attributable to one core.
    pub fn bus_transfers_for(&self, core: u8) -> u64 {
        self.bus_transfers_by_core[core as usize]
    }

    /// Row-buffer hits / conflicts, for reporting.
    pub fn row_stats(&self) -> (u64, u64) {
        (self.row_hits, self.row_conflicts)
    }

    /// Upper bound on how far cumulative bus busy-cycles
    /// (`bus_transfers * bus_transfer_cycles`) can run ahead of the
    /// current cycle: transfers are counted at scheduling time, and a
    /// scheduled transfer's bus slot can lie in the future by one bank
    /// access plus the serialized backlog of every other buffered request.
    /// Used by the validate subsystem's bus-conservation invariant.
    pub fn bus_busy_slack(&self) -> u64 {
        self.config.controller_overhead
            + self.config.row_conflict_cycles
            + (self.capacity as u64 + 1) * self.config.bus_transfer_cycles
    }

    /// Requests currently buffered or in flight.
    pub fn occupancy(&self) -> usize {
        self.queue.len() + self.in_flight.len()
    }

    /// True when the request buffer cannot accept another request.
    pub fn is_full(&self) -> bool {
        self.occupancy() >= self.capacity
    }

    #[inline]
    fn bank_of(&self, addr: Addr) -> usize {
        ((addr / sim_mem::BLOCK_BYTES) % self.config.num_banks) as usize
    }

    #[inline]
    fn row_of(&self, addr: Addr) -> u32 {
        addr / self.config.row_bytes
    }

    /// Submits a request. Returns false (rejecting it) when the buffer is
    /// full — the caller must retry later.
    pub fn try_enqueue(&mut self, request: DramRequest) -> bool {
        if self.is_full() {
            return false;
        }
        debug_assert_eq!(request.block_addr, block_of(request.block_addr));
        self.queue.push(Queued {
            bank: self.bank_of(request.block_addr) as u32,
            row: self.row_of(request.block_addr),
            request,
        });
        self.sched_dirty = true;
        true
    }

    /// Schedules work onto free banks and returns accesses that finished at
    /// or before `now`. The returned slice borrows an internal scratch
    /// buffer that is overwritten by the next call.
    pub fn tick(&mut self, now: u64) -> &[DramCompletion] {
        self.schedule(now);
        self.completions.clear();
        if self.next_finish <= now {
            let mut next = u64::MAX;
            let mut i = 0;
            while i < self.in_flight.len() {
                if self.in_flight[i].finish_cycle <= now {
                    let f = self.in_flight.swap_remove(i);
                    self.completions.push(DramCompletion {
                        request: f.request,
                        finish_cycle: f.finish_cycle,
                    });
                } else {
                    next = next.min(self.in_flight[i].finish_cycle);
                    i += 1;
                }
            }
            self.next_finish = next;
        }
        &self.completions
    }

    /// Runs the FR-FCFS scan unless it provably cannot schedule anything.
    ///
    /// Skipping is sound because a scan's outcome does not depend on the
    /// cycle it runs at: a request's service timing is derived from
    /// `enqueue_cycle`, the bank's `busy_until` and `bus_free_at`, never
    /// from `now`. After a scan completes, every still-queued request
    /// targets a bank that is still busy (a free bank with a matching
    /// request would have been scheduled), so until either a new request
    /// arrives (`sched_dirty`) or the earliest busy bank frees
    /// (`next_bank_free`), re-running the scan is a no-op.
    fn schedule(&mut self, now: u64) {
        if self.queue.is_empty() {
            self.sched_dirty = false;
            return;
        }
        if !self.sched_dirty && now < self.next_bank_free {
            return;
        }
        self.sched_dirty = false;
        for bank_idx in 0..self.banks.len() {
            loop {
                if self.banks[bank_idx].busy_until > now || self.queue.is_empty() {
                    break;
                }
                // Pick the next request for this bank per the configured
                // scheduling policy.
                let open_row = self.banks[bank_idx].open_row;
                let mut best: Option<(usize, (bool, bool, u64))> = None;
                for (qi, q) in self.queue.iter().enumerate() {
                    if q.bank as usize != bank_idx {
                        continue;
                    }
                    let row_hit = open_row == Some(q.row);
                    // Higher key wins. Scheduling policies zero out the
                    // components they ignore.
                    let key = match self.config.scheduling {
                        DramScheduling::FrFcfsDemandFirst => (
                            row_hit,
                            q.request.is_demand,
                            u64::MAX - q.request.enqueue_cycle,
                        ),
                        DramScheduling::FrFcfs => {
                            (row_hit, false, u64::MAX - q.request.enqueue_cycle)
                        }
                        DramScheduling::Fcfs => (false, false, u64::MAX - q.request.enqueue_cycle),
                    };
                    if best.as_ref().is_none_or(|(_, bk)| key > *bk) {
                        best = Some((qi, key));
                    }
                }
                let Some((qi, _)) = best else { break };
                let q = self.queue.swap_remove(qi);
                let req = q.request;
                let row = q.row;
                let row_hit = self.config.row_policy == RowPolicy::OpenPage
                    && self.banks[bank_idx].open_row == Some(row);
                let access = if row_hit {
                    self.row_hits += 1;
                    self.config.row_hit_cycles
                } else {
                    self.row_conflicts += 1;
                    self.config.row_conflict_cycles
                };
                // The bank could have started serving this request as soon
                // as both it and the request were available (tick may be
                // called later than that moment).
                let start = req.enqueue_cycle.max(self.banks[bank_idx].busy_until);
                let data_ready = start + self.config.controller_overhead + access;
                let bus_start = data_ready.max(self.bus_free_at);
                let finish = bus_start + self.config.bus_transfer_cycles;
                self.bus_free_at = finish;
                self.bus_transfers += 1;
                self.bus_transfers_by_core[req.core as usize] += 1;
                self.banks[bank_idx].busy_until = data_ready;
                self.banks[bank_idx].open_row = match self.config.row_policy {
                    RowPolicy::OpenPage => Some(row),
                    RowPolicy::ClosedPage => None,
                };
                self.next_finish = self.next_finish.min(finish);
                self.in_flight.push(InFlight {
                    request: req,
                    finish_cycle: finish,
                });
            }
        }
        let mut free = u64::MAX;
        for b in &self.banks {
            if b.busy_until > now {
                free = free.min(b.busy_until);
            }
        }
        self.next_bank_free = free;
    }

    /// The next cycle at which a completion or a scheduling decision can
    /// occur, or `None` if the DRAM system is completely idle.
    ///
    /// Exact (not conservative): completions use the cached earliest
    /// in-flight finish, and queued requests use the earliest bank-free
    /// cycle recorded by the last scheduling scan — per the soundness
    /// argument on the (private) `schedule` method, nothing can be
    /// scheduled before that.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |c: u64| {
            let c = c.max(now + 1);
            next = Some(next.map_or(c, |n: u64| n.min(c)));
        };
        if self.next_finish != u64::MAX {
            consider(self.next_finish);
        }
        if !self.queue.is_empty() {
            if self.sched_dirty || self.next_bank_free == u64::MAX {
                // Not yet scanned since the last enqueue: anything could
                // be schedulable immediately.
                consider(now + 1);
            } else {
                consider(self.next_bank_free);
            }
        }
        next
    }

    /// Serializes the complete controller state into a blob. Queue and
    /// in-flight order matter (the FR-FCFS scan and the completion drain
    /// both use `swap_remove`), so both are stored positionally; queued
    /// requests' bank/row are recomputed at restore from the
    /// configuration the snapshot layer fingerprints.
    pub(crate) fn save_state(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u32(self.banks.len() as u32);
        for b in &self.banks {
            w.u64(b.busy_until);
            match b.open_row {
                None => w.bool(false),
                Some(row) => {
                    w.bool(true);
                    w.u32(row);
                }
            }
        }
        w.u32(self.queue.len() as u32);
        for q in &self.queue {
            write_request(&mut w, &q.request);
        }
        w.u32(self.in_flight.len() as u32);
        for f in &self.in_flight {
            write_request(&mut w, &f.request);
            w.u64(f.finish_cycle);
        }
        w.u64(self.bus_free_at);
        w.u64(self.bus_transfers);
        w.u32(self.bus_transfers_by_core.len() as u32);
        for &t in &self.bus_transfers_by_core {
            w.u64(t);
        }
        w.u64(self.row_hits);
        w.u64(self.row_conflicts);
        w.u64(self.next_finish);
        w.bool(self.sched_dirty);
        w.u64(self.next_bank_free);
        w.into_bytes()
    }

    /// Restores state saved by [`Dram::save_state`] into a controller of
    /// the same configuration.
    pub(crate) fn restore_state(&mut self, data: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapReader::new(data);
        let n = r.u32()? as usize;
        if n != self.banks.len() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {n} banks, this controller has {}",
                self.banks.len()
            )));
        }
        for b in &mut self.banks {
            b.busy_until = r.u64()?;
            b.open_row = if r.bool()? { Some(r.u32()?) } else { None };
        }
        let n = r.u32()? as usize;
        if n > self.capacity {
            return Err(SnapshotError::Malformed(format!(
                "{n} queued requests exceed buffer capacity {}",
                self.capacity
            )));
        }
        self.queue.clear();
        for _ in 0..n {
            let request = read_request(&mut r)?;
            self.queue.push(Queued {
                bank: self.bank_of(request.block_addr) as u32,
                row: self.row_of(request.block_addr),
                request,
            });
        }
        let n = r.u32()? as usize;
        if self.queue.len() + n > self.capacity {
            return Err(SnapshotError::Malformed(format!(
                "{n} in-flight requests overflow buffer capacity {}",
                self.capacity
            )));
        }
        self.in_flight.clear();
        for _ in 0..n {
            let request = read_request(&mut r)?;
            let finish_cycle = r.u64()?;
            self.in_flight.push(InFlight {
                request,
                finish_cycle,
            });
        }
        self.bus_free_at = r.u64()?;
        self.bus_transfers = r.u64()?;
        let n = r.u32()? as usize;
        if n != self.bus_transfers_by_core.len() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot tracks {n} cores, this controller has {}",
                self.bus_transfers_by_core.len()
            )));
        }
        for t in &mut self.bus_transfers_by_core {
            *t = r.u64()?;
        }
        self.row_hits = r.u64()?;
        self.row_conflicts = r.u64()?;
        self.next_finish = r.u64()?;
        self.sched_dirty = r.bool()?;
        self.next_bank_free = r.u64()?;
        self.completions.clear();
        r.finish()
    }
}

fn write_request(w: &mut SnapWriter, req: &DramRequest) {
    w.u32(req.block_addr);
    w.bool(req.is_write);
    w.bool(req.is_demand);
    w.u8(req.core);
    w.u32(req.mshr_slot);
    w.u64(req.enqueue_cycle);
}

fn read_request(r: &mut SnapReader<'_>) -> Result<DramRequest, SnapshotError> {
    Ok(DramRequest {
        block_addr: r.u32()?,
        is_write: r.bool()?,
        is_demand: r.bool()?,
        core: r.u8()?,
        mshr_slot: r.u32()?,
        enqueue_cycle: r.u64()?,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default(), 1)
    }

    fn read_req(addr: Addr, demand: bool, at: u64) -> DramRequest {
        DramRequest {
            block_addr: addr,
            is_write: false,
            is_demand: demand,
            core: 0,
            mshr_slot: 0,
            enqueue_cycle: at,
        }
    }

    #[test]
    fn single_read_completes_at_min_latency() {
        let mut d = dram();
        assert!(d.try_enqueue(read_req(0x4000_0000, true, 0)));
        // Cold access: row conflict path. 110 + 300 + 40 = 450.
        let done = d.tick(450);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].finish_cycle, 450);
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        let mut d = dram();
        // Two blocks in the same row, same bank (consecutive isn't:
        // consecutive blocks interleave banks, so use stride num_banks).
        let a = 0x4000_0000;
        let b = a + 64 * 8; // same bank (8 banks), same 8KB row
        d.try_enqueue(read_req(a, true, 0));
        let first = d.tick(10_000);
        assert_eq!(first.len(), 1);
        let t1 = first[0].finish_cycle;
        d.try_enqueue(read_req(b, true, t1));
        let second = d.tick(100_000);
        assert_eq!(second.len(), 1);
        let latency2 = second[0].finish_cycle - t1;
        assert!(
            latency2 < 450,
            "row hit latency {latency2} should beat cold 450"
        );
    }

    #[test]
    fn demand_beats_prefetch_on_same_bank() {
        let mut d = dram();
        let a = 0x4000_0000;
        let b = a + 64 * 8; // same bank
        d.try_enqueue(read_req(a, false, 0)); // prefetch, arrived first
        d.try_enqueue(read_req(b, true, 1)); // demand, arrived second
        let done = d.tick(2000);
        assert_eq!(done.len(), 2);
        let first = done.iter().min_by_key(|c| c.finish_cycle).unwrap();
        assert!(first.request.is_demand, "demand should be served first");
    }

    #[test]
    fn buffer_capacity_is_enforced() {
        let mut d = Dram::new(
            DramConfig {
                request_buffer_per_core: 2,
                ..DramConfig::default()
            },
            1,
        );
        assert!(d.try_enqueue(read_req(0x0, true, 0)));
        assert!(d.try_enqueue(read_req(0x40, true, 0)));
        assert!(!d.try_enqueue(read_req(0x80, true, 0)));
        assert!(d.is_full());
    }

    #[test]
    fn bus_serialises_transfers() {
        let mut d = dram();
        // Two different banks: bank accesses overlap but bus transfers
        // serialise, so completions are >= one transfer apart.
        d.try_enqueue(read_req(0x4000_0000, true, 0));
        d.try_enqueue(read_req(0x4000_0040, true, 0));
        let done = d.tick(10_000);
        assert_eq!(done.len(), 2);
        let mut t: Vec<u64> = done.iter().map(|c| c.finish_cycle).collect();
        t.sort_unstable();
        assert!(t[1] - t[0] >= DramConfig::default().bus_transfer_cycles);
        assert_eq!(d.bus_transfers(), 2);
    }

    #[test]
    fn next_event_tracks_in_flight() {
        let mut d = dram();
        assert_eq!(d.next_event(0), None);
        d.try_enqueue(read_req(0x0, true, 0));
        let _ = d.tick(0); // schedules, nothing completes yet
        let ev = d.next_event(0).expect("in-flight event");
        assert_eq!(ev, 450);
    }

    #[test]
    fn closed_page_never_row_hits() {
        let mut d = Dram::new(
            DramConfig {
                row_policy: RowPolicy::ClosedPage,
                ..DramConfig::default()
            },
            1,
        );
        let a = 0x4000_0000;
        let b = a + 64 * 8; // same bank, same row
        d.try_enqueue(read_req(a, true, 0));
        let t1 = d.tick(10_000)[0].finish_cycle;
        d.try_enqueue(read_req(b, true, t1));
        let _ = d.tick(100_000);
        let (hits, conflicts) = d.row_stats();
        assert_eq!(hits, 0, "closed page cannot row-hit");
        assert_eq!(conflicts, 2);
    }

    #[test]
    fn fcfs_serves_in_arrival_order() {
        let mut d = Dram::new(
            DramConfig {
                scheduling: DramScheduling::Fcfs,
                ..DramConfig::default()
            },
            1,
        );
        let a = 0x4000_0000;
        let b = a + 64 * 8; // same bank
        d.try_enqueue(read_req(a, false, 0)); // prefetch arrived first
        d.try_enqueue(read_req(b, true, 1)); // demand second
        let done = d.tick(2000);
        let first = done.iter().min_by_key(|c| c.finish_cycle).unwrap();
        assert!(!first.request.is_demand, "FCFS must ignore demand priority");
    }

    #[test]
    fn writes_occupy_bus() {
        let mut d = dram();
        let w = DramRequest {
            block_addr: 0x1000,
            is_write: true,
            is_demand: false,
            core: 0,
            mshr_slot: 0,
            enqueue_cycle: 0,
        };
        d.try_enqueue(w);
        let done = d.tick(10_000);
        assert_eq!(done.len(), 1);
        assert!(done[0].request.is_write);
        assert_eq!(d.bus_transfers(), 1);
    }
}
