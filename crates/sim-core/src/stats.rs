//! End-of-run statistics, plus a stable serializable summary
//! ([`StatsSummary`]) consumed by the experiment-lab manifests and the
//! golden-stats regression tests.

use crate::json::Json;

/// Per-prefetcher outcome statistics for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefetcherStats {
    /// Prefetcher display name.
    pub name: String,
    /// Prefetch requests issued past the L2 probe (consumed bandwidth).
    pub issued: u64,
    /// Prefetches used by demand requests (including late ones).
    pub used: u64,
    /// Used prefetches whose demand arrived before the fill.
    pub late: u64,
    /// Demand misses caused by blocks this prefetcher evicted.
    pub pollution: u64,
    /// Prefetched blocks evicted without use.
    pub unused_evicted: u64,
}

impl PrefetcherStats {
    /// Lifetime prefetch accuracy: used / issued (1.0 if nothing issued).
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            1.0
        } else {
            self.used as f64 / self.issued as f64
        }
    }

    /// Lifetime coverage given the run's demand misses.
    pub fn coverage(&self, demand_misses: u64) -> f64 {
        let denom = self.used + demand_misses;
        if denom == 0 {
            0.0
        } else {
            self.used as f64 / denom as f64
        }
    }
}

/// Aggregate service-latency statistics (memory-request buffer entry to
/// data-transfer completion).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Requests measured.
    pub count: u64,
    /// Sum of latencies, in cycles.
    pub total_cycles: u64,
    /// Maximum observed latency.
    pub max_cycles: u64,
}

impl LatencyStats {
    /// Records one request's service latency.
    pub fn record(&mut self, cycles: u64) {
        self.count += 1;
        self.total_cycles += cycles;
        self.max_cycles = self.max_cycles.max(cycles);
    }

    /// Mean service latency in cycles (0.0 when nothing was measured).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.count as f64
        }
    }
}

/// Statistics from a single-core run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions retired (memory ops + compute instructions).
    pub retired_instructions: u64,
    /// Demand accesses that reached the L2.
    pub l2_demand_accesses: u64,
    /// Demand accesses that missed in the L2 (after MSHR merges).
    pub l2_demand_misses: u64,
    /// Demand misses on loads marked as LDS accesses.
    pub l2_lds_misses: u64,
    /// Demand L2 misses that merged into an in-flight prefetch.
    pub l2_merged_into_prefetch: u64,
    /// L1 data-cache hits.
    pub l1_hits: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// Block transfers over the off-chip bus (reads + writebacks).
    pub bus_transfers: u64,
    /// Cycles the off-chip data bus spent transferring blocks
    /// (`bus_transfers * bus_transfer_cycles`) — the numerator of
    /// [`RunStats::bus_utilization`].
    pub bus_busy_cycles: u64,
    /// Dirty L2 evictions written back to memory.
    pub writebacks: u64,
    /// DRAM row-buffer hits.
    pub dram_row_hits: u64,
    /// DRAM row-buffer conflicts.
    pub dram_row_conflicts: u64,
    /// Sampling intervals completed.
    pub intervals: u64,
    /// Per-prefetcher statistics, in registration order.
    pub prefetchers: Vec<PrefetcherStats>,
    /// Sum over useful prefetches of (demand arrival - fill) wait cycles —
    /// used to quantify prefetch service latency effects.
    pub useful_prefetch_wait_cycles: u64,
    /// DRAM service latency of demand misses.
    pub demand_service: LatencyStats,
    /// DRAM service latency of prefetch requests (the paper's §4 resource
    /// contention measurement: this grows when prefetchers fight).
    pub prefetch_service: LatencyStats,
}

impl RunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_instructions as f64 / self.cycles as f64
        }
    }

    /// Bus accesses per thousand retired instructions — the paper's
    /// bandwidth-consumption metric.
    pub fn bpki(&self) -> f64 {
        if self.retired_instructions == 0 {
            0.0
        } else {
            self.bus_transfers as f64 * 1000.0 / self.retired_instructions as f64
        }
    }

    /// Demand misses per thousand instructions.
    pub fn mpki(&self) -> f64 {
        if self.retired_instructions == 0 {
            0.0
        } else {
            self.l2_demand_misses as f64 * 1000.0 / self.retired_instructions as f64
        }
    }

    /// L2 demand miss rate: misses / accesses (0.0 when nothing accessed).
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l2_demand_accesses == 0 {
            0.0
        } else {
            self.l2_demand_misses as f64 / self.l2_demand_accesses as f64
        }
    }

    /// Lifetime accuracy of the prefetcher at registration `index`
    /// (1.0 when the index is out of range or nothing was issued, matching
    /// [`PrefetcherStats::accuracy`]).
    pub fn prefetch_accuracy(&self, index: usize) -> f64 {
        self.prefetchers.get(index).map_or(1.0, |p| p.accuracy())
    }

    /// Lifetime coverage of the prefetcher at registration `index` against
    /// this run's demand misses (0.0 when the index is out of range).
    pub fn prefetch_coverage(&self, index: usize) -> f64 {
        self.prefetchers
            .get(index)
            .map_or(0.0, |p| p.coverage(self.l2_demand_misses))
    }

    /// Fraction of run cycles the off-chip data bus was transferring
    /// blocks (0.0 when no cycles were simulated).
    pub fn bus_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.bus_busy_cycles as f64 / self.cycles as f64).min(1.0)
        }
    }
}

/// Stable, flat, serializable per-prefetcher summary.
///
/// This is the *schema contract* for run manifests and golden snapshots:
/// add fields only at the end, never rename or reorder, so checked-in
/// golden JSON stays comparable across refactors of [`PrefetcherStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetcherSummary {
    /// Prefetcher display name.
    pub name: String,
    /// Prefetch requests issued (bandwidth consumed).
    pub issued: u64,
    /// Prefetches used by demand requests.
    pub used: u64,
    /// Used prefetches that arrived late.
    pub late: u64,
    /// Demand misses caused by this prefetcher's evictions.
    pub pollution: u64,
    /// Prefetched blocks evicted without use.
    pub unused_evicted: u64,
    /// Lifetime accuracy (used / issued).
    pub accuracy: f64,
    /// Lifetime coverage given the run's demand misses.
    pub coverage: f64,
}

/// Stable, flat, serializable summary of a [`RunStats`].
///
/// Same schema contract as [`PrefetcherSummary`]: append-only.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSummary {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub retired_instructions: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Bus transfers per thousand instructions.
    pub bpki: f64,
    /// Demand misses per thousand instructions.
    pub mpki: f64,
    /// Demand accesses that reached the L2.
    pub l2_demand_accesses: u64,
    /// Demand accesses that missed in the L2.
    pub l2_demand_misses: u64,
    /// Demand misses on LDS-marked loads.
    pub l2_lds_misses: u64,
    /// Off-chip bus block transfers.
    pub bus_transfers: u64,
    /// Dirty L2 evictions written back.
    pub writebacks: u64,
    /// Per-prefetcher summaries, in registration order.
    pub prefetchers: Vec<PrefetcherSummary>,
}

impl RunStats {
    /// The stable summary of this run.
    pub fn summary(&self) -> StatsSummary {
        StatsSummary {
            cycles: self.cycles,
            retired_instructions: self.retired_instructions,
            ipc: self.ipc(),
            bpki: self.bpki(),
            mpki: self.mpki(),
            l2_demand_accesses: self.l2_demand_accesses,
            l2_demand_misses: self.l2_demand_misses,
            l2_lds_misses: self.l2_lds_misses,
            bus_transfers: self.bus_transfers,
            writebacks: self.writebacks,
            prefetchers: self
                .prefetchers
                .iter()
                .map(|p| PrefetcherSummary {
                    name: p.name.clone(),
                    issued: p.issued,
                    used: p.used,
                    late: p.late,
                    pollution: p.pollution,
                    unused_evicted: p.unused_evicted,
                    accuracy: p.accuracy(),
                    coverage: p.coverage(self.l2_demand_misses),
                })
                .collect(),
        }
    }
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

impl PrefetcherSummary {
    /// Serializes to a JSON object (field order fixed).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("issued", Json::Num(self.issued as f64)),
            ("used", Json::Num(self.used as f64)),
            ("late", Json::Num(self.late as f64)),
            ("pollution", Json::Num(self.pollution as f64)),
            ("unused_evicted", Json::Num(self.unused_evicted as f64)),
            ("accuracy", Json::Num(self.accuracy)),
            ("coverage", Json::Num(self.coverage)),
        ])
    }

    /// Parses [`PrefetcherSummary::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/mistyped field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        Ok(PrefetcherSummary {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or("missing prefetcher name")?
                .to_string(),
            issued: u64_field(v, "issued")?,
            used: u64_field(v, "used")?,
            late: u64_field(v, "late")?,
            pollution: u64_field(v, "pollution")?,
            unused_evicted: u64_field(v, "unused_evicted")?,
            accuracy: f64_field(v, "accuracy")?,
            coverage: f64_field(v, "coverage")?,
        })
    }
}

impl StatsSummary {
    /// Serializes to a JSON object (field order fixed).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cycles", Json::Num(self.cycles as f64)),
            (
                "retired_instructions",
                Json::Num(self.retired_instructions as f64),
            ),
            ("ipc", Json::Num(self.ipc)),
            ("bpki", Json::Num(self.bpki)),
            ("mpki", Json::Num(self.mpki)),
            (
                "l2_demand_accesses",
                Json::Num(self.l2_demand_accesses as f64),
            ),
            ("l2_demand_misses", Json::Num(self.l2_demand_misses as f64)),
            ("l2_lds_misses", Json::Num(self.l2_lds_misses as f64)),
            ("bus_transfers", Json::Num(self.bus_transfers as f64)),
            ("writebacks", Json::Num(self.writebacks as f64)),
            (
                "prefetchers",
                Json::Arr(self.prefetchers.iter().map(|p| p.to_json()).collect()),
            ),
        ])
    }

    /// Parses [`StatsSummary::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/mistyped field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        Ok(StatsSummary {
            cycles: u64_field(v, "cycles")?,
            retired_instructions: u64_field(v, "retired_instructions")?,
            ipc: f64_field(v, "ipc")?,
            bpki: f64_field(v, "bpki")?,
            mpki: f64_field(v, "mpki")?,
            l2_demand_accesses: u64_field(v, "l2_demand_accesses")?,
            l2_demand_misses: u64_field(v, "l2_demand_misses")?,
            l2_lds_misses: u64_field(v, "l2_lds_misses")?,
            bus_transfers: u64_field(v, "bus_transfers")?,
            writebacks: u64_field(v, "writebacks")?,
            prefetchers: v
                .get("prefetchers")
                .and_then(Json::as_arr)
                .ok_or("missing prefetchers array")?
                .iter()
                .map(PrefetcherSummary::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_bpki() {
        let s = RunStats {
            cycles: 1000,
            retired_instructions: 2000,
            bus_transfers: 50,
            ..Default::default()
        };
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.bpki() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let s = RunStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.bpki(), 0.0);
        assert_eq!(s.mpki(), 0.0);
        let p = PrefetcherStats::default();
        assert_eq!(p.accuracy(), 1.0);
        assert_eq!(p.coverage(0), 0.0);
    }

    #[test]
    fn latency_stats_mean_and_max() {
        let mut l = LatencyStats::default();
        assert_eq!(l.mean(), 0.0);
        l.record(100);
        l.record(300);
        assert!((l.mean() - 200.0).abs() < 1e-12);
        assert_eq!(l.max_cycles, 300);
        assert_eq!(l.count, 2);
    }

    #[test]
    fn summary_roundtrips_through_json() {
        let s = RunStats {
            cycles: 1000,
            retired_instructions: 2000,
            bus_transfers: 50,
            l2_demand_misses: 60,
            prefetchers: vec![PrefetcherStats {
                name: "stream".to_string(),
                issued: 100,
                used: 40,
                late: 3,
                pollution: 1,
                unused_evicted: 7,
            }],
            ..Default::default()
        };
        let summary = s.summary();
        assert!((summary.ipc - 2.0).abs() < 1e-12);
        let back =
            StatsSummary::from_json(&Json::parse(&summary.to_json().to_string_pretty()).unwrap())
                .unwrap();
        assert_eq!(summary, back);
        assert_eq!(back.prefetchers[0].name, "stream");
        assert!((back.prefetchers[0].accuracy - 0.4).abs() < 1e-12);
    }

    #[test]
    fn accuracy_and_coverage() {
        let p = PrefetcherStats {
            issued: 100,
            used: 40,
            ..Default::default()
        };
        assert!((p.accuracy() - 0.4).abs() < 1e-12);
        assert!((p.coverage(60) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn derived_metrics() {
        let s = RunStats {
            cycles: 1000,
            l2_demand_accesses: 200,
            l2_demand_misses: 60,
            bus_busy_cycles: 400,
            prefetchers: vec![PrefetcherStats {
                name: "stream".to_string(),
                issued: 100,
                used: 40,
                ..Default::default()
            }],
            ..Default::default()
        };
        assert!((s.l2_miss_rate() - 0.3).abs() < 1e-12);
        assert!((s.prefetch_accuracy(0) - 0.4).abs() < 1e-12);
        assert!((s.prefetch_coverage(0) - 0.4).abs() < 1e-12);
        assert!((s.bus_utilization() - 0.4).abs() < 1e-12);
        // Out-of-range indices degrade like the zero-issue guards.
        assert_eq!(s.prefetch_accuracy(9), 1.0);
        assert_eq!(s.prefetch_coverage(9), 0.0);
        // Defaults hit every zero-division guard.
        let z = RunStats::default();
        assert_eq!(z.l2_miss_rate(), 0.0);
        assert_eq!(z.bus_utilization(), 0.0);
    }
}
