//! Structured simulation failures.
//!
//! The engine never aborts the process on a wedged model any more: the
//! run loops in [`crate::Machine::run`] and
//! [`crate::MultiMachine::run`] return a [`SimError`] carrying a
//! [`DiagnosticSnapshot`] of the stuck core, so a sweep harness can
//! record the failure, keep the remaining cells going, and print enough
//! state to debug the wedge (ROB head, MSHR occupancy, DRAM queue
//! depth).

/// Machine state captured at the moment a run was declared stuck.
///
/// All fields describe the core the failure was attributed to; in a
/// multi-core run that is the first unfinished core.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiagnosticSnapshot {
    /// Simulated cycle at capture time.
    pub cycle: u64,
    /// Core the snapshot describes.
    pub core: u8,
    /// Trace operations fully retired.
    pub retired_ops: usize,
    /// Total operations in the trace.
    pub total_ops: usize,
    /// Instructions currently in the reorder buffer.
    pub window_instrs: u32,
    /// ROB head: `(op index, issued, completion cycle)` — the completion
    /// cycle is `None` while the op has no scheduled wake-up, which is
    /// the signature of a head whose miss never drains.
    pub rob_head: Option<(u32, bool, Option<u64>)>,
    /// Occupied / total MSHRs.
    pub mshr_occupancy: u32,
    /// MSHR capacity.
    pub mshr_capacity: u32,
    /// Prefetch requests waiting in the per-core queue.
    pub pf_queue_len: usize,
    /// Writebacks waiting for request-buffer space.
    pub pending_writebacks: usize,
    /// Requests in the shared DRAM request buffer.
    pub dram_queue_depth: usize,
    /// Whether the DRAM request buffer is at capacity.
    pub dram_full: bool,
}

impl std::fmt::Display for DiagnosticSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle {} core {}: {}/{} ops retired, {} window instrs, rob head {}, \
             mshrs {}/{}, pf queue {}, writebacks {}, dram queue {}{}",
            self.cycle,
            self.core,
            self.retired_ops,
            self.total_ops,
            self.window_instrs,
            match self.rob_head {
                None => "empty".to_string(),
                Some((op, issued, done)) => format!(
                    "op {op} (issued={issued}, completes={})",
                    done.map_or("never".to_string(), |c| c.to_string())
                ),
            },
            self.mshr_occupancy,
            self.mshr_capacity,
            self.pf_queue_len,
            self.pending_writebacks,
            self.dram_queue_depth,
            if self.dram_full { " (full)" } else { "" },
        )
    }
}

/// Whether a failure is worth retrying.
///
/// The sweep supervisor in `bench` retries [`ErrorClass::Transient`]
/// failures with deterministic backoff and gives up immediately on
/// [`ErrorClass::Permanent`] ones: a deterministic simulator re-run of a
/// deadlocked or panicking cell reproduces the same failure, while a
/// wall-clock deadline miss is a property of the host (scheduling, I/O
/// stalls, injected delays), not of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Retrying may succeed (host-time effects: deadlines, stalls).
    Transient,
    /// Retrying reproduces the failure (deterministic simulator state).
    Permanent,
}

impl ErrorClass {
    /// Stable lower-case label used in manifests (`"transient"` /
    /// `"permanent"`).
    pub fn label(self) -> &'static str {
        match self {
            ErrorClass::Transient => "transient",
            ErrorClass::Permanent => "permanent",
        }
    }
}

impl std::fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A structured simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No forward progress (no retirement and no MSHR drain) for the
    /// configured `deadlock_cycles`, or the machine went fully quiescent
    /// with unfinished work — always a simulator or trace bug, never a
    /// property of a slow workload.
    Deadlock(DiagnosticSnapshot),
    /// The run exceeded an externally imposed cycle budget (see
    /// [`crate::Machine::set_cycle_budget`]).
    CycleBudgetExceeded {
        /// The configured budget, in cycles.
        budget: u64,
        /// State at the moment the budget was exhausted.
        snapshot: DiagnosticSnapshot,
    },
    /// An internal consistency check failed (e.g. the post-run drain
    /// loop did not converge).
    InvariantViolation(String),
    /// A workload generator or simulation panicked; the harness caught
    /// the unwind and carries the panic message here.
    WorkloadPanic(String),
    /// The run exceeded a wall-clock deadline installed with
    /// [`crate::Machine::set_wall_deadline`]. The engine watchdog
    /// notices the overrun at its normal check cadence, captures the
    /// diagnostic snapshot, and kills the run — the
    /// watchdog → snapshot-capture → kill escalation the sweep
    /// supervisor relies on. Always [`ErrorClass::Transient`]: the
    /// overrun measures host time, not simulator state.
    DeadlineExceeded {
        /// The configured deadline, in wall-clock milliseconds.
        deadline_ms: u64,
        /// State at the moment the overrun was detected.
        snapshot: DiagnosticSnapshot,
    },
    /// A warm-state snapshot was rejected at fork time (wrong
    /// configuration fingerprint, mismatched prefetcher registration, or
    /// a malformed state blob). The message is the decoder's diagnostic;
    /// harnesses treat this as "fall back to a cold run".
    SnapshotRejected(String),
}

impl SimError {
    /// Short stable tag used in manifests (`error_kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Deadlock(_) => "deadlock",
            SimError::CycleBudgetExceeded { .. } => "cycle-budget",
            SimError::InvariantViolation(_) => "invariant",
            SimError::WorkloadPanic(_) => "panic",
            SimError::DeadlineExceeded { .. } => "deadline",
            SimError::SnapshotRejected(_) => "snapshot-rejected",
        }
    }

    /// Retry classification (see [`ErrorClass`]): only wall-clock
    /// deadline misses are transient; everything else reproduces
    /// deterministically on a retry.
    pub fn class(&self) -> ErrorClass {
        match self {
            SimError::DeadlineExceeded { .. } => ErrorClass::Transient,
            SimError::Deadlock(_)
            | SimError::CycleBudgetExceeded { .. }
            | SimError::InvariantViolation(_)
            | SimError::WorkloadPanic(_)
            | SimError::SnapshotRejected(_) => ErrorClass::Permanent,
        }
    }

    /// The diagnostic snapshot, when the failure carries one.
    pub fn snapshot(&self) -> Option<&DiagnosticSnapshot> {
        match self {
            SimError::Deadlock(s)
            | SimError::CycleBudgetExceeded { snapshot: s, .. }
            | SimError::DeadlineExceeded { snapshot: s, .. } => Some(s),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock(s) => write!(f, "simulator deadlock: {s}"),
            SimError::CycleBudgetExceeded { budget, snapshot } => {
                write!(f, "cycle budget of {budget} exceeded: {snapshot}")
            }
            SimError::InvariantViolation(msg) => write!(f, "invariant violation: {msg}"),
            SimError::WorkloadPanic(msg) => write!(f, "workload panic: {msg}"),
            SimError::DeadlineExceeded {
                deadline_ms,
                snapshot,
            } => {
                write!(
                    f,
                    "wall-clock deadline of {deadline_ms} ms exceeded: {snapshot}"
                )
            }
            SimError::SnapshotRejected(msg) => write!(f, "snapshot rejected: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(
            SimError::Deadlock(DiagnosticSnapshot::default()).kind(),
            "deadlock"
        );
        assert_eq!(
            SimError::CycleBudgetExceeded {
                budget: 1,
                snapshot: DiagnosticSnapshot::default()
            }
            .kind(),
            "cycle-budget"
        );
        assert_eq!(
            SimError::InvariantViolation(String::new()).kind(),
            "invariant"
        );
        assert_eq!(SimError::WorkloadPanic(String::new()).kind(), "panic");
        assert_eq!(
            SimError::DeadlineExceeded {
                deadline_ms: 5,
                snapshot: DiagnosticSnapshot::default()
            }
            .kind(),
            "deadline"
        );
        assert_eq!(
            SimError::SnapshotRejected(String::new()).kind(),
            "snapshot-rejected"
        );
    }

    #[test]
    fn only_deadline_misses_are_transient() {
        let deadline = SimError::DeadlineExceeded {
            deadline_ms: 100,
            snapshot: DiagnosticSnapshot::default(),
        };
        assert_eq!(deadline.class(), ErrorClass::Transient);
        assert!(deadline.snapshot().is_some(), "deadline carries state");
        assert!(deadline.to_string().contains("100 ms"), "{deadline}");
        for permanent in [
            SimError::Deadlock(DiagnosticSnapshot::default()),
            SimError::CycleBudgetExceeded {
                budget: 1,
                snapshot: DiagnosticSnapshot::default(),
            },
            SimError::InvariantViolation(String::new()),
            SimError::WorkloadPanic(String::new()),
            SimError::SnapshotRejected(String::new()),
        ] {
            assert_eq!(permanent.class(), ErrorClass::Permanent, "{permanent:?}");
        }
        assert_eq!(ErrorClass::Transient.label(), "transient");
        assert_eq!(ErrorClass::Permanent.to_string(), "permanent");
    }

    #[test]
    fn display_mentions_the_snapshot() {
        let e = SimError::Deadlock(DiagnosticSnapshot {
            cycle: 42,
            mshr_occupancy: 3,
            mshr_capacity: 32,
            ..Default::default()
        });
        let text = e.to_string();
        assert!(text.contains("deadlock"), "{text}");
        assert!(text.contains("mshrs 3/32"), "{text}");
    }
}
