//! Cycle-level timing simulator for the ECDP reproduction.
//!
//! This crate models the baseline machine of the paper's Table 5 (adapted to
//! 64-byte cache blocks, see `DESIGN.md`):
//!
//! * an out-of-order instruction window (256 entries, 4-wide dispatch and
//!   retire, 32-entry load/store queue) that exposes the memory-level
//!   parallelism — and, crucially, the *lack* of it on pointer chases;
//! * a two-level cache hierarchy (32 KB L1D, 1 MB 8-way L2 with 32 MSHRs);
//! * a DRAM system with banks, row buffers and a shared data bus running at
//!   a 5:1 core-to-bus frequency ratio;
//! * per-core prefetch request queues and a shared memory request buffer.
//!
//! Prefetchers and throttling policies plug in through the [`Prefetcher`]
//! and [`ThrottlePolicy`] traits; the crates `prefetch`, `throttle` and
//! `ecdp` provide the implementations evaluated in the paper.
//!
//! Workloads are *execution-driven, replayed*: a workload runs functionally
//! against [`sim_mem::SimMemory`] recording a [`Trace`]; the [`Machine`]
//! replays it, applying stores to memory in program order at dispatch so
//! that content-directed block scans observe realistic block contents.
//!
//! # Example
//!
//! ```
//! use sim_core::{Machine, MachineConfig, TraceBuilder};
//! use sim_mem::{Heap, SimMemory, layout};
//!
//! // Record a tiny trace: a pointer chase over a two-node list.
//! let mut tb = TraceBuilder::new(SimMemory::new());
//! let mut heap = Heap::new(layout::HEAP_BASE, layout::HEAP_LIMIT);
//! let n1 = heap.alloc(8).unwrap();
//! let n2 = heap.alloc(8).unwrap();
//! tb.setup(|mem| {
//!     mem.write_u32(n1 + 4, n2);
//!     mem.write_u32(n2 + 4, 0);
//! });
//! let (mut cur, mut dep) = (n1, None);
//! while cur != 0 {
//!     let (next, id) = tb.load(0x100, cur + 4, dep);
//!     cur = next;
//!     dep = Some(id);
//! }
//! let trace = tb.finish();
//!
//! let mut machine = Machine::new(MachineConfig::default());
//! let stats = machine.run(&trace).expect("simulation failed");
//! assert_eq!(stats.retired_instructions, 2);
//! ```
//!
//! Runs are fallible: [`Machine::run`] returns `Result<RunStats,
//! SimError>`, with a watchdog turning livelocks into
//! [`SimError::Deadlock`] reports that carry a [`DiagnosticSnapshot`]
//! of the stuck core instead of aborting the process.

pub mod cache;
pub mod config;
pub mod dram;
pub mod engine;
pub mod error;
pub mod json;
pub mod mshr;
pub mod multicore;
pub mod obs;
pub mod prefetcher;
pub mod snapshot;
pub mod stats;
pub mod stream;
pub mod throttling;
pub mod trace;
pub mod trace_io;
pub mod validate;

pub use cache::{Cache, CacheConfig, LineState};
pub use config::{CoreConfig, DramConfig, DramScheduling, MachineConfig, RowPolicy};
pub use dram::Dram;
pub use engine::Machine;
pub use error::{DiagnosticSnapshot, ErrorClass, SimError};
pub use json::Json;
pub use multicore::{CoreSetup, MultiMachine, MultiRunStats};
pub use obs::{
    IntervalSample, LifecycleEvent, LifecycleStage, ObsCollector, ObsConfig, PrefetcherSample,
    RunTrace, ThrottleTransition, OBS_SCHEMA_VERSION,
};
pub use prefetcher::{
    AccessKind, Aggressiveness, DemandAccess, FillEvent, NullObserver, PgTag, PrefetchCtx,
    PrefetchObserver, PrefetchRequest, Prefetcher, PrefetcherId, PrefetcherKind,
};
pub use snapshot::{
    config_fingerprint, SnapReader, SnapWriter, Snapshot, SnapshotError, SNAPSHOT_MAGIC,
    SNAPSHOT_SCHEMA, SNAPSHOT_VERSION,
};
pub use stats::{PrefetcherStats, PrefetcherSummary, RunStats, StatsSummary};
pub use stream::{
    write_external, ExternalTrace, StreamedOps, XtraceError, XtraceWriter, STREAM_CHUNK_OPS,
    STREAM_LOOKBACK_OPS, XTRACE_MAGIC, XTRACE_VERSION,
};
pub use throttling::{
    AccuracyClass, DecisionTrace, IntervalFeedback, ThrottleDecision, ThrottlePolicy,
    ThrottleThresholds, TABLE4_THRESHOLDS,
};
pub use trace::{LoadId, OpKind, OpSource, ResidentOps, Trace, TraceBuilder, TraceOp, NO_DEP};
pub use validate::{
    check_transition_step, rederive_transition, IntervalCheck, RuntimeValidator, ValidateConfig,
};

/// Re-export of the address type used throughout the simulator.
pub use sim_mem::Addr;
