//! Miss-status-holding registers for the last-level cache.
//!
//! Each entry records, per the paper's Table 7, the triggering load's block
//! offset (here: the full trigger address) and — for ECDP — the hint bit
//! vector context needed when the fill arrives. Demand requests arriving for
//! a block whose prefetch is already in flight *merge* into the entry; such
//! prefetches are counted as used-but-late.

use crate::prefetcher::{AccessKind, PgTag, PrefetcherId};
use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
use sim_mem::Addr;

/// An in-flight last-level-cache miss.
#[derive(Debug, Clone)]
pub struct MshrEntry {
    /// Block address being fetched.
    pub block_addr: Addr,
    /// What allocated the entry.
    pub kind: AccessKind,
    /// PC of the triggering (root) load.
    pub trigger_pc: u32,
    /// Exact byte address of the triggering demand access.
    pub trigger_addr: Addr,
    /// Content-directed recursion depth (prefetch entries).
    pub depth: u8,
    /// Pointer-group attribution (prefetch entries).
    pub pg: Option<PgTag>,
    /// Window slots (trace op indices) waiting on the fill.
    pub waiters: Vec<u32>,
    /// True if a demand request merged into a prefetch-allocated entry.
    pub demand_merged: bool,
    /// True if a merged demand was a store.
    pub store_merged: bool,
}

/// A fixed-capacity MSHR file with block-address lookup.
///
/// # Example
///
/// ```
/// use sim_core::mshr::MshrFile;
/// use sim_core::prefetcher::AccessKind;
///
/// let mut m = MshrFile::new(2);
/// let slot = m.alloc(0x1000, AccessKind::DemandLoad, 0x400, 0x1004).expect("free slot");
/// assert!(m.find(0x1000).is_some());
/// let entry = m.free(slot);
/// assert_eq!(entry.block_addr, 0x1000);
/// assert!(m.find(0x1000).is_none());
/// ```
#[derive(Debug)]
pub struct MshrFile {
    entries: Vec<Option<MshrEntry>>,
    occupied: u32,
    /// Retired waiter vectors awaiting reuse by [`MshrFile::alloc`], so
    /// the steady state allocates no per-miss `Vec`s.
    spare_waiters: Vec<Vec<u32>>,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    pub fn new(capacity: u32) -> Self {
        MshrFile {
            entries: (0..capacity).map(|_| None).collect(),
            occupied: 0,
            spare_waiters: Vec::new(),
        }
    }

    /// Number of occupied entries.
    pub fn occupied(&self) -> u32 {
        self.occupied
    }

    /// True if no entry is free.
    pub fn is_full(&self) -> bool {
        self.occupied as usize == self.entries.len()
    }

    /// Finds the slot holding `block_addr`, if any.
    pub fn find(&self, block_addr: Addr) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| e.block_addr == block_addr))
    }

    /// Immutable access to a slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn get(&self, slot: usize) -> &MshrEntry {
        self.entries[slot].as_ref().expect("free MSHR slot")
    }

    /// Mutable access to a slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn get_mut(&mut self, slot: usize) -> &mut MshrEntry {
        self.entries[slot].as_mut().expect("free MSHR slot")
    }

    /// Allocates an entry for `block_addr`. Returns `None` when full.
    pub fn alloc(
        &mut self,
        block_addr: Addr,
        kind: AccessKind,
        trigger_pc: u32,
        trigger_addr: Addr,
    ) -> Option<usize> {
        debug_assert!(self.find(block_addr).is_none(), "duplicate MSHR");
        let slot = self.entries.iter().position(Option::is_none)?;
        self.entries[slot] = Some(MshrEntry {
            block_addr,
            kind,
            trigger_pc,
            trigger_addr,
            depth: 0,
            pg: None,
            waiters: self.spare_waiters.pop().unwrap_or_default(),
            demand_merged: false,
            store_merged: false,
        });
        self.occupied += 1;
        Some(slot)
    }

    /// Frees a slot, returning the entry.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already free.
    pub fn free(&mut self, slot: usize) -> MshrEntry {
        let e = self.entries[slot].take().expect("double free of MSHR slot");
        self.occupied -= 1;
        e
    }

    /// Returns a freed entry's waiter storage for reuse by a later
    /// [`MshrFile::alloc`] (the pool is bounded by the entry count).
    pub fn recycle_waiters(&mut self, mut waiters: Vec<u32>) {
        if self.spare_waiters.len() < self.entries.len() {
            waiters.clear();
            self.spare_waiters.push(waiters);
        }
    }

    /// Serializes every slot in order (slot indices are stored in DRAM
    /// requests, so positions must survive the round trip). The spare
    /// waiter pool is a pure allocation cache and is not captured.
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.u32(self.entries.len() as u32);
        for slot in &self.entries {
            match slot {
                None => w.bool(false),
                Some(e) => {
                    w.bool(true);
                    w.u32(e.block_addr);
                    write_access_kind(w, e.kind);
                    w.u32(e.trigger_pc);
                    w.u32(e.trigger_addr);
                    w.u8(e.depth);
                    match e.pg {
                        None => w.bool(false),
                        Some(pg) => {
                            w.bool(true);
                            w.u32(pg.pc);
                            w.i16(pg.offset);
                        }
                    }
                    w.u32(e.waiters.len() as u32);
                    for &wt in &e.waiters {
                        w.u32(wt);
                    }
                    w.bool(e.demand_merged);
                    w.bool(e.store_merged);
                }
            }
        }
    }

    /// Restores state saved by [`MshrFile::save_state`] into a file of
    /// the same capacity.
    pub(crate) fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let n = r.u32()? as usize;
        if n != self.entries.len() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {n} MSHRs, this file has {}",
                self.entries.len()
            )));
        }
        self.occupied = 0;
        for slot in &mut self.entries {
            *slot = None;
        }
        for i in 0..n {
            if !r.bool()? {
                continue;
            }
            let block_addr = r.u32()?;
            let kind = read_access_kind(r)?;
            let trigger_pc = r.u32()?;
            let trigger_addr = r.u32()?;
            let depth = r.u8()?;
            let pg = if r.bool()? {
                let pc = r.u32()?;
                let offset = r.i16()?;
                Some(PgTag { pc, offset })
            } else {
                None
            };
            let num_waiters = r.u32()? as usize;
            let mut waiters = Vec::with_capacity(num_waiters);
            for _ in 0..num_waiters {
                waiters.push(r.u32()?);
            }
            let demand_merged = r.bool()?;
            let store_merged = r.bool()?;
            self.entries[i] = Some(MshrEntry {
                block_addr,
                kind,
                trigger_pc,
                trigger_addr,
                depth,
                pg,
                waiters,
                demand_merged,
                store_merged,
            });
            self.occupied += 1;
        }
        Ok(())
    }
}

fn write_access_kind(w: &mut SnapWriter, k: AccessKind) {
    match k {
        AccessKind::DemandLoad => w.u8(0),
        AccessKind::DemandStore => w.u8(1),
        AccessKind::Prefetch(id) => {
            w.u8(2);
            w.u8(id.0);
        }
    }
}

fn read_access_kind(r: &mut SnapReader<'_>) -> Result<AccessKind, SnapshotError> {
    match r.u8()? {
        0 => Ok(AccessKind::DemandLoad),
        1 => Ok(AccessKind::DemandStore),
        2 => Ok(AccessKind::Prefetch(PrefetcherId(r.u8()?))),
        t => Err(SnapshotError::Malformed(format!("access kind tag {t}"))),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_full() {
        let mut m = MshrFile::new(2);
        assert!(m.alloc(0x0, AccessKind::DemandLoad, 1, 0x0).is_some());
        assert!(m.alloc(0x40, AccessKind::DemandLoad, 1, 0x40).is_some());
        assert!(m.is_full());
        assert!(m.alloc(0x80, AccessKind::DemandLoad, 1, 0x80).is_none());
    }

    #[test]
    fn free_slot_is_reusable() {
        let mut m = MshrFile::new(1);
        let s = m.alloc(0x0, AccessKind::DemandLoad, 1, 0x0).unwrap();
        m.free(s);
        assert_eq!(m.occupied(), 0);
        assert!(m.alloc(0x40, AccessKind::DemandLoad, 1, 0x40).is_some());
    }

    #[test]
    fn find_locates_entry_by_block() {
        let mut m = MshrFile::new(4);
        m.alloc(0x100, AccessKind::DemandLoad, 1, 0x104).unwrap();
        let s = m.alloc(0x200, AccessKind::DemandLoad, 2, 0x200).unwrap();
        assert_eq!(m.find(0x200), Some(s));
        assert_eq!(m.find(0x300), None);
    }

    #[test]
    fn merge_state_tracks_waiters() {
        let mut m = MshrFile::new(1);
        let s = m
            .alloc(
                0x0,
                AccessKind::Prefetch(crate::prefetcher::PrefetcherId(1)),
                0,
                0,
            )
            .unwrap();
        let e = m.get_mut(s);
        e.waiters.push(7);
        e.demand_merged = true;
        assert_eq!(m.get(s).waiters, vec![7]);
        assert!(m.get(s).demand_merged);
    }
}
