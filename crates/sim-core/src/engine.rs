//! The single-core timing engine.
//!
//! [`Machine`] replays a [`Trace`] through an out-of-order instruction
//! window attached to an L1/L2/DRAM hierarchy with pluggable prefetchers
//! and a throttling policy. See the crate docs for the modelling approach.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use sim_mem::{block_of, Addr, SimMemory};

use crate::cache::{Cache, LineState};
use crate::config::MachineConfig;
use crate::dram::{Dram, DramCompletion, DramRequest};
use crate::error::{DiagnosticSnapshot, SimError};
use crate::mshr::MshrFile;
use crate::obs::{
    IntervalObservation, LifecycleEvent, LifecycleStage, ObsCollector, ObsConfig, PrefetcherSample,
    RunTrace, ThrottleTransition,
};
use crate::prefetcher::{
    AccessKind, Aggressiveness, DemandAccess, FillEvent, PrefetchCtx, PrefetchObserver,
    PrefetchRequest, Prefetcher, PrefetcherId,
};
use crate::snapshot::{
    config_fingerprint, CoreState, PrefetcherState, SnapReader, SnapWriter, Snapshot, SnapshotError,
};
use crate::stats::{PrefetcherStats, RunStats};
use crate::throttling::{
    FeedbackCounters, IntervalFeedback, NoThrottle, ThrottleDecision, ThrottlePolicy,
};
use crate::trace::{OpKind, OpSource, ResidentOps, Trace, TraceOp, NO_DEP};

const NOT_DONE: u64 = u64::MAX;

/// Size of the direct-mapped pollution filter (blocks evicted by
/// prefetches, consulted on demand misses — FDP-style accounting).
const POLLUTION_FILTER_ENTRIES: usize = 4096;

/// Completion-cycle store for in-window ops.
///
/// Replaces the old `Vec<u64>` indexed by absolute op index — which grew
/// with the trace (8 bytes per op) and made the engine's footprint
/// proportional to trace length, defeating streamed ingestion. The live
/// range is bounded: the engine only writes completion cycles for ops
/// between the window head and the dispatch cursor, and the window holds
/// at most `window_size` ops (every op is ≥ 1 instruction). Everything
/// below the window head has retired, and the only property the engine
/// ever observes of a retired op's entry is "already done" (`<= now`), so
/// settled indices read as 0 — behaviorally identical to the dense array
/// (the same argument [`CoreSim::save_warm`] has always relied on).
struct Completion {
    ring: Vec<u64>,
    mask: usize,
    /// Lowest live index: everything below has retired (settled).
    base: usize,
}

impl Completion {
    fn new() -> Self {
        Completion {
            ring: Vec::new(),
            mask: 0,
            base: 0,
        }
    }

    /// Resets for a fresh replay pass. Capacity covers twice the maximum
    /// number of in-window ops so the live range never wraps onto itself.
    fn reset(&mut self, window_size: u32) {
        let cap = (2 * window_size.max(1) as usize).next_power_of_two();
        self.ring.clear();
        self.ring.resize(cap, NOT_DONE);
        self.mask = cap - 1;
        self.base = 0;
    }

    #[inline]
    fn get(&self, idx: usize) -> u64 {
        if idx < self.base {
            // Retired before the window head: settled, observed only as
            // "already done".
            0
        } else {
            self.ring[idx & self.mask]
        }
    }

    #[inline]
    fn set(&mut self, idx: usize, at: u64) {
        debug_assert!(
            idx >= self.base && idx - self.base <= self.mask,
            "completion write outside the live range"
        );
        self.ring[idx & self.mask] = at;
    }

    /// Advances the settled frontier to `new_base` (the window head after
    /// retirement), resetting the passed slots to `NOT_DONE` so a later op
    /// aliasing onto them starts un-completed.
    fn settle_below(&mut self, new_base: usize) {
        if new_base - self.base > self.mask {
            // A jump past the whole ring (warm restore deep into a trace)
            // touches every slot exactly once.
            for s in &mut self.ring {
                *s = NOT_DONE;
            }
        } else {
            for i in self.base..new_base {
                self.ring[i & self.mask] = NOT_DONE;
            }
        }
        self.base = new_base;
    }

    fn base(&self) -> usize {
        self.base
    }
}

#[derive(Debug, Clone, Copy)]
struct WinEntry {
    op_idx: u32,
    instrs: u32,
    retired: u32,
    issued: bool,
    counted_l1: bool,
    counted_l2: bool,
    value: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PollutionSlot {
    block_addr: Addr,
    by: PrefetcherId,
}

/// Per-core microarchitectural state (shared between the single-core
/// [`Machine`] and the multi-core engine).
pub(crate) struct CoreSim {
    pub(crate) core_id: u8,
    cfg: Arc<MachineConfig>,
    pub(crate) mem: SimMemory,
    /// Number of ops in the trace this core replays (the op stream itself
    /// is handed to [`CoreSim::step`] each cycle, so a streamed source
    /// never has to be fully resident).
    total_ops: usize,
    next_dispatch: usize,
    window: VecDeque<WinEntry>,
    window_instrs: u32,
    completed: Completion,
    pending_mem: VecDeque<u32>,
    /// Issued memory ops still occupying LSQ slots.
    lsq_used: u32,
    /// Completion wheel: min-heap of `(completion cycle, op)` for issued
    /// memory ops. Replaces the per-cycle `outstanding.retain` scan —
    /// expired entries pop from the top, and the top entry doubles as the
    /// core's earliest wake-up event for idle-cycle skipping.
    inflight: BinaryHeap<Reverse<(u64, u32)>>,
    l1: Cache,
    pub(crate) l2: Cache,
    pub(crate) mshrs: MshrFile,
    pf_queue: VecDeque<PrefetchRequest>,
    /// Reused staging buffer for prefetcher request generation, so the
    /// steady state allocates no per-event `Vec`s.
    pf_scratch: Vec<PrefetchRequest>,
    pollution: Vec<Option<PollutionSlot>>,
    pending_writebacks: VecDeque<Addr>,
    pub(crate) counters: Vec<FeedbackCounters>,
    misses_smoothed: f64,
    cur_misses: u64,
    last_interval_evictions: u64,
    pub(crate) stats: RunStats,
    /// Observability collector; `None` (the default) keeps every hook on
    /// the hot path down to a pointer null-check.
    pub(crate) obs: Option<Box<ObsCollector>>,
    /// Paper-conformance validator; `None` (the default without the
    /// `validate` feature) keeps the hook down to a pointer null-check,
    /// mirroring `obs`.
    pub(crate) validate: Option<Box<crate::validate::RuntimeValidator>>,
    pub(crate) retired_ops: usize,
    /// Last cycle with *forward progress*: an instruction retired or an
    /// MSHR drained. Activity without progress (e.g. a prefetcher
    /// spinning against a full queue) does not move this, which is what
    /// lets the watchdog catch livelocks that the quiescence check
    /// cannot see.
    last_progress: u64,
}

impl CoreSim {
    pub(crate) fn new(
        core_id: u8,
        cfg: Arc<MachineConfig>,
        initial_memory: &SimMemory,
        total_ops: usize,
        num_prefetchers: usize,
        warm_resume: bool,
    ) -> Self {
        let l1 = Cache::new(cfg.l1);
        let l2 = Cache::new(cfg.l2);
        let mshrs = MshrFile::new(cfg.l2_mshrs);
        let stats = RunStats {
            prefetchers: (0..num_prefetchers)
                .map(|_| PrefetcherStats::default())
                .collect(),
            ..Default::default()
        };
        let mut sim = CoreSim {
            core_id,
            cfg,
            // Copy-on-write snapshot: shares pages with the trace. A
            // machine about to resume from a warm snapshot skips the
            // clone — `restore_warm` overwrites the image anyway.
            mem: if warm_resume {
                SimMemory::new()
            } else {
                initial_memory.clone()
            },
            total_ops,
            next_dispatch: 0,
            window: VecDeque::new(),
            window_instrs: 0,
            completed: Completion::new(),
            pending_mem: VecDeque::new(),
            lsq_used: 0,
            inflight: BinaryHeap::new(),
            l1,
            l2,
            mshrs,
            pf_queue: VecDeque::new(),
            pf_scratch: Vec::new(),
            pollution: vec![None; POLLUTION_FILTER_ENTRIES],
            pending_writebacks: VecDeque::new(),
            counters: (0..num_prefetchers)
                .map(|_| FeedbackCounters::default())
                .collect(),
            misses_smoothed: 0.0,
            cur_misses: 0,
            last_interval_evictions: 0,
            stats,
            obs: None,
            validate: crate::validate::default_runtime_validator(),
            retired_ops: 0,
            last_progress: 0,
        };
        sim.reset_replay();
        sim
    }

    /// Records a prefetch lifecycle event if lifecycle tracing is on.
    fn obs_lifecycle(
        &mut self,
        cycle: u64,
        stage: LifecycleStage,
        pid: PrefetcherId,
        addr: Addr,
        late: bool,
    ) {
        if let Some(o) = self.obs.as_deref_mut() {
            if o.lifecycle_enabled() {
                o.record_lifecycle(LifecycleEvent {
                    cycle,
                    stage,
                    prefetcher: pid.0,
                    addr,
                    late,
                });
            }
        }
    }

    /// Rewinds replay state for another pass over the trace (multi-core
    /// restart), keeping caches, prefetcher state and counters warm.
    pub(crate) fn rewind(&mut self, initial_memory: &SimMemory) {
        // Restore from the shared copy-on-write snapshot, reusing this
        // core's page-table allocation (no page data is copied).
        self.mem.clone_from(initial_memory);
        self.reset_replay();
    }

    /// Replay-cursor reset shared by [`CoreSim::new`] and
    /// [`CoreSim::rewind`].
    fn reset_replay(&mut self) {
        self.next_dispatch = 0;
        self.window.clear();
        self.window_instrs = 0;
        self.completed.reset(self.cfg.core.window_size);
        self.pending_mem.clear();
        // Outstanding ops and MSHR waiters refer to the finished pass; the
        // multi-core driver only rewinds once the window has drained, so
        // these are empty by construction.
        self.lsq_used = 0;
        self.inflight.clear();
        self.retired_ops = 0;
    }

    pub(crate) fn finished(&self) -> bool {
        self.retired_ops == self.total_ops
    }

    pub(crate) fn has_pending_writebacks(&self) -> bool {
        !self.pending_writebacks.is_empty()
    }

    fn entry_mut(&mut self, op_idx: u32) -> &mut WinEntry {
        let front = self.window.front().expect("window empty").op_idx;
        &mut self.window[(op_idx - front) as usize]
    }

    fn pollution_slot(block_addr: Addr) -> usize {
        ((block_addr / sim_mem::BLOCK_BYTES) as usize) % POLLUTION_FILTER_ENTRIES
    }

    /// Handles an L2 victim: writeback bookkeeping, unused-prefetch
    /// accounting, and pollution tracking. `filled_by` names the prefetcher
    /// whose fill caused this eviction (None for demand fills): a later
    /// demand miss to the victim is a *pollution* event charged to it.
    fn handle_l2_eviction(
        &mut self,
        victim: crate::cache::Evicted,
        filled_by: Option<PrefetcherId>,
        now: u64,
        prefetchers: &mut [Box<dyn Prefetcher>],
        observer: &mut dyn PrefetchObserver,
    ) {
        if victim.state.dirty {
            self.stats.writebacks += 1;
            self.pending_writebacks.push_back(victim.block_addr);
        }
        if let Some(pid) = victim.state.prefetched_by {
            // Evicted before any demand use.
            self.stats.prefetchers[pid.0 as usize].unused_evicted += 1;
            observer.prefetch_unused(victim.block_addr, pid, victim.state.pg_tag);
            self.obs_lifecycle(now, LifecycleStage::Evicted, pid, victim.block_addr, false);
            prefetchers[pid.0 as usize].on_prefetch_outcome(
                victim.block_addr,
                victim.state.pg_tag,
                false,
            );
        }
        if let Some(pid) = filled_by {
            // The victim was displaced by a prefetch: remember it so a
            // demand re-miss can be attributed as cache pollution.
            let slot = Self::pollution_slot(victim.block_addr);
            self.pollution[slot] = Some(PollutionSlot {
                block_addr: victim.block_addr,
                by: pid,
            });
        }
    }

    /// Fills a block into the L1, folding a dirty victim into the L2.
    fn fill_l1(&mut self, addr: Addr, dirty: bool) {
        if let Some(victim) = self.l1.fill(
            addr,
            LineState {
                dirty,
                ..Default::default()
            },
        ) {
            if victim.state.dirty {
                if let Some(line) = self.l2.access(victim.block_addr) {
                    line.dirty = true;
                }
                // If the block is no longer in L2 the writeback is silently
                // dropped — an accepted simplification (see DESIGN.md).
            }
        }
    }

    /// A demand access used a prefetched block: update statistics,
    /// profiling and the feedback counters. Late uses count toward feedback
    /// *accuracy* (the bandwidth was not wasted) but not toward *coverage*
    /// (the demand still missed; the merge path charges the miss counter) —
    /// otherwise a flood of barely-late junk prefetches reads as high
    /// coverage and can never be throttled down.
    #[allow(clippy::too_many_arguments)]
    fn credit_prefetch_use(
        &mut self,
        block_addr: Addr,
        pid: PrefetcherId,
        pg: Option<crate::prefetcher::PgTag>,
        late: bool,
        now: u64,
        prefetchers: &mut [Box<dyn Prefetcher>],
        observer: &mut dyn PrefetchObserver,
    ) {
        self.counters[pid.0 as usize].record_used(late);
        let s = &mut self.stats.prefetchers[pid.0 as usize];
        s.used += 1;
        if late {
            s.late += 1;
        }
        observer.prefetch_used(block_addr, pid, pg);
        self.obs_lifecycle(now, LifecycleStage::Used, pid, block_addr, late);
        prefetchers[pid.0 as usize].on_prefetch_outcome(block_addr, pg, true);
    }

    /// Processes DRAM read completions routed to this core.
    pub(crate) fn apply_completion(
        &mut self,
        completion: &DramCompletion,
        now: u64,
        prefetchers: &mut [Box<dyn Prefetcher>],
        observer: &mut dyn PrefetchObserver,
    ) {
        let req = completion.request;
        if req.is_write {
            return;
        }
        let entry = self.mshrs.free(req.mshr_slot as usize);
        let block = entry.block_addr;
        self.last_progress = now;

        // Memory service latency, split demand vs prefetch (§4's contention
        // measurement).
        let latency = completion.finish_cycle.saturating_sub(req.enqueue_cycle);
        match entry.kind {
            AccessKind::Prefetch(_) => self.stats.prefetch_service.record(latency),
            _ => self.stats.demand_service.record(latency),
        }

        // Determine line metadata.
        let mut state = LineState {
            dirty: matches!(entry.kind, AccessKind::DemandStore) || entry.store_merged,
            ..Default::default()
        };
        match entry.kind {
            AccessKind::Prefetch(pid) => {
                self.obs_lifecycle(now, LifecycleStage::Filled, pid, block, false);
                if entry.demand_merged {
                    // Late prefetch: consumed at arrival.
                    self.credit_prefetch_use(
                        block,
                        pid,
                        entry.pg,
                        true,
                        now,
                        prefetchers,
                        observer,
                    );
                    state.used = true;
                } else {
                    state.prefetched_by = Some(pid);
                    state.pg_tag = entry.pg;
                }
            }
            AccessKind::DemandLoad | AccessKind::DemandStore => {
                state.used = true;
            }
        }

        if let Some(victim) = self.l2.fill(block, state) {
            let filled_by = match entry.kind {
                AccessKind::Prefetch(pid) => Some(pid),
                _ => None,
            };
            self.handle_l2_eviction(victim, filled_by, now, prefetchers, observer);
        }

        // Wake waiting loads (their completion-wheel entries are created
        // here — a waiter's completion cycle is unknown until its fill).
        let wake_at = now + self.cfg.l1.hit_latency;
        if !entry.waiters.is_empty() {
            self.fill_l1(entry.trigger_addr, false);
        }
        for &w in &entry.waiters {
            self.completed.set(w as usize, wake_at);
            self.inflight.push(Reverse((wake_at, w)));
        }

        // Notify prefetchers of the fill (content-directed scans happen
        // here). Store-triggered fills are visible too; prefetchers decide.
        let ev = FillEvent {
            block_addr: block,
            kind: entry.kind,
            trigger_pc: entry.trigger_pc,
            trigger_addr: entry.trigger_addr,
            depth: entry.depth,
            pg: entry.pg,
            cycle: now,
        };
        self.mshrs.recycle_waiters(entry.waiters);
        let mut buf = std::mem::take(&mut self.pf_scratch);
        let mut ctx = PrefetchCtx::with_buffer(&self.mem, now, buf);
        for p in prefetchers.iter_mut() {
            p.on_fill(&mut ctx, &ev);
        }
        buf = ctx.into_buffer();
        self.stage_prefetches(&mut buf);
        self.pf_scratch = buf;
    }

    fn stage_prefetches(&mut self, reqs: &mut Vec<PrefetchRequest>) {
        for r in reqs.drain(..) {
            if self.pf_queue.len() >= self.cfg.prefetch_queue_size as usize {
                // Queue full: drop the oldest request.
                self.pf_queue.pop_front();
            }
            self.pf_queue.push_back(r);
        }
    }

    /// Retires completed instructions from the window head. Returns retired
    /// instruction count.
    fn retire(&mut self, now: u64) -> u32 {
        let mut budget = self.cfg.core.retire_width;
        let mut retired = 0;
        while budget > 0 {
            let Some(head) = self.window.front_mut() else {
                break;
            };
            if self.completed.get(head.op_idx as usize) > now {
                break;
            }
            let take = (head.instrs - head.retired).min(budget);
            head.retired += take;
            budget -= take;
            retired += take;
            self.window_instrs -= take;
            if head.retired == head.instrs {
                self.window.pop_front();
                self.retired_ops += 1;
            }
        }
        self.stats.retired_instructions += u64::from(retired);
        if retired > 0 {
            self.last_progress = now;
            // Everything below the (new) window head has retired: advance
            // the settled frontier so the completion ring can recycle
            // those slots.
            let new_base = self
                .window
                .front()
                .map_or(self.next_dispatch, |h| h.op_idx as usize);
            self.completed.settle_below(new_base);
        }
        retired
    }

    /// Dispatches ops into the window. Returns dispatched instruction count.
    fn dispatch<O: OpSource>(&mut self, ops: &mut O, now: u64) -> u32 {
        let mut budget = self.cfg.core.dispatch_width;
        let mut dispatched = 0;
        while budget > 0 && self.next_dispatch < self.total_ops {
            let op = ops.op(self.next_dispatch);
            let instrs = match op.kind {
                OpKind::Compute => op.value,
                _ => 1,
            };
            if self.window_instrs + instrs > self.cfg.core.window_size && self.window_instrs > 0 {
                break;
            }
            let op_idx = self.next_dispatch as u32;
            let mut value = op.value;
            match op.kind {
                OpKind::Load => value = self.mem.read_u32(op.addr),
                OpKind::Store => self.mem.write_u32(op.addr, op.value),
                OpKind::Compute => {
                    self.completed.set(self.next_dispatch, now + 1);
                }
            }
            self.window.push_back(WinEntry {
                op_idx,
                instrs,
                retired: 0,
                issued: false,
                counted_l1: false,
                counted_l2: false,
                value,
            });
            if op.kind != OpKind::Compute {
                self.pending_mem.push_back(op_idx);
            }
            self.window_instrs += instrs;
            self.next_dispatch += 1;
            budget = budget.saturating_sub(instrs);
            dispatched += instrs;
        }
        dispatched
    }

    /// Issues ready memory ops to the hierarchy. Returns issued op count.
    #[allow(clippy::too_many_lines)]
    fn issue<O: OpSource>(
        &mut self,
        ops: &mut O,
        now: u64,
        dram: &mut Dram,
        prefetchers: &mut [Box<dyn Prefetcher>],
        observer: &mut dyn PrefetchObserver,
        l2_port: &mut u32,
    ) -> u32 {
        // Free LSQ slots for completed ops: pop expired completion-wheel
        // entries instead of scanning the whole LSQ every cycle.
        while let Some(&Reverse((c, _))) = self.inflight.peek() {
            if c > now {
                break;
            }
            self.inflight.pop();
            self.lsq_used -= 1;
        }

        let mut issued = 0;
        let mut budget = self.cfg.core.issue_width;
        let mut qi = 0;
        while qi < self.pending_mem.len() {
            if budget == 0 || self.lsq_used >= self.cfg.core.lsq_size {
                break;
            }
            let op_idx = self.pending_mem[qi];
            let op = ops.op(op_idx as usize);
            // Address dependence: the producing load must have completed.
            if op.dep != NO_DEP && self.completed.get(op.dep as usize) > now {
                qi += 1;
                continue;
            }
            match self.try_issue_one(op_idx, &op, now, dram, prefetchers, observer, l2_port) {
                IssueOutcome::Issued => {
                    self.entry_mut(op_idx).issued = true;
                    self.lsq_used += 1;
                    self.pending_mem.remove(qi);
                    issued += 1;
                    budget -= 1;
                }
                IssueOutcome::Stalled => {
                    qi += 1;
                }
            }
        }
        issued
    }

    /// Records an issued memory op's completion cycle and its
    /// completion-wheel entry (which later frees the LSQ slot and feeds
    /// [`CoreSim::next_local_event`]).
    #[inline]
    fn complete_issued(&mut self, op_idx: u32, at: u64) {
        self.completed.set(op_idx as usize, at);
        self.inflight.push(Reverse((at, op_idx)));
    }

    #[allow(clippy::too_many_arguments)]
    fn try_issue_one(
        &mut self,
        op_idx: u32,
        op: &TraceOp,
        now: u64,
        dram: &mut Dram,
        prefetchers: &mut [Box<dyn Prefetcher>],
        observer: &mut dyn PrefetchObserver,
        l2_port: &mut u32,
    ) -> IssueOutcome {
        let is_store = op.kind == OpKind::Store;
        let value = {
            let front = self
                .window
                .front()
                .expect("issuing op is in the window")
                .op_idx;
            self.window[(op_idx - front) as usize].value
        };

        // L1 access.
        let l1_hit = self.l1.access(op.addr).is_some();
        {
            let e = self.entry_mut(op_idx);
            if !e.counted_l1 {
                e.counted_l1 = true;
                if l1_hit {
                    self.stats.l1_hits += 1;
                } else {
                    self.stats.l1_misses += 1;
                }
            }
        }
        if l1_hit {
            if is_store {
                self.l1
                    .access(op.addr)
                    .expect("L1 hit implies a resident line")
                    .dirty = true;
                self.complete_issued(op_idx, now + 1);
            } else {
                self.complete_issued(op_idx, now + self.cfg.l1.hit_latency);
            }
            return IssueOutcome::Issued;
        }

        // L1 miss: needs the L2 port this cycle.
        if *l2_port == 0 {
            return IssueOutcome::Stalled;
        }

        let l2_hit = self.l2.access(op.addr).is_some();
        let block = block_of(op.addr);

        if l2_hit {
            *l2_port -= 1;
            {
                let e = self.entry_mut(op_idx);
                if !e.counted_l2 {
                    e.counted_l2 = true;
                    self.stats.l2_demand_accesses += 1;
                }
            }
            // Feedback: first demand touch of a prefetched line.
            let line = self
                .l2
                .access(op.addr)
                .expect("L2 hit implies a resident line");
            let pf = line.prefetched_by.take();
            let pg = line.pg_tag.take();
            line.used = true;
            if is_store {
                line.dirty = true;
            }
            if let Some(pid) = pf {
                self.credit_prefetch_use(block, pid, pg, false, now, prefetchers, observer);
            }
            self.fill_l1(op.addr, is_store);
            let done_at = if is_store {
                now + 1
            } else {
                now + self.cfg.l2.hit_latency
            };
            self.complete_issued(op_idx, done_at);
            let ev = DemandAccess {
                pc: op.pc,
                addr: op.addr,
                value,
                hit: true,
                is_store,
                cycle: now,
            };
            self.notify_demand(&ev, now, prefetchers);
            return IssueOutcome::Issued;
        }

        // L2 miss. Oracle mode converts LDS misses into hits.
        if self.cfg.oracle_lds && op.lds {
            *l2_port -= 1;
            {
                let e = self.entry_mut(op_idx);
                if !e.counted_l2 {
                    e.counted_l2 = true;
                    self.stats.l2_demand_accesses += 1;
                }
            }
            if let Some(victim) = self.l2.fill(
                block,
                LineState {
                    dirty: is_store,
                    used: true,
                    ..Default::default()
                },
            ) {
                self.handle_l2_eviction(victim, None, now, prefetchers, observer);
            }
            self.fill_l1(op.addr, is_store);
            let done_at = if is_store {
                now + 1
            } else {
                now + self.cfg.l2.hit_latency
            };
            self.complete_issued(op_idx, done_at);
            return IssueOutcome::Issued;
        }

        // MSHR merge?
        if let Some(slot) = self.mshrs.find(block) {
            *l2_port -= 1;
            {
                let e = self.entry_mut(op_idx);
                if !e.counted_l2 {
                    e.counted_l2 = true;
                    self.stats.l2_demand_accesses += 1;
                }
            }
            let entry = self.mshrs.get_mut(slot);
            if matches!(entry.kind, AccessKind::Prefetch(_)) && !entry.demand_merged {
                entry.demand_merged = true;
                self.stats.l2_merged_into_prefetch += 1;
                // Feedback accounting: the demand missed (the data was not
                // yet in the cache); see credit_prefetch_use.
                self.cur_misses += 1;
            }
            if is_store {
                entry.store_merged = true;
                self.complete_issued(op_idx, now + 1);
            } else {
                entry.waiters.push(op_idx);
            }
            // The L2 saw this access (it hit in the MSHRs): prefetchers
            // train on it like a hit — without this, a stream prefetcher
            // whose fills are all in flight never advances its frontier.
            let ev = DemandAccess {
                pc: op.pc,
                addr: op.addr,
                value,
                hit: true,
                is_store,
                cycle: now,
            };
            self.notify_demand(&ev, now, prefetchers);
            return IssueOutcome::Issued;
        }

        // Full L2 miss: need an MSHR and request-buffer space.
        if self.mshrs.is_full() || dram.is_full() {
            return IssueOutcome::Stalled;
        }
        *l2_port -= 1;
        {
            let e = self.entry_mut(op_idx);
            if !e.counted_l2 {
                e.counted_l2 = true;
                self.stats.l2_demand_accesses += 1;
            }
        }
        let kind = if is_store {
            AccessKind::DemandStore
        } else {
            AccessKind::DemandLoad
        };
        let slot = self
            .mshrs
            .alloc(block, kind, op.pc, op.addr)
            .expect("checked not full");
        let ok = dram.try_enqueue(DramRequest {
            block_addr: block,
            is_write: false,
            is_demand: true,
            core: self.core_id,
            mshr_slot: slot as u32,
            enqueue_cycle: now,
        });
        debug_assert!(ok, "buffer checked above");
        self.stats.l2_demand_misses += 1;
        self.cur_misses += 1;
        if op.lds {
            self.stats.l2_lds_misses += 1;
        }
        // Pollution check.
        let pslot = Self::pollution_slot(block);
        if let Some(p) = self.pollution[pslot] {
            if p.block_addr == block {
                self.counters[p.by.0 as usize].record_pollution();
                self.stats.prefetchers[p.by.0 as usize].pollution += 1;
                self.pollution[pslot] = None;
            }
        }
        if is_store {
            self.complete_issued(op_idx, now + 1);
        } else {
            self.mshrs.get_mut(slot).waiters.push(op_idx);
        }
        let ev = DemandAccess {
            pc: op.pc,
            addr: op.addr,
            value,
            hit: false,
            is_store,
            cycle: now,
        };
        self.notify_demand(&ev, now, prefetchers);
        IssueOutcome::Issued
    }

    fn notify_demand(
        &mut self,
        ev: &DemandAccess,
        now: u64,
        prefetchers: &mut [Box<dyn Prefetcher>],
    ) {
        let mut buf = std::mem::take(&mut self.pf_scratch);
        let mut ctx = PrefetchCtx::with_buffer(&self.mem, now, buf);
        for p in prefetchers.iter_mut() {
            p.on_demand_access(&mut ctx, ev);
        }
        buf = ctx.into_buffer();
        self.stage_prefetches(&mut buf);
        self.pf_scratch = buf;
    }

    /// Sends queued memory requests (demand misses wait in the MSHRs; this
    /// pushes them plus writebacks and prefetches into the DRAM buffer).
    /// Returns true if anything was sent.
    pub(crate) fn issue_to_dram(
        &mut self,
        dram: &mut Dram,
        now: u64,
        observer: &mut dyn PrefetchObserver,
    ) -> bool {
        let mut any = false;

        // Writebacks first (they hold no MSHR, only buffer space).
        while let Some(addr) = self.pending_writebacks.front().copied() {
            let ok = dram.try_enqueue(DramRequest {
                block_addr: addr,
                is_write: true,
                is_demand: false,
                core: self.core_id,
                mshr_slot: 0,
                enqueue_cycle: now,
            });
            if !ok {
                break;
            }
            self.pending_writebacks.pop_front();
            any = true;
        }

        // Prefetch queue: one L2 probe per cycle.
        if let Some(req) = self.pf_queue.front().copied() {
            let block = block_of(req.addr);
            if self.l2.probe(block).is_some() || self.mshrs.find(block).is_some() {
                self.pf_queue.pop_front();
                any = true;
            } else if !self.mshrs.is_full() && !dram.is_full() {
                self.pf_queue.pop_front();
                let slot = self
                    .mshrs
                    .alloc(block, AccessKind::Prefetch(req.id), req.root_pc, req.addr)
                    .expect("checked not full");
                {
                    let e = self.mshrs.get_mut(slot);
                    e.depth = req.depth;
                    e.pg = req.pg;
                }
                let ok = dram.try_enqueue(DramRequest {
                    block_addr: block,
                    is_write: false,
                    is_demand: false,
                    core: self.core_id,
                    mshr_slot: slot as u32,
                    enqueue_cycle: now,
                });
                debug_assert!(ok, "buffer checked above");
                self.counters[req.id.0 as usize].record_issued();
                self.stats.prefetchers[req.id.0 as usize].issued += 1;
                observer.prefetch_issued(&req);
                self.obs_lifecycle(now, LifecycleStage::Issued, req.id, block, false);
                any = true;
            }
        }
        any
    }

    /// Ends a feedback interval if enough L2 evictions have accumulated,
    /// consulting the throttling policy. `now` and `bus_transfers` (this
    /// core's cumulative transfer count) feed the observability sampler.
    pub(crate) fn maybe_end_interval(
        &mut self,
        prefetchers: &mut [Box<dyn Prefetcher>],
        policy: &mut dyn ThrottlePolicy,
        now: u64,
        bus_transfers: u64,
        bus_busy_slack: u64,
    ) {
        if self.l2.evictions() - self.last_interval_evictions < self.cfg.interval_evictions {
            return;
        }
        self.last_interval_evictions = self.l2.evictions();
        self.stats.intervals += 1;

        // Raw per-interval counts, captured before Equation 3 zeroes them.
        let raw: Option<Vec<(u64, u64, u64)>> = self.obs.as_ref().map(|_| {
            self.counters
                .iter()
                .map(|c| (c.cur_prefetched, c.cur_used, c.cur_late))
                .collect()
        });

        for c in &mut self.counters {
            c.end_interval();
        }
        self.misses_smoothed = 0.5 * self.misses_smoothed + 0.5 * self.cur_misses as f64;
        self.cur_misses = 0;

        let feedback: Vec<IntervalFeedback> = self
            .counters
            .iter()
            .zip(prefetchers.iter())
            .map(|(c, p)| {
                let accuracy = if c.prefetched > 0.0 {
                    c.used / c.prefetched
                } else {
                    1.0
                };
                let cov_denom = c.timely + self.misses_smoothed;
                let coverage = if cov_denom > 0.0 {
                    c.timely / cov_denom
                } else {
                    0.0
                };
                let lateness = if c.used > 0.0 { c.late / c.used } else { 0.0 };
                let pollution = if self.misses_smoothed > 0.0 {
                    c.pollution / self.misses_smoothed
                } else {
                    0.0
                };
                IntervalFeedback {
                    accuracy,
                    coverage,
                    lateness,
                    pollution,
                    level: p.aggressiveness(),
                }
            })
            .collect();

        let decisions = policy.adjust(&feedback);
        debug_assert_eq!(decisions.len(), prefetchers.len());
        let interval = self.stats.intervals - 1;
        let rationale = (self.obs.is_some() || self.validate.is_some())
            .then(|| {
                policy
                    .decision_trace()
                    .map(<[crate::throttling::DecisionTrace]>::to_vec)
            })
            .flatten();
        let mut validate_transitions: Vec<ThrottleTransition> = Vec::new();
        for (i, (p, d)) in prefetchers.iter_mut().zip(&decisions).enumerate() {
            let level = p.aggressiveness();
            match d {
                ThrottleDecision::Up => p.set_aggressiveness(level.up()),
                ThrottleDecision::Down => p.set_aggressiveness(level.down()),
                ThrottleDecision::Keep => {}
            }
            if self.obs.is_some() || self.validate.is_some() {
                let why = rationale.as_ref().and_then(|r| r.get(i));
                let transition = ThrottleTransition {
                    interval,
                    prefetcher: i as u8,
                    case: why.map_or(0, |w| w.case),
                    accuracy: feedback[i].accuracy,
                    coverage: feedback[i].coverage,
                    rival_coverage: why.map_or(0.0, |w| w.rival_coverage),
                    decision: *d,
                    from_level: level,
                    to_level: p.aggressiveness(),
                };
                if self.validate.is_some() {
                    validate_transitions.push(transition.clone());
                }
                if let Some(o) = self.obs.as_deref_mut() {
                    o.record_transition(transition);
                }
            }
        }
        if let Some(mut v) = self.validate.take() {
            v.check_interval(&crate::validate::IntervalCheck {
                interval,
                cycle: now,
                counters: &self.counters,
                stats: &self.stats,
                mshr_occupied: self.mshrs.occupied(),
                mshr_capacity: self.cfg.l2_mshrs,
                bus_transfers,
                bus_transfer_cycles: self.cfg.dram.bus_transfer_cycles,
                bus_busy_slack,
                transitions: &validate_transitions,
            });
            self.validate = Some(v);
        }

        if let Some(mut o) = self.obs.take() {
            if o.timeseries_enabled() {
                let pf_samples: Vec<PrefetcherSample> = raw
                    .unwrap_or_default()
                    .iter()
                    .zip(feedback.iter())
                    .zip(prefetchers.iter())
                    .map(|(((issued, used, late), fb), p)| PrefetcherSample {
                        issued: *issued,
                        used: *used,
                        late: *late,
                        accuracy: fb.accuracy,
                        coverage: fb.coverage,
                        level: p.aggressiveness(),
                    })
                    .collect();
                o.record_interval(
                    interval,
                    &IntervalObservation {
                        cycle: now,
                        retired: self.stats.retired_instructions,
                        l2_demand_accesses: self.stats.l2_demand_accesses,
                        l2_demand_misses: self.stats.l2_demand_misses,
                        l2_lds_misses: self.stats.l2_lds_misses,
                        bus_transfers,
                        bus_transfer_cycles: self.cfg.dram.bus_transfer_cycles,
                        mshr_occupancy: self.mshrs.occupied(),
                        prefetchers: &pf_samples,
                    },
                );
            }
            self.obs = Some(o);
        }
    }

    /// Runs one cycle of the core pipeline (after DRAM completions have been
    /// applied). Returns true if any forward progress was made.
    pub(crate) fn step<O: OpSource>(
        &mut self,
        ops: &mut O,
        now: u64,
        dram: &mut Dram,
        prefetchers: &mut [Box<dyn Prefetcher>],
        observer: &mut dyn PrefetchObserver,
    ) -> bool {
        let mut l2_port = 1u32;
        let retired = self.retire(now);
        let dispatched = self.dispatch(ops, now);
        let issued = self.issue(ops, now, dram, prefetchers, observer, &mut l2_port);
        retired > 0 || dispatched > 0 || issued > 0
    }

    /// Earliest future cycle at which this core can make progress, ignoring
    /// DRAM (the caller merges in `dram.next_event`). `None` when nothing is
    /// pending outside DRAM.
    pub(crate) fn next_local_event(&self, now: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |c: u64| {
            if c != NOT_DONE && c > now {
                next = Some(next.map_or(c, |n: u64| n.min(c)));
            }
        };
        if let Some(head) = self.window.front() {
            consider(self.completed.get(head.op_idx as usize));
        }
        // The completion wheel is a min-heap, so its top is the earliest
        // outstanding completion — no scan needed.
        if let Some(&Reverse((c, _))) = self.inflight.peek() {
            consider(c);
        }
        next
    }

    /// True if the core has work it could perform on the very next cycle
    /// (used for idle-skip decisions). `dram_full` tells the core whether
    /// the shared request buffer can accept anything.
    pub(crate) fn has_immediate_work<O: OpSource>(
        &self,
        ops: &mut O,
        now: u64,
        dram_full: bool,
    ) -> bool {
        if let Some(req) = self.pf_queue.front() {
            let block = block_of(req.addr);
            // A resident target would simply be dropped (progress), and a
            // missing one can issue if the MSHRs and buffer have room.
            if self.l2.probe(block).is_some() || self.mshrs.find(block).is_some() {
                return true;
            }
            if !self.mshrs.is_full() && !dram_full {
                return true;
            }
        }
        if !self.pending_writebacks.is_empty() && !dram_full {
            return true;
        }
        if self.next_dispatch < self.total_ops {
            let op = ops.op(self.next_dispatch);
            let instrs = match op.kind {
                OpKind::Compute => op.value,
                _ => 1,
            };
            if self.window_instrs + instrs <= self.cfg.core.window_size || self.window_instrs == 0 {
                return true;
            }
        }
        if self.lsq_used < self.cfg.core.lsq_size {
            for i in 0..self.pending_mem.len() {
                let dep = ops.op(self.pending_mem[i] as usize).dep;
                if dep == NO_DEP || self.completed.get(dep as usize) <= now {
                    return true;
                }
            }
        }
        false
    }

    /// Captures the state attached to watchdog and deadlock reports.
    pub(crate) fn snapshot(&self, now: u64, dram: &Dram) -> DiagnosticSnapshot {
        DiagnosticSnapshot {
            cycle: now,
            core: self.core_id,
            retired_ops: self.retired_ops,
            total_ops: self.total_ops,
            window_instrs: self.window_instrs,
            rob_head: self.window.front().map(|h| {
                let done = self.completed.get(h.op_idx as usize);
                (h.op_idx, h.issued, (done != NOT_DONE).then_some(done))
            }),
            mshr_occupancy: self.mshrs.occupied(),
            mshr_capacity: self.cfg.l2_mshrs,
            pf_queue_len: self.pf_queue.len(),
            pending_writebacks: self.pending_writebacks.len(),
            dram_queue_depth: dram.occupancy(),
            dram_full: dram.is_full(),
        }
    }

    /// Last cycle at which an instruction retired or an MSHR drained.
    pub(crate) fn last_progress(&self) -> u64 {
        self.last_progress
    }

    // ---- warm-state capture / restore (see [`crate::snapshot`]) ----

    /// Serializes this core's complete replay state into a blob (the
    /// memory image travels separately as a CoW clone in
    /// [`CoreState::mem`]).
    ///
    /// Capture happens at the top of the run loop, so every completion
    /// cycle at or before `now` is *settled*: the only property the
    /// engine ever observes of a settled entry is "already done"
    /// (`completed[i] <= now` in retire, issue and dependence checks).
    /// The `completed` array is therefore stored sparsely — the dispatch
    /// cursor plus the entries still in the future — and settled entries
    /// restore as 0, which is behaviorally identical.
    pub(crate) fn save_warm(&self, now: u64) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u64(self.next_dispatch as u64);
        w.u32(self.window.len() as u32);
        for e in &self.window {
            w.u32(e.op_idx);
            w.u32(e.instrs);
            w.u32(e.retired);
            w.bool(e.issued);
            w.bool(e.counted_l1);
            w.bool(e.counted_l2);
            w.u32(e.value);
        }
        w.u32(self.window_instrs);
        w.u64(self.total_ops as u64);
        // Indices below the ring base have retired (and are settled by the
        // retire-time argument above), so scanning the live range alone
        // yields exactly the dense array's unsettled set.
        let unsettled: Vec<(u32, u64)> = (self.completed.base()..self.next_dispatch)
            .map(|i| (i as u32, self.completed.get(i)))
            .filter(|&(_, c)| c == NOT_DONE || c > now)
            .collect();
        w.u32(unsettled.len() as u32);
        for (i, c) in unsettled {
            w.u32(i);
            w.u64(c);
        }
        w.u32(self.pending_mem.len() as u32);
        for &op in &self.pending_mem {
            w.u32(op);
        }
        w.u32(self.lsq_used);
        // The completion wheel is a heap with unique keys, so the sorted
        // entry list reproduces the exact pop order. Stale entries (at or
        // before `now`) are kept: they still hold LSQ slots until issue()
        // pops them.
        let mut wheel: Vec<(u64, u32)> = self.inflight.iter().map(|&Reverse(p)| p).collect();
        wheel.sort_unstable();
        w.u32(wheel.len() as u32);
        for (c, op) in wheel {
            w.u64(c);
            w.u32(op);
        }
        self.l1.save_state(&mut w);
        self.l2.save_state(&mut w);
        self.mshrs.save_state(&mut w);
        w.u32(self.pf_queue.len() as u32);
        for req in &self.pf_queue {
            write_pf_request(&mut w, req);
        }
        let filled: Vec<(u32, PollutionSlot)> = self
            .pollution
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|s| (i as u32, s)))
            .collect();
        w.u32(filled.len() as u32);
        for (i, s) in filled {
            w.u32(i);
            w.u32(s.block_addr);
            w.u8(s.by.0);
        }
        w.u32(self.pending_writebacks.len() as u32);
        for &a in &self.pending_writebacks {
            w.u32(a);
        }
        w.u32(self.counters.len() as u32);
        for c in &self.counters {
            write_feedback_counters(&mut w, c);
        }
        w.f64(self.misses_smoothed);
        w.u64(self.cur_misses);
        w.u64(self.last_interval_evictions);
        crate::snapshot::write_run_stats(&mut w, &self.stats);
        w.u64(self.retired_ops as u64);
        w.u64(self.last_progress);
        // Obs and validator ride along as optional nested blobs so a
        // forked run's timeseries and conformance checks continue
        // seamlessly from the capture point.
        match &self.obs {
            None => w.bool(false),
            Some(o) => {
                w.bool(true);
                let mut ow = SnapWriter::new();
                o.save_state(&mut ow);
                w.bytes(&ow.into_bytes());
            }
        }
        match &self.validate {
            None => w.bool(false),
            Some(v) => {
                w.bool(true);
                let mut vw = SnapWriter::new();
                v.save_state(&mut vw);
                w.bytes(&vw.into_bytes());
            }
        }
        w.into_bytes()
    }

    /// Restores state saved by [`CoreSim::save_warm`] into a freshly
    /// constructed core for the same trace and configuration.
    ///
    /// The obs collector / validator blobs are applied only when the
    /// forked machine has the facility installed; a facility enabled on
    /// the fork but absent at capture starts fresh from the fork point.
    pub(crate) fn restore_warm(&mut self, cs: &CoreState) -> Result<(), SnapshotError> {
        // Reuse this core's page-table allocation; pages stay CoW-shared
        // with the snapshot.
        self.mem.clone_from(&cs.mem);
        let mut r = SnapReader::new(&cs.core);
        let next_dispatch = r.u64()? as usize;
        if next_dispatch > self.total_ops {
            return Err(SnapshotError::Malformed(format!(
                "dispatch cursor {next_dispatch} past trace end {}",
                self.total_ops
            )));
        }
        self.next_dispatch = next_dispatch;
        let n = r.u32()? as usize;
        self.window.clear();
        for _ in 0..n {
            self.window.push_back(WinEntry {
                op_idx: r.u32()?,
                instrs: r.u32()?,
                retired: r.u32()?,
                issued: r.bool()?,
                counted_l1: r.bool()?,
                counted_l2: r.bool()?,
                value: r.u32()?,
            });
        }
        self.window_instrs = r.u32()?;
        let total = r.u64()? as usize;
        if total != self.total_ops {
            return Err(SnapshotError::Malformed(format!(
                "snapshot trace has {total} ops, this trace has {}",
                self.total_ops
            )));
        }
        // Rebuild the completion ring: indices below the window head are
        // settled by construction (they read as 0); dispatched-but-
        // unretired ops default to settled and the unsettled list below
        // overrides the ones still in flight. This reproduces exactly the
        // dense array the wire format describes.
        self.completed.reset(self.cfg.core.window_size);
        let base = self
            .window
            .front()
            .map_or(next_dispatch, |h| h.op_idx as usize);
        self.completed.settle_below(base);
        for i in base..next_dispatch {
            self.completed.set(i, 0);
        }
        let n = r.u32()? as usize;
        for _ in 0..n {
            let idx = r.u32()? as usize;
            let val = r.u64()?;
            if idx >= next_dispatch {
                return Err(SnapshotError::Malformed(format!(
                    "unsettled completion index {idx} past dispatch cursor"
                )));
            }
            if idx < base {
                return Err(SnapshotError::Malformed(format!(
                    "unsettled completion index {idx} below the window head {base}"
                )));
            }
            self.completed.set(idx, val);
        }
        let n = r.u32()? as usize;
        self.pending_mem.clear();
        for _ in 0..n {
            self.pending_mem.push_back(r.u32()?);
        }
        self.lsq_used = r.u32()?;
        let n = r.u32()? as usize;
        self.inflight.clear();
        for _ in 0..n {
            let c = r.u64()?;
            let op = r.u32()?;
            self.inflight.push(Reverse((c, op)));
        }
        self.l1.restore_state(&mut r)?;
        self.l2.restore_state(&mut r)?;
        self.mshrs.restore_state(&mut r)?;
        let n = r.u32()? as usize;
        self.pf_queue.clear();
        for _ in 0..n {
            self.pf_queue.push_back(read_pf_request(&mut r)?);
        }
        self.pollution.clear();
        self.pollution.resize(POLLUTION_FILTER_ENTRIES, None);
        let n = r.u32()? as usize;
        for _ in 0..n {
            let slot = r.u32()? as usize;
            let block_addr = r.u32()?;
            let by = PrefetcherId(r.u8()?);
            if slot >= POLLUTION_FILTER_ENTRIES {
                return Err(SnapshotError::Malformed(format!("pollution slot {slot}")));
            }
            self.pollution[slot] = Some(PollutionSlot { block_addr, by });
        }
        let n = r.u32()? as usize;
        self.pending_writebacks.clear();
        for _ in 0..n {
            self.pending_writebacks.push_back(r.u32()?);
        }
        let n = r.u32()? as usize;
        if n != self.counters.len() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {n} feedback counters, machine has {}",
                self.counters.len()
            )));
        }
        for c in &mut self.counters {
            *c = read_feedback_counters(&mut r)?;
        }
        self.misses_smoothed = r.f64()?;
        self.cur_misses = r.u64()?;
        self.last_interval_evictions = r.u64()?;
        let stats = crate::snapshot::read_run_stats(&mut r)?;
        if stats.prefetchers.len() != self.counters.len() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot stats cover {} prefetchers, machine has {}",
                stats.prefetchers.len(),
                self.counters.len()
            )));
        }
        self.stats = stats;
        self.retired_ops = r.u64()? as usize;
        self.last_progress = r.u64()?;
        if r.bool()? {
            let blob = r.bytes()?;
            if let Some(o) = self.obs.as_deref_mut() {
                let mut or = SnapReader::new(&blob);
                o.restore_state(&mut or)?;
                or.finish()?;
            }
        }
        if r.bool()? {
            let blob = r.bytes()?;
            if let Some(v) = self.validate.as_deref_mut() {
                let mut vr = SnapReader::new(&blob);
                v.restore_state(&mut vr)?;
                vr.finish()?;
            }
        }
        r.finish()
    }
}

fn write_pf_request(w: &mut SnapWriter, req: &PrefetchRequest) {
    w.u32(req.addr);
    w.u8(req.id.0);
    w.u8(req.depth);
    match req.pg {
        None => w.bool(false),
        Some(pg) => {
            w.bool(true);
            w.u32(pg.pc);
            w.i16(pg.offset);
        }
    }
    w.u32(req.root_pc);
}

fn read_pf_request(r: &mut SnapReader<'_>) -> Result<PrefetchRequest, SnapshotError> {
    let addr = r.u32()?;
    let id = PrefetcherId(r.u8()?);
    let depth = r.u8()?;
    let pg = if r.bool()? {
        let pc = r.u32()?;
        let offset = r.i16()?;
        Some(crate::prefetcher::PgTag { pc, offset })
    } else {
        None
    };
    let root_pc = r.u32()?;
    Ok(PrefetchRequest {
        addr,
        id,
        depth,
        pg,
        root_pc,
    })
}

fn write_feedback_counters(w: &mut SnapWriter, c: &FeedbackCounters) {
    w.f64(c.prefetched);
    w.f64(c.used);
    w.f64(c.timely);
    w.f64(c.late);
    w.f64(c.pollution);
    w.u64(c.cur_prefetched);
    w.u64(c.cur_used);
    w.u64(c.cur_timely);
    w.u64(c.cur_late);
    w.u64(c.cur_pollution);
    w.u64(c.total_prefetched);
    w.u64(c.total_used);
    w.u64(c.total_late);
    w.u64(c.total_pollution);
}

fn read_feedback_counters(r: &mut SnapReader<'_>) -> Result<FeedbackCounters, SnapshotError> {
    Ok(FeedbackCounters {
        prefetched: r.f64()?,
        used: r.f64()?,
        timely: r.f64()?,
        late: r.f64()?,
        pollution: r.f64()?,
        cur_prefetched: r.u64()?,
        cur_used: r.u64()?,
        cur_timely: r.u64()?,
        cur_late: r.u64()?,
        cur_pollution: r.u64()?,
        total_prefetched: r.u64()?,
        total_used: r.u64()?,
        total_late: r.u64()?,
        total_pollution: r.u64()?,
    })
}

/// Captures every registered prefetcher's name, aggressiveness level and
/// learned-table blob. The level is captured here, generically, so
/// stateless prefetchers need no [`Prefetcher::save_state`] override.
pub(crate) fn save_prefetcher_states(prefetchers: &[Box<dyn Prefetcher>]) -> Vec<PrefetcherState> {
    prefetchers
        .iter()
        .map(|p| {
            let mut w = SnapWriter::new();
            p.save_state(&mut w);
            PrefetcherState {
                name: p.name().to_string(),
                level: p.aggressiveness(),
                data: w.into_bytes(),
            }
        })
        .collect()
}

/// Captures the throttling policy's state (the level slot is unused for
/// throttles and stored as a fixed placeholder).
pub(crate) fn save_throttle_state(t: &dyn ThrottlePolicy) -> PrefetcherState {
    let mut w = SnapWriter::new();
    t.save_state(&mut w);
    PrefetcherState {
        name: t.name().to_string(),
        level: Aggressiveness::Aggressive,
        data: w.into_bytes(),
    }
}

/// Restores prefetcher levels and learned tables from captured states.
/// The caller has already validated registration via
/// [`check_registration`], so the zip lengths match.
pub(crate) fn restore_prefetcher_states(
    prefetchers: &mut [Box<dyn Prefetcher>],
    states: &[PrefetcherState],
) -> Result<(), SnapshotError> {
    for (p, st) in prefetchers.iter_mut().zip(states) {
        p.set_aggressiveness(st.level);
        let mut r = SnapReader::new(&st.data);
        p.load_state(&mut r)?;
        r.finish()?;
    }
    Ok(())
}

/// Restores the throttling policy's state from its captured blob.
pub(crate) fn restore_throttle_state(
    throttle: &mut dyn ThrottlePolicy,
    state: &PrefetcherState,
) -> Result<(), SnapshotError> {
    let mut r = SnapReader::new(&state.data);
    throttle.load_state(&mut r)?;
    r.finish()
}

/// Validates that a captured core's prefetcher/throttle registration
/// matches the forking machine's (shared by [`Machine::fork_from`] and
/// the multi-core engine).
pub(crate) fn check_registration(
    cs: &CoreState,
    prefetchers: &[Box<dyn Prefetcher>],
    throttle: &dyn ThrottlePolicy,
    core: usize,
) -> Result<(), SimError> {
    if cs.prefetchers.len() != prefetchers.len() {
        return Err(SimError::SnapshotRejected(format!(
            "core {core}: snapshot has {} prefetchers, machine has {}",
            cs.prefetchers.len(),
            prefetchers.len()
        )));
    }
    for (i, (st, p)) in cs.prefetchers.iter().zip(prefetchers).enumerate() {
        if st.name != p.name() {
            return Err(SimError::SnapshotRejected(format!(
                "core {core} prefetcher {i}: snapshot has {:?}, machine has {:?}",
                st.name,
                p.name()
            )));
        }
    }
    if cs.throttle.name != throttle.name() {
        return Err(SimError::SnapshotRejected(format!(
            "core {core}: snapshot throttle {:?}, machine has {:?}",
            cs.throttle.name,
            throttle.name()
        )));
    }
    Ok(())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueOutcome {
    Issued,
    Stalled,
}

/// Engine loop iterations between wall-clock deadline polls (see
/// [`Machine::set_wall_deadline`]): frequent enough that an overrun is
/// caught within a few milliseconds on any realistic configuration,
/// coarse enough that `Instant::now` never shows up in a profile.
pub const WALL_DEADLINE_POLL_ITERS: u32 = 1 << 14;

/// A single-core machine: configuration plus registered prefetchers,
/// throttling policy and observer.
///
/// Construct with [`Machine::new`], register prefetchers with
/// [`Machine::add_prefetcher`] (registration order defines
/// [`PrefetcherId`]s), then call [`Machine::run`].
pub struct Machine {
    config: Arc<MachineConfig>,
    prefetchers: Vec<Box<dyn Prefetcher>>,
    throttle: Box<dyn ThrottlePolicy>,
    observer: Option<Box<dyn PrefetchObserver>>,
    cycle_budget: Option<u64>,
    wall_deadline: Option<std::time::Duration>,
    obs_config: Option<ObsConfig>,
    validate_config: Option<crate::validate::ValidateConfig>,
    run_trace: Option<RunTrace>,
    no_skip: bool,
    warm_cycles: Option<u64>,
    captured: Option<Snapshot>,
    resume: Option<Snapshot>,
}

impl Machine {
    /// Creates a machine with no prefetchers and no throttling.
    ///
    /// Accepts a plain [`MachineConfig`] or an `Arc<MachineConfig>`;
    /// passing the `Arc` lets sweeps share one config allocation across
    /// every machine they build.
    pub fn new(config: impl Into<Arc<MachineConfig>>) -> Self {
        Machine {
            config: config.into(),
            prefetchers: Vec::new(),
            throttle: Box::new(NoThrottle),
            observer: None,
            cycle_budget: None,
            wall_deadline: None,
            obs_config: None,
            validate_config: None,
            run_trace: None,
            no_skip: false,
            warm_cycles: None,
            captured: None,
            resume: None,
        }
    }

    /// Disables event skip-ahead: the clock advances one cycle at a time
    /// through idle regions instead of jumping to the next event. This is
    /// the *reference stepper* — results are bit-identical to the default
    /// skipping mode (the equivalence property tests pin this down), it
    /// is just slower. Useful for debugging the skip logic itself.
    pub fn set_reference_stepping(&mut self, on: bool) -> &mut Self {
        self.no_skip = on;
        self
    }

    /// Caps the simulated cycle count: a run that passes `budget` cycles
    /// fails with [`SimError::CycleBudgetExceeded`] instead of running
    /// on. `None` (the default) means unlimited.
    pub fn set_cycle_budget(&mut self, budget: Option<u64>) -> &mut Self {
        self.cycle_budget = budget;
        self
    }

    /// Caps the *wall-clock* time of a run: once `deadline` has elapsed
    /// since [`Machine::run`] started, the run fails with
    /// [`SimError::DeadlineExceeded`] carrying a diagnostic snapshot of
    /// the machine at the kill point. `None` (the default) means
    /// unlimited.
    ///
    /// The clock is polled at a coarse cadence (every
    /// [`WALL_DEADLINE_POLL_ITERS`] engine iterations), so the check
    /// costs nothing on the hot path and a deadlined run is killed
    /// shortly *after* the deadline, never before. Successful runs are
    /// bit-identical with or without a deadline installed — the check is
    /// a pure read.
    pub fn set_wall_deadline(&mut self, deadline: Option<std::time::Duration>) -> &mut Self {
        self.wall_deadline = deadline;
        self
    }

    /// Registers a prefetcher; returns its id (registration index).
    pub fn add_prefetcher(&mut self, p: Box<dyn Prefetcher>) -> PrefetcherId {
        let id = PrefetcherId(self.prefetchers.len() as u8);
        self.prefetchers.push(p);
        id
    }

    /// Installs a throttling policy (default: none).
    pub fn set_throttle(&mut self, t: Box<dyn ThrottlePolicy>) -> &mut Self {
        self.throttle = t;
        self
    }

    /// Installs a prefetch observer (e.g. the ECDP profiling collector).
    pub fn set_observer(&mut self, o: Box<dyn PrefetchObserver>) -> &mut Self {
        self.observer = Some(o);
        self
    }

    /// Removes and returns the observer (to read profiling results back).
    pub fn take_observer(&mut self) -> Option<Box<dyn PrefetchObserver>> {
        self.observer.take()
    }

    /// Enables observability collection for subsequent runs. Pass a
    /// config with no classes enabled (the default) to turn it back off.
    pub fn set_obs(&mut self, cfg: ObsConfig) -> &mut Self {
        self.obs_config = cfg.any().then_some(cfg);
        self
    }

    /// Opts subsequent runs into (or, with
    /// [`ValidateConfig::disabled`](crate::validate::ValidateConfig::disabled),
    /// out of) the paper-conformance runtime invariants. Without an
    /// explicit opt-in, runs are validated only when the `validate` cargo
    /// feature is enabled. Violations fail the run with
    /// [`SimError::InvariantViolation`] after it completes; the checks
    /// themselves never perturb simulation state, so a validated run's
    /// statistics are bit-identical to an unvalidated one's.
    pub fn set_validate(&mut self, cfg: crate::validate::ValidateConfig) -> &mut Self {
        self.validate_config = Some(cfg);
        self
    }

    /// Sets every registered prefetcher's aggressiveness level (e.g. to
    /// pin a static level for differential experiments; the default is
    /// each prefetcher's own initial level).
    pub fn set_initial_aggressiveness(&mut self, level: Aggressiveness) -> &mut Self {
        for p in &mut self.prefetchers {
            p.set_aggressiveness(level);
        }
        self
    }

    /// Sets one prefetcher's aggressiveness level by registration index
    /// (for differential experiments over mixed static-level corners).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the registered prefetchers.
    pub fn set_prefetcher_aggressiveness(
        &mut self,
        index: usize,
        level: Aggressiveness,
    ) -> &mut Self {
        self.prefetchers[index].set_aggressiveness(level);
        self
    }

    /// Removes and returns the trace recorded by the most recent
    /// successful [`Machine::run`] with observability enabled.
    pub fn take_run_trace(&mut self) -> Option<RunTrace> {
        self.run_trace.take()
    }

    /// Arms warm-state capture: the next [`Machine::run`] records a
    /// [`Snapshot`] at the first *visited* cycle at or past `cycles`
    /// (retrieve it with [`Machine::take_snapshot`]). Capture is a pure
    /// read of machine state, so a run with a checkpoint armed is
    /// bit-identical to one without. `None` disarms.
    pub fn set_warm_checkpoint(&mut self, cycles: Option<u64>) -> &mut Self {
        self.warm_cycles = cycles;
        self
    }

    /// Removes and returns the snapshot captured by the most recent run,
    /// if a checkpoint was armed with [`Machine::set_warm_checkpoint`]
    /// and the run reached the capture cycle.
    pub fn take_snapshot(&mut self) -> Option<Snapshot> {
        self.captured.take()
    }

    /// Arms the next [`Machine::run`] to resume from `snapshot` instead
    /// of simulating warmup cold. Single-shot: the run consumes the armed
    /// snapshot; fork again to replay from it once more. The forked run
    /// must replay the **same trace** the snapshot was captured on (the
    /// checkpoint is keyed per (workload, input) upstream; a different
    /// trace of the same length silently diverges).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SnapshotRejected`] when the snapshot is not
    /// single-core, was captured under a different configuration
    /// (fingerprint mismatch), or its prefetcher/throttle registration
    /// does not match this machine's.
    pub fn fork_from(&mut self, snapshot: &Snapshot) -> Result<&mut Self, SimError> {
        if snapshot.cores.len() != 1 || !snapshot.finished.is_empty() {
            return Err(SimError::SnapshotRejected(format!(
                "single-core machine cannot fork a {}-core multi-machine snapshot",
                snapshot.cores.len()
            )));
        }
        let fp = config_fingerprint(&self.config);
        if snapshot.config_fp != fp {
            return Err(SimError::SnapshotRejected(format!(
                "configuration fingerprint {fp:#018x} != snapshot {:#018x}",
                snapshot.config_fp
            )));
        }
        check_registration(
            &snapshot.cores[0],
            &self.prefetchers,
            self.throttle.as_ref(),
            0,
        )?;
        self.resume = Some(snapshot.clone());
        Ok(self)
    }

    /// Reads the complete machine state into a [`Snapshot`]. Pure read:
    /// simulation state is untouched (memory pages are CoW-shared).
    fn capture(&self, now: u64, core: &CoreSim, dram: &Dram) -> Snapshot {
        Snapshot {
            cycle: now,
            config_fp: config_fingerprint(&self.config),
            cores: vec![CoreState {
                mem: Arc::new(core.mem.clone()),
                core: core.save_warm(now),
                prefetchers: save_prefetcher_states(&self.prefetchers),
                throttle: save_throttle_state(self.throttle.as_ref()),
            }],
            dram: dram.save_state(),
            finished: Vec::new(),
            bus_at_start: Vec::new(),
        }
    }

    /// Applies an armed snapshot to the freshly built `core` and `dram`,
    /// returning the cycle to resume at.
    fn resume_from(
        &mut self,
        snap: &Snapshot,
        core: &mut CoreSim,
        dram: &mut Dram,
    ) -> Result<u64, SimError> {
        let rej = |e: SnapshotError| SimError::SnapshotRejected(e.to_string());
        let cs = &snap.cores[0];
        core.restore_warm(cs).map_err(rej)?;
        restore_prefetcher_states(&mut self.prefetchers, &cs.prefetchers).map_err(rej)?;
        restore_throttle_state(self.throttle.as_mut(), &cs.throttle).map_err(rej)?;
        dram.restore_state(&snap.dram).map_err(rej)?;
        Ok(snap.cycle)
    }

    /// The machine configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Access to a registered prefetcher (for post-run inspection).
    pub fn prefetcher(&self, id: PrefetcherId) -> &dyn Prefetcher {
        self.prefetchers[id.0 as usize].as_ref()
    }

    /// Replays `trace` to completion and returns the run statistics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] when the watchdog sees no forward
    /// progress (no retirement, no MSHR drain) for the configured
    /// `deadlock_cycles`, or when the machine goes fully quiescent with
    /// unfinished work — both are simulator/trace bugs, never properties
    /// of a slow workload. Returns [`SimError::CycleBudgetExceeded`] when
    /// a budget installed with [`Machine::set_cycle_budget`] runs out,
    /// and [`SimError::InvariantViolation`] if the post-run drain loop
    /// fails to converge. The error carries a [`DiagnosticSnapshot`] of
    /// the stuck core where applicable.
    pub fn run(&mut self, trace: &Trace) -> Result<RunStats, SimError> {
        self.run_inner(&trace.initial_memory, &mut ResidentOps(&trace.ops))
    }

    /// Replays an externally recorded trace streamed from disk in bounded
    /// windows (see [`crate::stream`]) and returns the run statistics.
    ///
    /// The engine's working set stays proportional to the instruction
    /// window, never to the trace length: ops are pulled through the
    /// [`OpSource`] in chunks and dropped once the window has moved past
    /// them. Statistics are bit-identical to materializing the same ops
    /// in a resident [`Trace`] and calling [`Machine::run`].
    ///
    /// # Errors
    ///
    /// Fails exactly like [`Machine::run`]. Mid-stream I/O errors on the
    /// already-validated trace file panic with the file context (the open
    /// path validates framing up front, so this only happens when the
    /// file changes or vanishes underneath a run).
    pub fn run_streamed(
        &mut self,
        trace: &mut crate::stream::ExternalTrace,
    ) -> Result<RunStats, SimError> {
        let (initial_memory, ops) = trace.replay_parts();
        self.run_inner(initial_memory, ops)
    }

    fn run_inner<O: OpSource>(
        &mut self,
        initial_memory: &SimMemory,
        ops: &mut O,
    ) -> Result<RunStats, SimError> {
        let total_ops = ops.total_ops();
        let mut core = CoreSim::new(
            0,
            Arc::clone(&self.config),
            initial_memory,
            total_ops,
            self.prefetchers.len(),
            self.resume.is_some(),
        );
        if let Some(cfg) = &self.obs_config {
            core.obs = Some(Box::new(ObsCollector::new(*cfg)));
        }
        if self.validate_config.is_some() {
            core.validate = crate::validate::runtime_validator_for(self.validate_config.as_ref());
        }
        self.run_trace = None;
        let mut dram = Dram::new(self.config.dram.clone(), 1);
        let mut observer: Box<dyn PrefetchObserver> = self
            .observer
            .take()
            .unwrap_or_else(|| Box::new(crate::prefetcher::NullObserver));

        self.captured = None;
        let wall = self
            .wall_deadline
            .map(|limit| (std::time::Instant::now(), limit));
        let mut wall_poll: u32 = 0;
        let mut now: u64 = 0;
        if let Some(snap) = self.resume.take() {
            match self.resume_from(&snap, &mut core, &mut dram) {
                Ok(cycle) => now = cycle,
                Err(e) => {
                    self.observer = Some(observer);
                    return Err(e);
                }
            }
        }
        let mut capture_at = self.warm_cycles.unwrap_or(u64::MAX);
        while !core.finished() {
            // Warm-state capture: a pure read of machine state at the top
            // of the loop, before this cycle's DRAM tick, so an armed
            // checkpoint never perturbs the run and a forked machine
            // re-enters the loop at exactly this point.
            if now >= capture_at {
                capture_at = u64::MAX;
                let snap = self.capture(now, &core, &dram);
                self.captured = Some(snap);
            }
            let mut activity = false;
            for completion in dram.tick(now) {
                core.apply_completion(completion, now, &mut self.prefetchers, observer.as_mut());
                activity = true;
            }
            activity |= core.step(
                ops,
                now,
                &mut dram,
                &mut self.prefetchers,
                observer.as_mut(),
            );
            activity |= core.issue_to_dram(&mut dram, now, observer.as_mut());
            core.maybe_end_interval(
                &mut self.prefetchers,
                self.throttle.as_mut(),
                now,
                dram.bus_transfers(),
                dram.bus_busy_slack(),
            );

            // Watchdog: cycling without retiring or draining an MSHR for
            // the deadlock budget is a livelock even if "activity" (e.g.
            // prefetch churn) never ceases.
            if now.saturating_sub(core.last_progress()) >= self.config.deadlock_cycles {
                self.observer = Some(observer);
                return Err(SimError::Deadlock(core.snapshot(now, &dram)));
            }
            if let Some(budget) = self.cycle_budget {
                if now >= budget {
                    self.observer = Some(observer);
                    return Err(SimError::CycleBudgetExceeded {
                        budget,
                        snapshot: core.snapshot(now, &dram),
                    });
                }
            }
            // Wall-clock deadline, polled coarsely so `Instant::now`
            // stays off the hot path: on overrun the watchdog captures
            // the diagnostic snapshot and kills the run.
            if let Some((started, limit)) = wall {
                wall_poll += 1;
                if wall_poll >= WALL_DEADLINE_POLL_ITERS {
                    wall_poll = 0;
                    if started.elapsed() >= limit {
                        self.observer = Some(observer);
                        return Err(SimError::DeadlineExceeded {
                            deadline_ms: limit.as_millis() as u64,
                            snapshot: core.snapshot(now, &dram),
                        });
                    }
                }
            }

            if activity {
                now += 1;
                continue;
            }
            // Idle: skip to the next event (or crawl there one cycle at a
            // time under the reference stepper — same visited events).
            if core.has_immediate_work(ops, now, dram.is_full()) {
                now += 1;
                continue;
            }
            let mut next = core.next_local_event(now);
            if let Some(d) = dram.next_event(now) {
                next = Some(next.map_or(d, |n| n.min(d)));
            }
            match next {
                Some(n) => now = if self.no_skip { now + 1 } else { n },
                None => {
                    // Fully quiescent with unfinished work: nothing is in
                    // flight anywhere, so no future cycle can change
                    // state. Report the deadlock immediately instead of
                    // idling through the whole watchdog budget.
                    self.observer = Some(observer);
                    return Err(SimError::Deadlock(core.snapshot(now, &dram)));
                }
            }
        }

        // Drain in-flight misses and writebacks so bandwidth counters see
        // the traffic the workload generated (stores retire before their
        // RFO fills arrive). IPC uses the pre-drain cycle count.
        let end_cycles = now;
        let drain_deadline = now + self.config.deadlock_cycles;
        while core.mshrs.occupied() > 0 || core.has_pending_writebacks() || dram.occupancy() > 0 {
            for completion in dram.tick(now) {
                core.apply_completion(completion, now, &mut self.prefetchers, observer.as_mut());
            }
            core.issue_to_dram(&mut dram, now, observer.as_mut());
            now = if self.no_skip {
                now + 1
            } else {
                dram.next_event(now).unwrap_or(now + 1)
            };
            if now >= drain_deadline {
                self.observer = Some(observer);
                return Err(SimError::InvariantViolation(format!(
                    "post-run drain did not converge: {}",
                    core.snapshot(now, &dram)
                )));
            }
        }

        // Resolve prefetched lines still resident at run end as unused —
        // they were never demanded, so profiling must not leave them in
        // limbo (accuracy statistics count used/issued and are unaffected).
        let mut resident: Vec<(Addr, PrefetcherId)> = Vec::new();
        for (block_addr, state) in core.l2.iter_valid() {
            if let Some(pid) = state.prefetched_by {
                core.stats.prefetchers[pid.0 as usize].unused_evicted += 1;
                observer.prefetch_unused(block_addr, pid, state.pg_tag);
                resident.push((block_addr, pid));
            }
        }
        for (block_addr, pid) in resident {
            core.obs_lifecycle(now, LifecycleStage::Evicted, pid, block_addr, false);
        }

        if let Some(v) = core.validate.take() {
            if let Err(e) = v.finish(
                &core.stats,
                now,
                dram.bus_transfers(),
                self.config.dram.bus_transfer_cycles,
            ) {
                self.observer = Some(observer);
                return Err(e);
            }
        }

        self.observer = Some(observer);
        if let Some(o) = core.obs.take() {
            self.run_trace = Some(o.into_trace());
        }
        let mut stats = std::mem::take(&mut core.stats);
        stats.cycles = end_cycles.max(1);
        stats.bus_transfers = dram.bus_transfers();
        stats.bus_busy_cycles = stats.bus_transfers * self.config.dram.bus_transfer_cycles;
        let (rh, rc) = dram.row_stats();
        stats.dram_row_hits = rh;
        stats.dram_row_conflicts = rc;
        for (i, p) in self.prefetchers.iter().enumerate() {
            stats.prefetchers[i].name = p.name().to_string();
        }
        Ok(stats)
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("prefetchers", &self.prefetchers.len())
            .field("throttle", &self.throttle.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use sim_mem::layout;

    fn chase_trace(n: usize) -> Trace {
        // A pointer chase over n nodes laid out far apart (always L2 miss).
        let mut tb = TraceBuilder::new(SimMemory::new());
        let base = layout::HEAP_BASE;
        let stride = 64 * 1024; // distinct sets, rows
        tb.setup(|m| {
            for i in 0..n as u32 {
                let node = base + i * stride;
                let next = if (i as usize) < n - 1 {
                    base + (i + 1) * stride
                } else {
                    0
                };
                m.write_u32(node, next);
            }
        });
        let mut cur = base;
        let mut dep = None;
        while cur != 0 {
            let (next, id) = tb.load(0x400, cur, dep);
            cur = next;
            dep = Some(id);
        }
        let t = tb.finish();
        assert_eq!(t.ops.len(), n);
        t
    }

    #[test]
    fn pointer_chase_serialises_at_memory_latency() {
        let n = 50;
        let trace = chase_trace(n);
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&trace).expect("run");
        assert_eq!(stats.retired_instructions, n as u64);
        // Each load must wait for the previous: cycles >= n * min-latency.
        let min = MachineConfig::default().min_memory_latency();
        assert!(
            stats.cycles >= (n as u64 - 1) * min,
            "cycles {} should reflect serialised misses (min {})",
            stats.cycles,
            (n as u64 - 1) * min
        );
        assert_eq!(stats.l2_demand_misses, n as u64);
        assert_eq!(stats.bus_transfers, n as u64);
    }

    #[test]
    fn independent_loads_overlap() {
        // n independent far-apart loads: MLP means far fewer cycles than
        // serialised.
        let n = 50u32;
        let mut tb = TraceBuilder::new(SimMemory::new());
        // Stride chosen to spread accesses across DRAM banks.
        for i in 0..n {
            tb.load(0x400, layout::HEAP_BASE + i * (8 * 1024 + 64), None);
        }
        let trace = tb.finish();
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&trace).expect("run");
        let serial = (n as u64) * MachineConfig::default().min_memory_latency();
        assert!(
            stats.cycles < serial / 2,
            "independent misses should overlap: {} vs serial {}",
            stats.cycles,
            serial
        );
    }

    #[test]
    fn cache_hits_are_fast() {
        let mut tb = TraceBuilder::new(SimMemory::new());
        // Access the same block 1000 times.
        for _ in 0..1000 {
            tb.load(0x400, layout::HEAP_BASE, None);
        }
        let trace = tb.finish();
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&trace).expect("run");
        assert_eq!(stats.l2_demand_misses, 1);
        assert!(
            stats.ipc() > 0.5,
            "hit-dominated IPC too low: {}",
            stats.ipc()
        );
        // Early loads issue before the first fill arrives and merge in the
        // MSHRs; the steady state is all L1 hits.
        assert!(stats.l1_hits > 800, "l1 hits {}", stats.l1_hits);
    }

    #[test]
    fn compute_instructions_retire_at_width() {
        let mut tb = TraceBuilder::new(SimMemory::new());
        for _ in 0..100 {
            tb.compute(40);
        }
        let trace = tb.finish();
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&trace).expect("run");
        assert_eq!(stats.retired_instructions, 4000);
        // Retire width 4 bounds IPC at 4.
        assert!(stats.ipc() <= 4.0 + 1e-9);
        assert!(
            stats.ipc() > 3.0,
            "compute IPC {} should near retire width",
            stats.ipc()
        );
    }

    #[test]
    fn stores_do_not_block_retirement() {
        let mut tb = TraceBuilder::new(SimMemory::new());
        for i in 0..100u32 {
            tb.store(0x500, layout::HEAP_BASE + i * (8 * 1024 + 64), i, None);
        }
        let trace = tb.finish();
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&trace).expect("run");
        assert_eq!(stats.retired_instructions, 100);
        // Store misses fetch blocks (RFO) but complete immediately; the run
        // should be far faster than serialised misses.
        let serial = 100 * MachineConfig::default().min_memory_latency();
        assert!(stats.cycles < serial / 2);
        assert!(stats.bus_transfers >= 100, "RFO traffic expected");
    }

    #[test]
    fn oracle_lds_removes_misses() {
        let trace = chase_trace(50);
        let cfg = MachineConfig {
            oracle_lds: true,
            ..Default::default()
        };
        let mut m = Machine::new(cfg);
        let stats = m.run(&trace).expect("run");
        // First load of a chase has no dep and is not LDS-marked; the rest
        // are converted to hits.
        assert!(stats.l2_demand_misses <= 1);
        assert_eq!(stats.bus_transfers, stats.l2_demand_misses);
    }

    #[test]
    fn oracle_speeds_up_pointer_chase() {
        let trace = chase_trace(50);
        let base = Machine::new(MachineConfig::default())
            .run(&trace)
            .expect("run");
        let cfg = MachineConfig {
            oracle_lds: true,
            ..Default::default()
        };
        let oracle = Machine::new(cfg).run(&trace).expect("run");
        assert!(
            oracle.cycles * 4 < base.cycles,
            "oracle {} vs base {}",
            oracle.cycles,
            base.cycles
        );
    }

    #[test]
    fn same_block_misses_merge_in_mshr() {
        let mut tb = TraceBuilder::new(SimMemory::new());
        // Two loads to the same (missing) block, independent.
        tb.load(0x400, layout::HEAP_BASE, None);
        tb.load(0x404, layout::HEAP_BASE + 4, None);
        let trace = tb.finish();
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&trace).expect("run");
        assert_eq!(stats.l2_demand_misses, 1, "secondary miss must merge");
        assert_eq!(stats.bus_transfers, 1);
    }

    /// A trace with a circular address dependence (op 0 waits on op 1,
    /// op 1 waits on op 0): both dispatch, neither can ever issue.
    fn livelock_trace() -> Trace {
        let op = |dep: u32| TraceOp {
            pc: 0x400,
            addr: layout::HEAP_BASE,
            value: 0,
            dep,
            kind: OpKind::Load,
            lds: false,
        };
        Trace {
            initial_memory: SimMemory::new(),
            ops: vec![op(1), op(0)],
            instructions: 2,
        }
    }

    #[test]
    fn livelocked_engine_returns_deadlock_with_snapshot() {
        let trace = livelock_trace();
        let cfg = MachineConfig::default();
        let budget = cfg.deadlock_cycles;
        let mut m = Machine::new(cfg);
        let err = m.run(&trace).expect_err("circular deps must deadlock");
        let SimError::Deadlock(snap) = &err else {
            panic!("expected Deadlock, got {err:?}");
        };
        // The quiescence check fires long before the full watchdog budget.
        assert!(snap.cycle < budget, "detected at cycle {}", snap.cycle);
        assert_eq!(snap.retired_ops, 0);
        assert_eq!(snap.total_ops, 2);
        assert_eq!(snap.mshr_capacity, MachineConfig::default().l2_mshrs);
        assert_eq!(snap.mshr_occupancy, 0);
        let (op, issued, done) = snap.rob_head.expect("window holds the stuck head");
        assert_eq!(op, 0);
        assert!(!issued, "the head can never issue");
        assert_eq!(done, None, "no completion is scheduled");
        assert!(err.to_string().contains("deadlock"), "{err}");
    }

    #[test]
    fn cycle_budget_exceeded_is_reported() {
        let trace = chase_trace(50);
        let mut m = Machine::new(MachineConfig::default());
        m.set_cycle_budget(Some(1_000));
        let err = m.run(&trace).expect_err("budget far below the chase time");
        match err {
            SimError::CycleBudgetExceeded { budget, snapshot } => {
                assert_eq!(budget, 1_000);
                assert!(snapshot.cycle >= 1_000);
                assert!(snapshot.retired_ops < 50);
                assert_eq!(snapshot.total_ops, 50);
            }
            other => panic!("expected CycleBudgetExceeded, got {other:?}"),
        }
        // The same machine still completes the run without the budget.
        m.set_cycle_budget(None);
        let stats = m.run(&trace).expect("run");
        assert_eq!(stats.retired_instructions, 50);
    }

    #[test]
    fn dirty_evictions_produce_writebacks() {
        // Write a large region, then read another large region mapping to
        // the same sets to force dirty evictions.
        let mut tb = TraceBuilder::new(SimMemory::new());
        let blocks = 3 * 16384; // 3x the L2 line count
        for i in 0..blocks as u32 {
            tb.store(0x500, layout::HEAP_BASE + i * 64, 1, None);
        }
        let trace = tb.finish();
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&trace).expect("run");
        assert!(stats.writebacks > 0, "dirty evictions expected");
        assert!(
            stats.bus_transfers > blocks as u64,
            "writebacks add bus traffic"
        );
    }

    /// A store sweep over `blocks` distinct blocks (drives L2 evictions —
    /// the interval clock).
    fn sweep_trace(blocks: u32) -> Trace {
        let mut tb = TraceBuilder::new(SimMemory::new());
        for i in 0..blocks {
            tb.store(0x500, layout::HEAP_BASE + i * 64, 1, None);
        }
        tb.finish()
    }

    /// A small-L2 config so a short store sweep crosses many interval
    /// boundaries cheaply (1024 lines, 128-eviction intervals).
    fn obs_test_config() -> MachineConfig {
        MachineConfig {
            l2: crate::cache::CacheConfig {
                bytes: 64 * 1024,
                ways: 8,
                hit_latency: 15,
            },
            interval_evictions: 128,
            ..Default::default()
        }
    }

    #[test]
    fn obs_disabled_is_the_default_and_enabling_changes_no_stats() {
        // 4x the shrunken L2 line count: ~3k evictions = ~24 intervals.
        let trace = sweep_trace(4 * 1024);
        let cfg = obs_test_config();
        let mut plain = Machine::new(cfg.clone());
        let base = plain.run(&trace).expect("run");
        assert!(plain.take_run_trace().is_none(), "no obs requested");

        let mut observed = Machine::new(cfg);
        observed.set_obs(ObsConfig {
            lifecycle: true,
            ..ObsConfig::enabled()
        });
        let stats = observed.run(&trace).expect("run");
        // The collector must be a pure observer: timing and counters are
        // bit-identical with and without it.
        assert_eq!(base.cycles, stats.cycles);
        assert_eq!(base.summary(), stats.summary());
        assert_eq!(
            base.bus_transfers * MachineConfig::default().dram.bus_transfer_cycles,
            stats.bus_busy_cycles
        );
        let t = observed.take_run_trace().expect("trace recorded");
        assert_eq!(t.samples.len() as u64, stats.intervals);
        assert!(!t.samples.is_empty(), "sweep crosses interval boundaries");
        // Interval indices and sample cycles are monotonic.
        for (i, s) in t.samples.iter().enumerate() {
            assert_eq!(s.interval, i as u64);
        }
        assert!(t.samples.windows(2).all(|w| w[0].cycle < w[1].cycle));
        // A second run of the same machine replaces the previous trace
        // deterministically.
        let again = observed.run(&trace).expect("run");
        assert_eq!(again.cycles, stats.cycles);
        let t2 = observed.take_run_trace().expect("trace recorded");
        assert_eq!(t, t2, "traces are deterministic across runs");
    }

    #[test]
    fn run_shorter_than_one_interval_yields_an_empty_trace() {
        // 50 evictions-worth of traffic against the default 8192-eviction
        // interval: the boundary is never reached.
        let trace = chase_trace(50);
        let mut m = Machine::new(MachineConfig::default());
        m.set_obs(ObsConfig::enabled());
        let stats = m.run(&trace).expect("run");
        assert_eq!(stats.intervals, 0);
        let t = m.take_run_trace().expect("collector still attached");
        assert!(t.samples.is_empty());
        assert!(t.transitions.is_empty());
    }

    #[test]
    fn interval_sample_deltas_sum_to_run_totals_prefix() {
        let trace = sweep_trace(4 * 1024);
        let mut m = Machine::new(obs_test_config());
        m.set_obs(ObsConfig::enabled());
        let stats = m.run(&trace).expect("run");
        let t = m.take_run_trace().expect("trace");
        // Every sample is a delta; their sum cannot exceed the run totals
        // (the tail after the last boundary is not sampled).
        let retired: u64 = t.samples.iter().map(|s| s.retired).sum();
        let misses: u64 = t.samples.iter().map(|s| s.l2_demand_misses).sum();
        assert!(retired <= stats.retired_instructions);
        assert!(misses <= stats.l2_demand_misses);
        assert!(retired > 0, "intervals saw retirement");
        // The last sampled boundary lies within the run.
        let last = t.samples.last().expect("non-empty");
        assert!(last.cycle <= stats.cycles + MachineConfig::default().deadlock_cycles);
    }

    /// A tiny stateful prefetcher for the fork tests: tracks a sequential
    /// streak and prefetches ahead proportionally, so a fork that failed to
    /// restore learned state or the aggressiveness level would issue
    /// different requests and visibly diverge from the cold run.
    struct StreakPrefetcher {
        level: Aggressiveness,
        last_block: Addr,
        streak: u32,
    }

    impl StreakPrefetcher {
        fn new() -> Self {
            StreakPrefetcher {
                level: Aggressiveness::Moderate,
                last_block: 0,
                streak: 0,
            }
        }
    }

    impl Prefetcher for StreakPrefetcher {
        fn name(&self) -> &'static str {
            "test-streak"
        }

        fn kind(&self) -> crate::prefetcher::PrefetcherKind {
            crate::prefetcher::PrefetcherKind::Other
        }

        fn on_demand_access(&mut self, ctx: &mut PrefetchCtx<'_>, ev: &DemandAccess) {
            let block = ev.addr & !63;
            if block == self.last_block + 64 {
                self.streak = (self.streak + 1).min(8);
            } else if block != self.last_block {
                self.streak = 1;
            }
            self.last_block = block;
            let degree = self.streak.min(1 + self.level.index() as u32);
            for d in 1..=degree {
                ctx.request(PrefetchRequest {
                    addr: block + d * 64,
                    id: PrefetcherId(0),
                    depth: 0,
                    pg: None,
                    root_pc: ev.pc,
                });
            }
        }

        fn set_aggressiveness(&mut self, level: Aggressiveness) {
            self.level = level;
        }

        fn aggressiveness(&self) -> Aggressiveness {
            self.level
        }

        fn save_state(&self, w: &mut SnapWriter) {
            w.u32(self.last_block);
            w.u32(self.streak);
        }

        fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
            self.last_block = r.u32()?;
            self.streak = r.u32()?;
            Ok(())
        }
    }

    fn fork_test_machine() -> Machine {
        let mut m = Machine::new(obs_test_config());
        m.add_prefetcher(Box::new(StreakPrefetcher::new()));
        m.set_obs(ObsConfig {
            lifecycle: true,
            ..ObsConfig::enabled()
        });
        m
    }

    #[test]
    fn warm_checkpoint_capture_does_not_perturb_the_run() {
        let trace = sweep_trace(4 * 1024);
        let mut cold = fork_test_machine();
        let base = cold.run(&trace).expect("run");
        let base_trace = cold.take_run_trace().expect("trace");

        let mut observed = fork_test_machine();
        observed.set_warm_checkpoint(Some(base.cycles / 2));
        let stats = observed.run(&trace).expect("run");
        assert_eq!(base, stats, "capture must be a pure read");
        let t = observed.take_run_trace().expect("trace");
        assert_eq!(base_trace, t);
        let snap = observed.take_snapshot().expect("snapshot captured");
        assert!(snap.cycle >= base.cycles / 2);
        assert!(snap.cycle < base.cycles);

        // A checkpoint beyond the run end never fires.
        let mut late = fork_test_machine();
        late.set_warm_checkpoint(Some(base.cycles * 2));
        assert_eq!(late.run(&trace).expect("run"), base);
        assert!(late.take_snapshot().is_none());
    }

    #[test]
    fn forked_run_matches_cold_run() {
        let trace = sweep_trace(4 * 1024);
        let mut cold = fork_test_machine();
        let base = cold.run(&trace).expect("run");
        let base_trace = cold.take_run_trace().expect("trace");

        let mut warm = fork_test_machine();
        warm.set_warm_checkpoint(Some(base.cycles / 2));
        warm.run(&trace).expect("run");
        let snap = warm.take_snapshot().expect("snapshot");

        // Fork on a freshly built machine.
        let mut fork = fork_test_machine();
        fork.fork_from(&snap).expect("fork");
        let stats = fork.run(&trace).expect("forked run");
        assert_eq!(base, stats, "forked run must be bit-identical");
        let t = fork.take_run_trace().expect("trace");
        assert_eq!(base_trace, t, "forked obs trace must be bit-identical");

        // The fork is single-shot: the same machine re-run cold afterwards
        // still reproduces the cold result.
        let again = fork.run(&trace).expect("cold re-run");
        assert_eq!(base, again);

        // Forking the machine that produced the snapshot works too.
        warm.set_warm_checkpoint(None);
        warm.fork_from(&snap).expect("fork self");
        assert_eq!(base, warm.run(&trace).expect("run"));
    }

    #[test]
    fn wire_round_tripped_snapshot_forks_identically() {
        let trace = sweep_trace(4 * 1024);
        let mut cold = fork_test_machine();
        let base = cold.run(&trace).expect("run");
        let base_trace = cold.take_run_trace().expect("trace");

        let mut warm = fork_test_machine();
        warm.set_warm_checkpoint(Some(base.cycles / 2));
        warm.run(&trace).expect("run");
        let snap = warm.take_snapshot().expect("snapshot");
        let bytes = snap.to_bytes();
        let restored = Snapshot::from_bytes(&bytes).expect("decode");

        let mut fork = fork_test_machine();
        fork.fork_from(&restored).expect("fork");
        let stats = fork.run(&trace).expect("forked run");
        assert_eq!(base, stats);
        assert_eq!(base_trace, fork.take_run_trace().expect("trace"));
    }

    #[test]
    fn fork_rejects_mismatched_machines() {
        let trace = sweep_trace(4 * 1024);
        let mut warm = fork_test_machine();
        warm.set_warm_checkpoint(Some(10_000));
        warm.run(&trace).expect("run");
        let snap = warm.take_snapshot().expect("snapshot");

        // Different configuration.
        let mut other_cfg = Machine::new(MachineConfig::default());
        other_cfg.add_prefetcher(Box::new(StreakPrefetcher::new()));
        let err = other_cfg.fork_from(&snap).expect_err("config mismatch");
        assert_eq!(err.kind(), "snapshot-rejected");

        // Different prefetcher registration.
        let mut no_pf = Machine::new(obs_test_config());
        let err = no_pf.fork_from(&snap).expect_err("registration mismatch");
        assert_eq!(err.kind(), "snapshot-rejected");

        // A matching machine still accepts it afterwards.
        let mut ok = fork_test_machine();
        ok.fork_from(&snap).expect("fork");
    }

    #[test]
    fn forked_run_with_validation_matches_cold_run() {
        let trace = sweep_trace(4 * 1024);
        let mut cold = fork_test_machine();
        cold.set_validate(crate::validate::ValidateConfig::paper());
        let base = cold.run(&trace).expect("run");

        let mut warm = fork_test_machine();
        warm.set_validate(crate::validate::ValidateConfig::paper());
        warm.set_warm_checkpoint(Some(base.cycles / 2));
        warm.run(&trace).expect("run");
        let snap = warm.take_snapshot().expect("snapshot");

        let mut fork = fork_test_machine();
        fork.set_validate(crate::validate::ValidateConfig::paper());
        fork.fork_from(&snap).expect("fork");
        assert_eq!(base, fork.run(&trace).expect("forked run"));
    }
}
