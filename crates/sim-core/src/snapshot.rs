//! Warm-state checkpointing: capture a mid-run [`crate::Machine`] (or
//! [`crate::MultiMachine`]) into a [`Snapshot`] and fork new runs from it
//! without re-simulating warmup.
//!
//! A sweep re-runs every (workload, input) pair under several system
//! variants; each variant re-simulates an identical warmup phase. A
//! [`Snapshot`] captures the *complete* architectural and micro-
//! architectural state at a chosen warm cycle — clock, CoW memory pages
//! (`Arc`-shared, never deep-copied), the out-of-order window and its
//! completion state, cache tags, MSHRs, DRAM bank/queue/bus state, the
//! observability collector, the runtime validator, and every
//! prefetcher's learned tables — so a forked run is **bit-identical** to
//! the cold run it replaces. `bench::difftest` proves that equivalence
//! over randomized (workload, config, system) triples.
//!
//! # Wire format
//!
//! [`Snapshot::to_bytes`] produces a versioned, CRC-framed binary image:
//!
//! ```text
//! magic     8 bytes  b"ECDPSNAP"
//! version   u32 LE   container version (SNAPSHOT_VERSION)
//! schema    u32 LE   payload schema (SNAPSHOT_SCHEMA)
//! length    u64 LE   payload length in bytes
//! payload   length bytes
//! crc32     u32 LE   CRC-32 (IEEE) of the payload
//! ```
//!
//! All integers are little-endian; variable-length fields are length-
//! prefixed. [`Snapshot::from_bytes`] rejects bad magic, unknown
//! versions/schemas, truncation and CRC mismatches with a structured
//! [`SnapshotError`] — callers degrade gracefully to a cold run instead
//! of panicking (see `bench`'s sweep fallback path).

use crate::config::MachineConfig;
use crate::prefetcher::Aggressiveness;
use crate::stats::{LatencyStats, PrefetcherStats, RunStats};
use sim_mem::SimMemory;

/// Leading magic of every serialized snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"ECDPSNAP";

/// Container version: bumped when the framing itself changes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Payload schema version: bumped when any serialized structure changes.
pub const SNAPSHOT_SCHEMA: u32 = 1;

/// A structured snapshot decode/validation failure.
///
/// Never a panic: every malformed input maps to one of these variants so
/// harnesses can fall back to cold simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The container version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The payload schema does not match [`SNAPSHOT_SCHEMA`].
    SchemaMismatch {
        /// Schema this build writes and reads.
        expected: u32,
        /// Schema found in the file.
        found: u32,
    },
    /// The payload checksum does not match the stored CRC-32.
    CrcMismatch,
    /// The input ended before the expected structure was complete.
    Truncated,
    /// A decoded value was structurally invalid (bad enum tag, length
    /// mismatch against the machine configuration, trailing bytes, ...).
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::SchemaMismatch { expected, found } => {
                write!(f, "snapshot schema {found} != expected {expected}")
            }
            SnapshotError::CrcMismatch => write!(f, "snapshot payload CRC mismatch"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// FNV-1a fingerprint of a machine configuration's `Debug` rendering.
///
/// Stored in every snapshot and checked at fork time: forking under a
/// different configuration would silently desynchronize the restored
/// micro-architectural state from the model, so it is rejected instead.
pub fn config_fingerprint(config: &MachineConfig) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in format!("{config:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Little-endian byte sink used by every `save_state` implementation.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i16`, little-endian.
    pub fn i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i32`, little-endian.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Appends an aggressiveness level as its Table 2 index.
    pub fn aggressiveness(&mut self, level: Aggressiveness) {
        self.u8(level.index() as u8);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over snapshot bytes used by every `load_state` implementation.
///
/// Every read is bounds-checked and returns [`SnapshotError::Truncated`]
/// past the end — malformed snapshots never panic.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0 or 1 is malformed.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Malformed(format!("bool byte {b}"))),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i16`.
    pub fn i16(&mut self) -> Result<i16, SnapshotError> {
        Ok(self.u16()? as i16)
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, SnapshotError> {
        Ok(self.u32()? as i32)
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(self.u64()? as i64)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length as `usize`, guarding against absurd prefixes.
    pub fn len_prefix(&mut self) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        // A length prefix can never legitimately exceed the bytes left;
        // catching it here turns bit flips into Truncated, not OOM.
        if n > remaining.max(1 << 32) {
            return Err(SnapshotError::Truncated);
        }
        usize::try_from(n).map_err(|_| SnapshotError::Truncated)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.len_prefix()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let raw = self.bytes()?;
        String::from_utf8(raw).map_err(|_| SnapshotError::Malformed("non-UTF-8 string".into()))
    }

    /// Reads an aggressiveness level from its Table 2 index.
    pub fn aggressiveness(&mut self) -> Result<Aggressiveness, SnapshotError> {
        let idx = self.u8()? as usize;
        Aggressiveness::ALL
            .get(idx)
            .copied()
            .ok_or_else(|| SnapshotError::Malformed(format!("aggressiveness index {idx}")))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the reader was fully consumed (trailing bytes are malformed).
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Malformed(format!(
                "{} trailing bytes",
                self.remaining()
            )))
        }
    }
}

/// Saved state of one registered prefetcher: display name (validated at
/// fork time), current aggressiveness level, and its opaque learned-table
/// blob from [`crate::Prefetcher::save_state`].
#[derive(Debug, Clone)]
pub(crate) struct PrefetcherState {
    pub(crate) name: String,
    pub(crate) level: Aggressiveness,
    pub(crate) data: Vec<u8>,
}

/// Saved state of one simulated core.
#[derive(Debug, Clone)]
pub(crate) struct CoreState {
    /// Warmed memory image. A CoW clone behind an `Arc`: pages stay
    /// `Arc`-shared with the running machine, and cloning the snapshot
    /// itself (e.g. arming a fork) is a reference-count bump instead of
    /// a copy of the full page table.
    pub(crate) mem: std::sync::Arc<SimMemory>,
    /// Serialized `CoreSim` micro-architectural state (window, completion
    /// wheel, caches, MSHRs, queues, counters, stats, obs, validator).
    pub(crate) core: Vec<u8>,
    pub(crate) prefetchers: Vec<PrefetcherState>,
    pub(crate) throttle: PrefetcherState,
}

/// A complete warm-state checkpoint of a machine mid-run.
///
/// Produced by [`crate::Machine::take_snapshot`] (after a run with
/// [`crate::Machine::set_warm_checkpoint`]) and consumed by
/// [`crate::Machine::fork_from`]. Cloning is cheap where it matters:
/// memory pages are `Arc`-shared CoW.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) cycle: u64,
    pub(crate) config_fp: u64,
    pub(crate) cores: Vec<CoreState>,
    pub(crate) dram: Vec<u8>,
    /// Multicore only: per-core finished-run stats captured so far.
    pub(crate) finished: Vec<Option<RunStats>>,
    /// Multicore only: per-core bus-transfer baseline at last (re)start.
    pub(crate) bus_at_start: Vec<u64>,
}

impl Snapshot {
    /// Simulated cycle at which the state was captured.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of cores captured (1 for [`crate::Machine`] snapshots).
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Configuration fingerprint recorded at capture time.
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fp
    }

    /// Serializes into the framed wire format described in the module docs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u64(self.cycle);
        w.u64(self.config_fp);
        w.u32(self.cores.len() as u32);
        for core in &self.cores {
            write_memory(&mut w, &core.mem);
            w.bytes(&core.core);
            w.u32(core.prefetchers.len() as u32);
            for p in &core.prefetchers {
                w.str(&p.name);
                w.aggressiveness(p.level);
                w.bytes(&p.data);
            }
            w.str(&core.throttle.name);
            w.aggressiveness(core.throttle.level);
            w.bytes(&core.throttle.data);
        }
        w.bytes(&self.dram);
        w.u32(self.finished.len() as u32);
        for f in &self.finished {
            match f {
                None => w.bool(false),
                Some(stats) => {
                    w.bool(true);
                    write_run_stats(&mut w, stats);
                }
            }
        }
        w.u32(self.bus_at_start.len() as u32);
        for &b in &self.bus_at_start {
            w.u64(b);
        }
        let payload = w.into_bytes();

        let mut out = Vec::with_capacity(payload.len() + 28);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&SNAPSHOT_SCHEMA.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let crc = crc32(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates a framed snapshot image.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on bad magic, an unknown version or
    /// schema, truncation, a CRC mismatch, or a malformed payload —
    /// callers are expected to fall back to cold simulation.
    pub fn from_bytes(data: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapReader::new(data);
        let magic = r.take(8)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let schema = r.u32()?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(SnapshotError::SchemaMismatch {
                expected: SNAPSHOT_SCHEMA,
                found: schema,
            });
        }
        let payload_len = r.len_prefix()?;
        let payload = r.take(payload_len)?;
        let stored_crc = r.u32()?;
        r.finish()?;
        if crc32(payload) != stored_crc {
            return Err(SnapshotError::CrcMismatch);
        }

        let mut p = SnapReader::new(payload);
        let cycle = p.u64()?;
        let config_fp = p.u64()?;
        let num_cores = p.u32()? as usize;
        if num_cores == 0 || num_cores > 1024 {
            return Err(SnapshotError::Malformed(format!("{num_cores} cores")));
        }
        let mut cores = Vec::with_capacity(num_cores);
        for _ in 0..num_cores {
            let mem = std::sync::Arc::new(read_memory(&mut p)?);
            let core = p.bytes()?;
            let num_pf = p.u32()? as usize;
            if num_pf > 256 {
                return Err(SnapshotError::Malformed(format!("{num_pf} prefetchers")));
            }
            let mut prefetchers = Vec::with_capacity(num_pf);
            for _ in 0..num_pf {
                prefetchers.push(PrefetcherState {
                    name: p.str()?,
                    level: p.aggressiveness()?,
                    data: p.bytes()?,
                });
            }
            let throttle = PrefetcherState {
                name: p.str()?,
                level: p.aggressiveness()?,
                data: p.bytes()?,
            };
            cores.push(CoreState {
                mem,
                core,
                prefetchers,
                throttle,
            });
        }
        let dram = p.bytes()?;
        let num_finished = p.u32()? as usize;
        if num_finished > 1024 {
            return Err(SnapshotError::Malformed(format!(
                "{num_finished} finished entries"
            )));
        }
        let mut finished = Vec::with_capacity(num_finished);
        for _ in 0..num_finished {
            finished.push(if p.bool()? {
                Some(read_run_stats(&mut p)?)
            } else {
                None
            });
        }
        let num_bus = p.u32()? as usize;
        if num_bus > 1024 {
            return Err(SnapshotError::Malformed(format!("{num_bus} bus baselines")));
        }
        let mut bus_at_start = Vec::with_capacity(num_bus);
        for _ in 0..num_bus {
            bus_at_start.push(p.u64()?);
        }
        p.finish()?;
        Ok(Snapshot {
            cycle,
            config_fp,
            cores,
            dram,
            finished,
            bus_at_start,
        })
    }
}

fn write_memory(w: &mut SnapWriter, mem: &SimMemory) {
    let indices = mem.resident_page_indices();
    w.u32(indices.len() as u32);
    for idx in indices {
        w.u32(idx);
        // Unwrap-free by construction: the index came from the resident set.
        if let Some(page) = mem.page_bytes(idx) {
            w.bytes(page);
        } else {
            w.bytes(&[]);
        }
    }
}

fn read_memory(r: &mut SnapReader<'_>) -> Result<SimMemory, SnapshotError> {
    let count = r.u32()? as usize;
    let mut mem = SimMemory::new();
    for _ in 0..count {
        let idx = r.u32()?;
        let data = r.bytes()?;
        if data.len() != sim_mem::memory::PAGE_BYTES {
            return Err(SnapshotError::Malformed(format!(
                "page {idx} has {} bytes",
                data.len()
            )));
        }
        if !mem.install_page(idx, &data) {
            return Err(SnapshotError::Malformed(format!("page index {idx}")));
        }
    }
    Ok(mem)
}

/// Serializes a [`RunStats`] field-by-field (exact, including latency
/// aggregates and per-prefetcher outcome counters).
pub(crate) fn write_run_stats(w: &mut SnapWriter, s: &RunStats) {
    w.u64(s.cycles);
    w.u64(s.retired_instructions);
    w.u64(s.l2_demand_accesses);
    w.u64(s.l2_demand_misses);
    w.u64(s.l2_lds_misses);
    w.u64(s.l2_merged_into_prefetch);
    w.u64(s.l1_hits);
    w.u64(s.l1_misses);
    w.u64(s.bus_transfers);
    w.u64(s.bus_busy_cycles);
    w.u64(s.writebacks);
    w.u64(s.dram_row_hits);
    w.u64(s.dram_row_conflicts);
    w.u64(s.intervals);
    w.u64(s.useful_prefetch_wait_cycles);
    write_latency(w, &s.demand_service);
    write_latency(w, &s.prefetch_service);
    w.u32(s.prefetchers.len() as u32);
    for p in &s.prefetchers {
        w.str(&p.name);
        w.u64(p.issued);
        w.u64(p.used);
        w.u64(p.late);
        w.u64(p.pollution);
        w.u64(p.unused_evicted);
    }
}

/// Inverse of [`write_run_stats`].
pub(crate) fn read_run_stats(r: &mut SnapReader<'_>) -> Result<RunStats, SnapshotError> {
    let mut s = RunStats {
        cycles: r.u64()?,
        retired_instructions: r.u64()?,
        l2_demand_accesses: r.u64()?,
        l2_demand_misses: r.u64()?,
        l2_lds_misses: r.u64()?,
        l2_merged_into_prefetch: r.u64()?,
        l1_hits: r.u64()?,
        l1_misses: r.u64()?,
        bus_transfers: r.u64()?,
        bus_busy_cycles: r.u64()?,
        writebacks: r.u64()?,
        dram_row_hits: r.u64()?,
        dram_row_conflicts: r.u64()?,
        intervals: r.u64()?,
        useful_prefetch_wait_cycles: r.u64()?,
        ..RunStats::default()
    };
    s.demand_service = read_latency(r)?;
    s.prefetch_service = read_latency(r)?;
    let n = r.u32()? as usize;
    if n > 256 {
        return Err(SnapshotError::Malformed(format!("{n} prefetcher stats")));
    }
    for _ in 0..n {
        s.prefetchers.push(PrefetcherStats {
            name: r.str()?,
            issued: r.u64()?,
            used: r.u64()?,
            late: r.u64()?,
            pollution: r.u64()?,
            unused_evicted: r.u64()?,
        });
    }
    Ok(s)
}

fn write_latency(w: &mut SnapWriter, l: &LatencyStats) {
    w.u64(l.count);
    w.u64(l.total_cycles);
    w.u64(l.max_cycles);
}

fn read_latency(r: &mut SnapReader<'_>) -> Result<LatencyStats, SnapshotError> {
    Ok(LatencyStats {
        count: r.u64()?,
        total_cycles: r.u64()?,
        max_cycles: r.u64()?,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn tiny_snapshot() -> Snapshot {
        let mut mem = SimMemory::new();
        mem.write_u32(0x4000_0000, 0xdead_beef);
        mem.write_u32(0x5000_0008, 42);
        Snapshot {
            cycle: 12_345,
            config_fp: config_fingerprint(&MachineConfig::default()),
            cores: vec![CoreState {
                mem: std::sync::Arc::new(mem),
                core: vec![1, 2, 3, 4, 5],
                prefetchers: vec![
                    PrefetcherState {
                        name: "stream".into(),
                        level: Aggressiveness::Conservative,
                        data: vec![9, 9],
                    },
                    PrefetcherState {
                        name: "cdp".into(),
                        level: Aggressiveness::Aggressive,
                        data: vec![],
                    },
                ],
                throttle: PrefetcherState {
                    name: "coordinated".into(),
                    level: Aggressiveness::Aggressive,
                    data: vec![7],
                },
            }],
            dram: vec![0xAA, 0xBB],
            finished: vec![None, Some(RunStats::default())],
            bus_at_start: vec![3, 4],
        }
    }

    #[test]
    fn round_trips_through_bytes() {
        let snap = tiny_snapshot();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.cycle, snap.cycle);
        assert_eq!(back.config_fp, snap.config_fp);
        assert_eq!(back.cores.len(), 1);
        assert_eq!(back.cores[0].core, snap.cores[0].core);
        assert_eq!(back.cores[0].prefetchers.len(), 2);
        assert_eq!(back.cores[0].prefetchers[0].name, "stream");
        assert_eq!(
            back.cores[0].prefetchers[0].level,
            Aggressiveness::Conservative
        );
        assert_eq!(back.cores[0].throttle.name, "coordinated");
        assert_eq!(back.dram, snap.dram);
        assert_eq!(back.finished, snap.finished);
        assert_eq!(back.bus_at_start, snap.bus_at_start);
        assert_eq!(back.cores[0].mem.read_u32(0x4000_0000), 0xdead_beef);
        assert_eq!(back.cores[0].mem.read_u32(0x5000_0008), 42);
        // Re-encoding the decoded snapshot is byte-stable.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = tiny_snapshot().to_bytes();
        bytes[0] ^= 0xFF;
        assert_eq!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = tiny_snapshot().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn schema_skew_is_rejected() {
        let mut bytes = tiny_snapshot().to_bytes();
        bytes[12..16].copy_from_slice(&(SNAPSHOT_SCHEMA + 1).to_le_bytes());
        assert_eq!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::SchemaMismatch {
                expected: SNAPSHOT_SCHEMA,
                found: SNAPSHOT_SCHEMA + 1,
            }
        );
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let bytes = tiny_snapshot().to_bytes();
        // Every strict prefix must fail cleanly (never panic).
        for n in 0..bytes.len() {
            assert!(
                Snapshot::from_bytes(&bytes[..n]).is_err(),
                "prefix of {n} bytes decoded"
            );
        }
    }

    #[test]
    fn payload_bit_flip_fails_crc() {
        let snap = tiny_snapshot();
        let bytes = snap.to_bytes();
        // Flip one bit in every payload byte position; each must be caught
        // by the CRC (or, rarely, rejected as malformed downstream —
        // but the frame check runs first, so CRC it is).
        for pos in (28..bytes.len() - 4).step_by(97) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            assert_eq!(
                Snapshot::from_bytes(&corrupt).unwrap_err(),
                SnapshotError::CrcMismatch,
                "flip at {pos}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = tiny_snapshot().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::Malformed(_)
        ));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn writer_reader_primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.bool(true);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i16(-5);
        w.i32(-6);
        w.i64(-7);
        w.f64(0.1 + 0.2);
        w.bytes(&[1, 2, 3]);
        w.str("héllo");
        w.aggressiveness(Aggressiveness::Moderate);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i16().unwrap(), -5);
        assert_eq!(r.i32().unwrap(), -6);
        assert_eq!(r.i64().unwrap(), -7);
        assert_eq!(r.f64().unwrap(), 0.1 + 0.2);
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.aggressiveness().unwrap(), Aggressiveness::Moderate);
        r.finish().unwrap();
        assert!(r.u8().is_err());
    }

    #[test]
    fn run_stats_round_trip() {
        let stats = RunStats {
            cycles: 100,
            retired_instructions: 200,
            l2_demand_misses: 30,
            prefetchers: vec![PrefetcherStats {
                name: "stream".into(),
                issued: 10,
                used: 4,
                late: 1,
                pollution: 2,
                unused_evicted: 3,
            }],
            ..RunStats::default()
        };
        let mut w = SnapWriter::new();
        write_run_stats(&mut w, &stats);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(read_run_stats(&mut r).unwrap(), stats);
        r.finish().unwrap();
    }

    #[test]
    fn config_fingerprint_is_sensitive() {
        let a = MachineConfig::default();
        let mut b = MachineConfig::default();
        b.core.window_size += 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
        assert_eq!(config_fingerprint(&a), config_fingerprint(&a));
    }
}
