//! Interval-resolution observability: a metrics registry that samples
//! per-interval counters into typed time series, plus bounded rings of
//! throttle-decision and prefetch-lifecycle events.
//!
//! # Sampling model
//!
//! The engine already quantises feedback time into *sampling intervals*
//! (every `interval_evictions` L2 evictions, the paper's §4.1). The
//! collector piggybacks on that boundary: at the end of every interval it
//! snapshots the cumulative run counters, stores the *delta* against the
//! previous boundary as an [`IntervalSample`], and records one
//! [`ThrottleTransition`] per prefetcher describing what the throttling
//! policy decided and why (the Table 3 case number, when the policy
//! exposes one through [`ThrottlePolicy::decision_trace`]). Optionally,
//! individual prefetches are traced through their lifecycle
//! (issued → filled → used/evicted) as [`LifecycleEvent`]s.
//!
//! # Overhead guarantees
//!
//! Collection is off unless explicitly requested: the engine holds an
//! `Option<Box<ObsCollector>>` that is `None` by default, so every hook
//! site on the hot path costs a single pointer null-check. Interval
//! sampling itself runs once per 8192 L2 evictions — noise even when
//! enabled. The two event rings are bounded ([`ObsConfig`] capacities);
//! when full, the **oldest** events are dropped and counted in
//! [`RunTrace::transitions_dropped`] / [`RunTrace::lifecycle_dropped`], so
//! memory stays bounded on arbitrarily long runs.
//!
//! [`ThrottlePolicy::decision_trace`]: crate::throttling::ThrottlePolicy::decision_trace

use std::collections::VecDeque;

use sim_mem::Addr;

use crate::json::Json;
use crate::prefetcher::Aggressiveness;
use crate::throttling::ThrottleDecision;

/// Schema version stamped into `timeseries.json` and every `obs.jsonl`
/// meta line.
pub const OBS_SCHEMA_VERSION: u64 = 1;

/// Selects which event classes an [`ObsCollector`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Sample per-interval counters into the time series.
    pub timeseries: bool,
    /// Record throttle transitions (one per prefetcher per interval).
    pub decisions: bool,
    /// Record per-prefetch lifecycle events (issued/filled/used/evicted).
    /// Off by default even in [`ObsConfig::enabled`]: on long runs this is
    /// the high-volume class.
    pub lifecycle: bool,
    /// Ring capacity for throttle transitions.
    pub decision_capacity: usize,
    /// Ring capacity for lifecycle events.
    pub lifecycle_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            timeseries: false,
            decisions: false,
            lifecycle: false,
            decision_capacity: 65_536,
            lifecycle_capacity: 65_536,
        }
    }
}

impl ObsConfig {
    /// The standard tracing configuration: time series and decision
    /// tracing on, lifecycle tracing off.
    pub fn enabled() -> Self {
        ObsConfig {
            timeseries: true,
            decisions: true,
            ..Default::default()
        }
    }

    /// True when at least one event class is recorded.
    pub fn any(&self) -> bool {
        self.timeseries || self.decisions || self.lifecycle
    }
}

/// One prefetcher's slice of an [`IntervalSample`].
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetcherSample {
    /// Prefetches issued during this interval (raw count).
    pub issued: u64,
    /// Prefetches used during this interval (raw count, incl. late).
    pub used: u64,
    /// Late uses during this interval (raw count).
    pub late: u64,
    /// Smoothed accuracy the throttling policy saw (Equation 1).
    pub accuracy: f64,
    /// Smoothed coverage the throttling policy saw (Equation 2).
    pub coverage: f64,
    /// Aggressiveness level *after* this interval's decisions applied.
    pub level: Aggressiveness,
}

/// Per-interval counter deltas — one row of the time series.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSample {
    /// Interval index (0-based).
    pub interval: u64,
    /// Cycle at which the interval ended.
    pub cycle: u64,
    /// Instructions retired during this interval.
    pub retired: u64,
    /// IPC over this interval.
    pub ipc: f64,
    /// L2 demand accesses during this interval.
    pub l2_demand_accesses: u64,
    /// L2 demand misses during this interval.
    pub l2_demand_misses: u64,
    /// LDS-marked L2 demand misses during this interval.
    pub l2_lds_misses: u64,
    /// Off-chip bus block transfers during this interval.
    pub bus_transfers: u64,
    /// Fraction of this interval's cycles the bus spent transferring.
    pub bus_occupancy: f64,
    /// MSHR entries occupied at the sampling instant.
    pub mshr_occupancy: u32,
    /// Per-prefetcher slices, in registration order.
    pub prefetchers: Vec<PrefetcherSample>,
}

/// One throttle transition: what the policy decided for one prefetcher at
/// one interval boundary, with the inputs it decided from.
#[derive(Debug, Clone, PartialEq)]
pub struct ThrottleTransition {
    /// Interval index (0-based).
    pub interval: u64,
    /// Prefetcher registration index.
    pub prefetcher: u8,
    /// Table 3 case that fired (1–5); 0 when the policy does not
    /// classify its decisions.
    pub case: u8,
    /// The deciding prefetcher's smoothed accuracy input.
    pub accuracy: f64,
    /// The deciding prefetcher's smoothed coverage input.
    pub coverage: f64,
    /// The rival coverage input (0.0 for policies without one).
    pub rival_coverage: f64,
    /// The decision taken.
    pub decision: ThrottleDecision,
    /// Aggressiveness before the decision.
    pub from_level: Aggressiveness,
    /// Aggressiveness after the decision (equal to `from_level` for
    /// `Keep` and for saturated `Up`/`Down`).
    pub to_level: Aggressiveness,
}

/// Lifecycle stage of a traced prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleStage {
    /// The request left the prefetch queue for DRAM.
    Issued,
    /// The fill arrived in the L2.
    Filled,
    /// A demand access consumed the prefetched block.
    Used,
    /// The block was evicted (or was still resident at run end) without
    /// ever being demanded.
    Evicted,
}

impl LifecycleStage {
    fn as_str(self) -> &'static str {
        match self {
            LifecycleStage::Issued => "issued",
            LifecycleStage::Filled => "filled",
            LifecycleStage::Used => "used",
            LifecycleStage::Evicted => "evicted",
        }
    }
}

/// One prefetch lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// Cycle of the event.
    pub cycle: u64,
    /// Lifecycle stage.
    pub stage: LifecycleStage,
    /// Prefetcher registration index.
    pub prefetcher: u8,
    /// Block address of the prefetch.
    pub addr: Addr,
    /// For `Used` events: whether the use was late (the demand arrived
    /// before the fill). Always false for other stages.
    pub late: bool,
}

/// Everything one run's collector recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTrace {
    /// The per-interval time series (empty unless `timeseries` was on).
    pub samples: Vec<IntervalSample>,
    /// Throttle transitions, oldest first (bounded ring).
    pub transitions: Vec<ThrottleTransition>,
    /// Transitions dropped because the ring was full.
    pub transitions_dropped: u64,
    /// Lifecycle events, oldest first (bounded ring).
    pub lifecycle: Vec<LifecycleEvent>,
    /// Lifecycle events dropped because the ring was full.
    pub lifecycle_dropped: u64,
}

fn level_num(l: Aggressiveness) -> u64 {
    l.index() as u64 + 1
}

fn decision_str(d: ThrottleDecision) -> &'static str {
    match d {
        ThrottleDecision::Up => "up",
        ThrottleDecision::Down => "down",
        ThrottleDecision::Keep => "keep",
    }
}

impl RunTrace {
    /// The aggressiveness trajectory of the prefetcher at registration
    /// `index`: one entry per interval, the level in force *after* that
    /// interval's decision. Requires the time series (`timeseries: true`);
    /// returns an empty vector otherwise.
    pub fn levels(&self, index: usize) -> Vec<Aggressiveness> {
        self.samples
            .iter()
            .filter_map(|s| s.prefetchers.get(index).map(|p| p.level))
            .collect()
    }

    /// Serializes the time series as the `timeseries.json` document.
    pub fn timeseries_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(OBS_SCHEMA_VERSION as f64)),
            (
                "intervals",
                Json::Arr(self.samples.iter().map(interval_json).collect()),
            ),
        ])
    }

    /// Serializes the event streams as JSONL: a `meta` line (carrying
    /// `extra_meta`, e.g. workload/system labels), one `throttle` line per
    /// transition, one `lifecycle` line per event, and a trailing
    /// `summary` line with totals and drop counts.
    pub fn to_jsonl(&self, extra_meta: &[(&str, Json)]) -> String {
        let mut meta = vec![
            ("type", Json::Str("meta".to_string())),
            ("schema_version", Json::Num(OBS_SCHEMA_VERSION as f64)),
        ];
        meta.extend(extra_meta.iter().cloned());
        let mut out = Json::obj(meta).to_string_compact();
        out.push('\n');
        for t in &self.transitions {
            out.push_str(&transition_json(t).to_string_compact());
            out.push('\n');
        }
        for e in &self.lifecycle {
            out.push_str(&lifecycle_json(e).to_string_compact());
            out.push('\n');
        }
        let summary = Json::obj(vec![
            ("type", Json::Str("summary".to_string())),
            ("intervals", Json::Num(self.samples.len() as f64)),
            ("transitions", Json::Num(self.transitions.len() as f64)),
            (
                "transitions_dropped",
                Json::Num(self.transitions_dropped as f64),
            ),
            ("lifecycle_events", Json::Num(self.lifecycle.len() as f64)),
            (
                "lifecycle_dropped",
                Json::Num(self.lifecycle_dropped as f64),
            ),
        ]);
        out.push_str(&summary.to_string_compact());
        out.push('\n');
        out
    }
}

fn interval_json(s: &IntervalSample) -> Json {
    Json::obj(vec![
        ("interval", Json::Num(s.interval as f64)),
        ("cycle", Json::Num(s.cycle as f64)),
        ("retired", Json::Num(s.retired as f64)),
        ("ipc", Json::Num(s.ipc)),
        ("l2_demand_accesses", Json::Num(s.l2_demand_accesses as f64)),
        ("l2_demand_misses", Json::Num(s.l2_demand_misses as f64)),
        ("l2_lds_misses", Json::Num(s.l2_lds_misses as f64)),
        ("bus_transfers", Json::Num(s.bus_transfers as f64)),
        ("bus_occupancy", Json::Num(s.bus_occupancy)),
        ("mshr_occupancy", Json::Num(f64::from(s.mshr_occupancy))),
        (
            "prefetchers",
            Json::Arr(
                s.prefetchers
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("issued", Json::Num(p.issued as f64)),
                            ("used", Json::Num(p.used as f64)),
                            ("late", Json::Num(p.late as f64)),
                            ("accuracy", Json::Num(p.accuracy)),
                            ("coverage", Json::Num(p.coverage)),
                            ("level", Json::Num(level_num(p.level) as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn transition_json(t: &ThrottleTransition) -> Json {
    Json::obj(vec![
        ("type", Json::Str("throttle".to_string())),
        ("interval", Json::Num(t.interval as f64)),
        ("prefetcher", Json::Num(f64::from(t.prefetcher))),
        ("case", Json::Num(f64::from(t.case))),
        ("accuracy", Json::Num(t.accuracy)),
        ("coverage", Json::Num(t.coverage)),
        ("rival_coverage", Json::Num(t.rival_coverage)),
        ("decision", Json::Str(decision_str(t.decision).to_string())),
        ("from_level", Json::Num(level_num(t.from_level) as f64)),
        ("to_level", Json::Num(level_num(t.to_level) as f64)),
    ])
}

fn lifecycle_json(e: &LifecycleEvent) -> Json {
    Json::obj(vec![
        ("type", Json::Str("lifecycle".to_string())),
        ("cycle", Json::Num(e.cycle as f64)),
        ("stage", Json::Str(e.stage.as_str().to_string())),
        ("prefetcher", Json::Num(f64::from(e.prefetcher))),
        ("addr", Json::Num(f64::from(e.addr))),
        ("late", Json::Bool(e.late)),
    ])
}

/// Cumulative counter snapshot handed to the collector at an interval
/// boundary; the collector turns consecutive snapshots into deltas.
#[derive(Debug, Clone)]
pub struct IntervalObservation<'a> {
    /// Current cycle.
    pub cycle: u64,
    /// Cumulative retired instructions.
    pub retired: u64,
    /// Cumulative L2 demand accesses.
    pub l2_demand_accesses: u64,
    /// Cumulative L2 demand misses.
    pub l2_demand_misses: u64,
    /// Cumulative LDS-marked L2 demand misses.
    pub l2_lds_misses: u64,
    /// Cumulative bus transfers (for this core).
    pub bus_transfers: u64,
    /// Cycles one block transfer occupies the bus (config constant).
    pub bus_transfer_cycles: u64,
    /// MSHR entries occupied right now.
    pub mshr_occupancy: u32,
    /// Per-prefetcher slices for this interval.
    pub prefetchers: &'a [PrefetcherSample],
}

/// The per-run event collector the engine drives. Construct via
/// [`ObsCollector::new`]; the engine calls the `record_*` hooks, and
/// [`ObsCollector::into_trace`] yields the finished [`RunTrace`].
#[derive(Debug)]
pub struct ObsCollector {
    cfg: ObsConfig,
    samples: Vec<IntervalSample>,
    transitions: VecDeque<ThrottleTransition>,
    transitions_dropped: u64,
    lifecycle: VecDeque<LifecycleEvent>,
    lifecycle_dropped: u64,
    last_cycle: u64,
    last_retired: u64,
    last_l2_demand_accesses: u64,
    last_l2_demand_misses: u64,
    last_l2_lds_misses: u64,
    last_bus_transfers: u64,
}

impl ObsCollector {
    /// Creates a collector for one run.
    pub fn new(cfg: ObsConfig) -> Self {
        ObsCollector {
            cfg,
            samples: Vec::new(),
            transitions: VecDeque::new(),
            transitions_dropped: 0,
            lifecycle: VecDeque::new(),
            lifecycle_dropped: 0,
            last_cycle: 0,
            last_retired: 0,
            last_l2_demand_accesses: 0,
            last_l2_demand_misses: 0,
            last_l2_lds_misses: 0,
            last_bus_transfers: 0,
        }
    }

    /// Whether the time series is being recorded.
    pub fn timeseries_enabled(&self) -> bool {
        self.cfg.timeseries
    }

    /// Whether throttle transitions are being recorded.
    pub fn decisions_enabled(&self) -> bool {
        self.cfg.decisions
    }

    /// Whether lifecycle events are being recorded.
    pub fn lifecycle_enabled(&self) -> bool {
        self.cfg.lifecycle
    }

    /// Records one interval boundary from a cumulative snapshot.
    pub fn record_interval(&mut self, interval: u64, obs: &IntervalObservation<'_>) {
        let cycles = obs.cycle.saturating_sub(self.last_cycle);
        let retired = obs.retired.saturating_sub(self.last_retired);
        let bus = obs.bus_transfers.saturating_sub(self.last_bus_transfers);
        let sample = IntervalSample {
            interval,
            cycle: obs.cycle,
            retired,
            ipc: if cycles == 0 {
                0.0
            } else {
                retired as f64 / cycles as f64
            },
            l2_demand_accesses: obs
                .l2_demand_accesses
                .saturating_sub(self.last_l2_demand_accesses),
            l2_demand_misses: obs
                .l2_demand_misses
                .saturating_sub(self.last_l2_demand_misses),
            l2_lds_misses: obs.l2_lds_misses.saturating_sub(self.last_l2_lds_misses),
            bus_transfers: bus,
            bus_occupancy: if cycles == 0 {
                0.0
            } else {
                ((bus * obs.bus_transfer_cycles) as f64 / cycles as f64).min(1.0)
            },
            mshr_occupancy: obs.mshr_occupancy,
            prefetchers: obs.prefetchers.to_vec(),
        };
        self.last_cycle = obs.cycle;
        self.last_retired = obs.retired;
        self.last_l2_demand_accesses = obs.l2_demand_accesses;
        self.last_l2_demand_misses = obs.l2_demand_misses;
        self.last_l2_lds_misses = obs.l2_lds_misses;
        self.last_bus_transfers = obs.bus_transfers;
        if self.cfg.timeseries {
            self.samples.push(sample);
        }
    }

    /// Records one throttle transition (ring-bounded).
    pub fn record_transition(&mut self, t: ThrottleTransition) {
        if !self.cfg.decisions {
            return;
        }
        if self.transitions.len() >= self.cfg.decision_capacity {
            self.transitions.pop_front();
            self.transitions_dropped += 1;
        }
        self.transitions.push_back(t);
    }

    /// Records one lifecycle event (ring-bounded).
    pub fn record_lifecycle(&mut self, e: LifecycleEvent) {
        if !self.cfg.lifecycle {
            return;
        }
        if self.lifecycle.len() >= self.cfg.lifecycle_capacity {
            self.lifecycle.pop_front();
            self.lifecycle_dropped += 1;
        }
        self.lifecycle.push_back(e);
    }

    /// Finishes collection.
    pub fn into_trace(self) -> RunTrace {
        RunTrace {
            samples: self.samples,
            transitions: self.transitions.into(),
            transitions_dropped: self.transitions_dropped,
            lifecycle: self.lifecycle.into(),
            lifecycle_dropped: self.lifecycle_dropped,
        }
    }

    /// Serializes everything recorded so far plus the delta baselines
    /// (warm-state checkpointing). The configuration is *not* captured —
    /// a forked run keeps its own collector's configuration.
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.samples.len() as u64);
        for s in &self.samples {
            write_sample(w, s);
        }
        w.u64(self.transitions.len() as u64);
        for t in &self.transitions {
            write_transition(w, t);
        }
        w.u64(self.transitions_dropped);
        w.u64(self.lifecycle.len() as u64);
        for e in &self.lifecycle {
            write_lifecycle(w, e);
        }
        w.u64(self.lifecycle_dropped);
        w.u64(self.last_cycle);
        w.u64(self.last_retired);
        w.u64(self.last_l2_demand_accesses);
        w.u64(self.last_l2_demand_misses);
        w.u64(self.last_l2_lds_misses);
        w.u64(self.last_bus_transfers);
    }

    /// Restores state saved by [`ObsCollector::save_state`], keeping this
    /// collector's configuration.
    pub(crate) fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let n = r.len_prefix()?;
        self.samples.clear();
        for _ in 0..n {
            self.samples.push(read_sample(r)?);
        }
        let n = r.len_prefix()?;
        self.transitions.clear();
        for _ in 0..n {
            self.transitions.push_back(read_transition(r)?);
        }
        self.transitions_dropped = r.u64()?;
        let n = r.len_prefix()?;
        self.lifecycle.clear();
        for _ in 0..n {
            self.lifecycle.push_back(read_lifecycle(r)?);
        }
        self.lifecycle_dropped = r.u64()?;
        self.last_cycle = r.u64()?;
        self.last_retired = r.u64()?;
        self.last_l2_demand_accesses = r.u64()?;
        self.last_l2_demand_misses = r.u64()?;
        self.last_l2_lds_misses = r.u64()?;
        self.last_bus_transfers = r.u64()?;
        Ok(())
    }
}

use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};

fn write_sample(w: &mut SnapWriter, s: &IntervalSample) {
    w.u64(s.interval);
    w.u64(s.cycle);
    w.u64(s.retired);
    w.f64(s.ipc);
    w.u64(s.l2_demand_accesses);
    w.u64(s.l2_demand_misses);
    w.u64(s.l2_lds_misses);
    w.u64(s.bus_transfers);
    w.f64(s.bus_occupancy);
    w.u32(s.mshr_occupancy);
    w.u32(s.prefetchers.len() as u32);
    for p in &s.prefetchers {
        w.u64(p.issued);
        w.u64(p.used);
        w.u64(p.late);
        w.f64(p.accuracy);
        w.f64(p.coverage);
        w.aggressiveness(p.level);
    }
}

fn read_sample(r: &mut SnapReader<'_>) -> Result<IntervalSample, SnapshotError> {
    let mut s = IntervalSample {
        interval: r.u64()?,
        cycle: r.u64()?,
        retired: r.u64()?,
        ipc: r.f64()?,
        l2_demand_accesses: r.u64()?,
        l2_demand_misses: r.u64()?,
        l2_lds_misses: r.u64()?,
        bus_transfers: r.u64()?,
        bus_occupancy: r.f64()?,
        mshr_occupancy: r.u32()?,
        prefetchers: Vec::new(),
    };
    let n = r.u32()? as usize;
    if n > 256 {
        return Err(SnapshotError::Malformed(format!("{n} prefetcher samples")));
    }
    for _ in 0..n {
        s.prefetchers.push(PrefetcherSample {
            issued: r.u64()?,
            used: r.u64()?,
            late: r.u64()?,
            accuracy: r.f64()?,
            coverage: r.f64()?,
            level: r.aggressiveness()?,
        });
    }
    Ok(s)
}

fn write_transition(w: &mut SnapWriter, t: &ThrottleTransition) {
    w.u64(t.interval);
    w.u8(t.prefetcher);
    w.u8(t.case);
    w.f64(t.accuracy);
    w.f64(t.coverage);
    w.f64(t.rival_coverage);
    w.u8(match t.decision {
        ThrottleDecision::Up => 0,
        ThrottleDecision::Down => 1,
        ThrottleDecision::Keep => 2,
    });
    w.aggressiveness(t.from_level);
    w.aggressiveness(t.to_level);
}

fn read_transition(r: &mut SnapReader<'_>) -> Result<ThrottleTransition, SnapshotError> {
    Ok(ThrottleTransition {
        interval: r.u64()?,
        prefetcher: r.u8()?,
        case: r.u8()?,
        accuracy: r.f64()?,
        coverage: r.f64()?,
        rival_coverage: r.f64()?,
        decision: match r.u8()? {
            0 => ThrottleDecision::Up,
            1 => ThrottleDecision::Down,
            2 => ThrottleDecision::Keep,
            t => return Err(SnapshotError::Malformed(format!("decision tag {t}"))),
        },
        from_level: r.aggressiveness()?,
        to_level: r.aggressiveness()?,
    })
}

fn write_lifecycle(w: &mut SnapWriter, e: &LifecycleEvent) {
    w.u64(e.cycle);
    w.u8(match e.stage {
        LifecycleStage::Issued => 0,
        LifecycleStage::Filled => 1,
        LifecycleStage::Used => 2,
        LifecycleStage::Evicted => 3,
    });
    w.u8(e.prefetcher);
    w.u32(e.addr);
    w.bool(e.late);
}

fn read_lifecycle(r: &mut SnapReader<'_>) -> Result<LifecycleEvent, SnapshotError> {
    Ok(LifecycleEvent {
        cycle: r.u64()?,
        stage: match r.u8()? {
            0 => LifecycleStage::Issued,
            1 => LifecycleStage::Filled,
            2 => LifecycleStage::Used,
            3 => LifecycleStage::Evicted,
            t => return Err(SnapshotError::Malformed(format!("lifecycle tag {t}"))),
        },
        prefetcher: r.u8()?,
        addr: r.u32()?,
        late: r.bool()?,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn pf(level: Aggressiveness) -> PrefetcherSample {
        PrefetcherSample {
            issued: 10,
            used: 4,
            late: 1,
            accuracy: 0.4,
            coverage: 0.2,
            level,
        }
    }

    #[test]
    fn interval_deltas_come_from_consecutive_snapshots() {
        let mut c = ObsCollector::new(ObsConfig::enabled());
        let p = [pf(Aggressiveness::Moderate)];
        c.record_interval(
            0,
            &IntervalObservation {
                cycle: 1000,
                retired: 500,
                l2_demand_accesses: 100,
                l2_demand_misses: 40,
                l2_lds_misses: 10,
                bus_transfers: 5,
                bus_transfer_cycles: 40,
                mshr_occupancy: 3,
                prefetchers: &p,
            },
        );
        c.record_interval(
            1,
            &IntervalObservation {
                cycle: 3000,
                retired: 1500,
                l2_demand_accesses: 160,
                l2_demand_misses: 70,
                l2_lds_misses: 25,
                bus_transfers: 25,
                bus_transfer_cycles: 40,
                mshr_occupancy: 0,
                prefetchers: &p,
            },
        );
        let t = c.into_trace();
        assert_eq!(t.samples.len(), 2);
        let s = &t.samples[1];
        assert_eq!(s.cycle, 3000);
        assert_eq!(s.retired, 1000);
        assert_eq!(s.l2_demand_accesses, 60);
        assert_eq!(s.l2_demand_misses, 30);
        assert_eq!(s.l2_lds_misses, 15);
        assert_eq!(s.bus_transfers, 20);
        assert!((s.ipc - 0.5).abs() < 1e-12);
        // 20 transfers * 40 cycles / 2000 cycles = 0.4.
        assert!((s.bus_occupancy - 0.4).abs() < 1e-12);
        assert_eq!(t.levels(0).len(), 2);
        assert!(t.levels(7).is_empty());
    }

    #[test]
    fn rings_drop_oldest_and_count() {
        let cfg = ObsConfig {
            decisions: true,
            lifecycle: true,
            decision_capacity: 2,
            lifecycle_capacity: 1,
            ..Default::default()
        };
        let mut c = ObsCollector::new(cfg);
        for i in 0..4 {
            c.record_transition(ThrottleTransition {
                interval: i,
                prefetcher: 0,
                case: 1,
                accuracy: 1.0,
                coverage: 1.0,
                rival_coverage: 0.0,
                decision: ThrottleDecision::Up,
                from_level: Aggressiveness::Moderate,
                to_level: Aggressiveness::Aggressive,
            });
            c.record_lifecycle(LifecycleEvent {
                cycle: i,
                stage: LifecycleStage::Issued,
                prefetcher: 0,
                addr: 64 * i as Addr,
                late: false,
            });
        }
        let t = c.into_trace();
        assert_eq!(t.transitions.len(), 2);
        assert_eq!(t.transitions_dropped, 2);
        assert_eq!(t.transitions[0].interval, 2, "oldest dropped first");
        assert_eq!(t.lifecycle.len(), 1);
        assert_eq!(t.lifecycle_dropped, 3);
        assert_eq!(t.lifecycle[0].cycle, 3);
    }

    #[test]
    fn disabled_classes_record_nothing() {
        let mut c = ObsCollector::new(ObsConfig::default());
        assert!(!ObsConfig::default().any());
        c.record_transition(ThrottleTransition {
            interval: 0,
            prefetcher: 0,
            case: 0,
            accuracy: 0.0,
            coverage: 0.0,
            rival_coverage: 0.0,
            decision: ThrottleDecision::Keep,
            from_level: Aggressiveness::Moderate,
            to_level: Aggressiveness::Moderate,
        });
        c.record_lifecycle(LifecycleEvent {
            cycle: 0,
            stage: LifecycleStage::Evicted,
            prefetcher: 0,
            addr: 0,
            late: false,
        });
        c.record_interval(
            0,
            &IntervalObservation {
                cycle: 10,
                retired: 10,
                l2_demand_accesses: 0,
                l2_demand_misses: 0,
                l2_lds_misses: 0,
                bus_transfers: 0,
                bus_transfer_cycles: 40,
                mshr_occupancy: 0,
                prefetchers: &[],
            },
        );
        let t = c.into_trace();
        assert_eq!(t, RunTrace::default());
    }

    #[test]
    fn jsonl_lines_parse_and_carry_meta() {
        let mut c = ObsCollector::new(ObsConfig {
            lifecycle: true,
            ..ObsConfig::enabled()
        });
        c.record_transition(ThrottleTransition {
            interval: 0,
            prefetcher: 1,
            case: 4,
            accuracy: 0.5,
            coverage: 0.1,
            rival_coverage: 0.6,
            decision: ThrottleDecision::Down,
            from_level: Aggressiveness::Moderate,
            to_level: Aggressiveness::Conservative,
        });
        c.record_lifecycle(LifecycleEvent {
            cycle: 77,
            stage: LifecycleStage::Used,
            prefetcher: 1,
            addr: 0x1240,
            late: true,
        });
        let t = c.into_trace();
        let text = t.to_jsonl(&[("workload", Json::Str("mst".to_string()))]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let meta = Json::parse(lines[0]).unwrap();
        assert_eq!(meta.get("type").unwrap().as_str(), Some("meta"));
        assert_eq!(
            meta.get("schema_version").unwrap().as_u64(),
            Some(OBS_SCHEMA_VERSION)
        );
        assert_eq!(meta.get("workload").unwrap().as_str(), Some("mst"));
        let throttle = Json::parse(lines[1]).unwrap();
        assert_eq!(throttle.get("type").unwrap().as_str(), Some("throttle"));
        assert_eq!(throttle.get("case").unwrap().as_u64(), Some(4));
        assert_eq!(throttle.get("decision").unwrap().as_str(), Some("down"));
        assert_eq!(throttle.get("from_level").unwrap().as_u64(), Some(3));
        assert_eq!(throttle.get("to_level").unwrap().as_u64(), Some(2));
        let life = Json::parse(lines[2]).unwrap();
        assert_eq!(life.get("stage").unwrap().as_str(), Some("used"));
        assert_eq!(life.get("late").unwrap(), &Json::Bool(true));
        let summary = Json::parse(lines[3]).unwrap();
        assert_eq!(summary.get("type").unwrap().as_str(), Some("summary"));
        assert_eq!(summary.get("transitions").unwrap().as_u64(), Some(1));
        assert_eq!(summary.get("lifecycle_events").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn timeseries_json_shape() {
        let mut c = ObsCollector::new(ObsConfig::enabled());
        let p = [pf(Aggressiveness::Aggressive)];
        c.record_interval(
            0,
            &IntervalObservation {
                cycle: 100,
                retired: 200,
                l2_demand_accesses: 10,
                l2_demand_misses: 5,
                l2_lds_misses: 2,
                bus_transfers: 1,
                bus_transfer_cycles: 40,
                mshr_occupancy: 2,
                prefetchers: &p,
            },
        );
        let doc = c.into_trace().timeseries_json();
        assert_eq!(
            doc.get("schema_version").unwrap().as_u64(),
            Some(OBS_SCHEMA_VERSION)
        );
        let intervals = doc.get("intervals").unwrap().as_arr().unwrap();
        assert_eq!(intervals.len(), 1);
        let row = &intervals[0];
        assert_eq!(row.get("cycle").unwrap().as_u64(), Some(100));
        assert!((row.get("ipc").unwrap().as_f64().unwrap() - 2.0).abs() < 1e-12);
        let pfs = row.get("prefetchers").unwrap().as_arr().unwrap();
        assert_eq!(pfs[0].get("level").unwrap().as_u64(), Some(4));
    }
}
