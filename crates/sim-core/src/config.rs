//! Machine configuration (paper Table 5, adapted to 64-byte blocks).

use crate::cache::CacheConfig;

/// Out-of-order core parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Reorder-buffer (instruction window) capacity, in instructions.
    pub window_size: u32,
    /// Instructions dispatched into the window per cycle.
    pub dispatch_width: u32,
    /// Instructions retired per cycle.
    pub retire_width: u32,
    /// Maximum in-flight memory operations (load/store queue entries).
    pub lsq_size: u32,
    /// Memory operations issued to the L1 per cycle.
    pub issue_width: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            window_size: 256,
            dispatch_width: 4,
            retire_width: 4,
            lsq_size: 32,
            issue_width: 8,
        }
    }
}

/// Memory-controller scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DramScheduling {
    /// First-ready FCFS with demand-first priority (the default: row hits
    /// first, then demands over prefetches, then oldest).
    #[default]
    FrFcfsDemandFirst,
    /// First-ready FCFS without demand priority.
    FrFcfs,
    /// Strict arrival order.
    Fcfs,
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowPolicy {
    /// Leave the row open after an access (default; rewards locality).
    #[default]
    OpenPage,
    /// Precharge after every access: every access pays the full row cycle,
    /// but there are no conflict penalties to open rows.
    ClosedPage,
}

/// DRAM and off-chip bus parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of DRAM banks.
    pub num_banks: u32,
    /// Row-buffer size in bytes (determines the row index of an address).
    pub row_bytes: u32,
    /// Bank busy time for a row-buffer hit, in core cycles.
    pub row_hit_cycles: u64,
    /// Bank busy time for a row-buffer conflict (precharge + activate + CAS).
    pub row_conflict_cycles: u64,
    /// Fixed controller/queueing overhead added to every access, in cycles.
    pub controller_overhead: u64,
    /// Core cycles to transfer one cache block over the data bus.
    ///
    /// 64-byte block over an 8-byte bus at a 5:1 core:bus frequency ratio =
    /// 8 beats x 5 cycles = 40 core cycles.
    pub bus_transfer_cycles: u64,
    /// Capacity of the shared memory request buffer, per core
    /// (paper: 32 x core-count).
    pub request_buffer_per_core: u32,
    /// Controller scheduling policy.
    pub scheduling: DramScheduling,
    /// Row-buffer management policy.
    pub row_policy: RowPolicy,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            num_banks: 8,
            row_bytes: 8192,
            row_hit_cycles: 110,
            row_conflict_cycles: 300,
            controller_overhead: 110,
            bus_transfer_cycles: 40,
            request_buffer_per_core: 32,
            scheduling: DramScheduling::default(),
            row_policy: RowPolicy::default(),
        }
    }
}

/// Full single-core machine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Core (window) parameters.
    pub core: CoreConfig,
    /// L1 data cache geometry and latency.
    pub l1: CacheConfig,
    /// L2 (last-level) cache geometry and latency.
    pub l2: CacheConfig,
    /// Number of L2 miss-status-holding registers.
    pub l2_mshrs: u32,
    /// DRAM system parameters.
    pub dram: DramConfig,
    /// Capacity of the per-core prefetch request queue.
    pub prefetch_queue_size: u32,
    /// L2 evictions per feedback-sampling interval (paper §4.1: 8192).
    pub interval_evictions: u64,
    /// When set, L2 misses of loads marked as linked-data-structure accesses
    /// are ideally converted to hits (the oracle experiment of Figure 1).
    pub oracle_lds: bool,
    /// Safety net: abort if the machine makes no forward progress for this
    /// many cycles (deadlock in the model, not the workload).
    pub deadlock_cycles: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            core: CoreConfig::default(),
            l1: CacheConfig {
                bytes: 32 * 1024,
                ways: 4,
                hit_latency: 2,
            },
            l2: CacheConfig {
                bytes: 1024 * 1024,
                ways: 8,
                hit_latency: 15,
            },
            l2_mshrs: 32,
            dram: DramConfig::default(),
            prefetch_queue_size: 128,
            interval_evictions: 8192,
            oracle_lds: false,
            deadlock_cycles: 20_000_000,
        }
    }
}

impl MachineConfig {
    /// The minimum DRAM round-trip latency of this configuration, in cycles
    /// (controller overhead + row conflict + bus transfer).
    pub fn min_memory_latency(&self) -> u64 {
        self.dram.controller_overhead
            + self.dram.row_conflict_cycles
            + self.dram.bus_transfer_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table5() {
        let c = MachineConfig::default();
        assert_eq!(c.core.window_size, 256);
        assert_eq!(c.core.lsq_size, 32);
        assert_eq!(c.l2.bytes, 1024 * 1024);
        assert_eq!(c.l2.ways, 8);
        assert_eq!(c.l2_mshrs, 32);
        assert_eq!(c.dram.num_banks, 8);
        assert_eq!(c.prefetch_queue_size, 128);
        assert_eq!(c.interval_evictions, 8192);
    }

    #[test]
    fn min_memory_latency_is_450() {
        // Paper: "450-cycle minimum memory latency".
        assert_eq!(MachineConfig::default().min_memory_latency(), 450);
    }
}
