//! Set-associative, LRU-replacement cache model with per-line prefetch
//! metadata (the paper's `prefetched-CDP` / `prefetched-stream` bits live in
//! the metadata attached to each line).

use crate::prefetcher::PgTag;
use crate::prefetcher::PrefetcherId;
use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
use sim_mem::{Addr, BLOCK_BYTES};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Hit latency in core cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u32 {
        self.bytes / BLOCK_BYTES / self.ways
    }
}

/// Metadata carried by every resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineState {
    /// True if the line has been written and must be written back on evict.
    pub dirty: bool,
    /// Which prefetcher fetched this line, if any (`prefetched-*` bit).
    /// Cleared when a demand request uses the line, per the paper's feedback
    /// scheme.
    pub prefetched_by: Option<PrefetcherId>,
    /// Pointer-group attribution of the prefetch that fetched the line
    /// (ECDP profiling only; no hardware analogue is required at run time).
    pub pg_tag: Option<PgTag>,
    /// True once any demand request has hit this line.
    pub used: bool,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u32,
    valid: bool,
    last_used: u64,
    state: LineState,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    last_used: 0,
    state: LineState {
        dirty: false,
        prefetched_by: None,
        pg_tag: None,
        used: false,
    },
};

/// Information about a line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Block address of the victim.
    pub block_addr: Addr,
    /// Metadata of the victim at eviction time.
    pub state: LineState,
}

/// A set-associative, true-LRU cache.
///
/// # Example
///
/// ```
/// use sim_core::cache::{Cache, CacheConfig, LineState};
///
/// let mut c = Cache::new(CacheConfig { bytes: 4096, ways: 2, hit_latency: 2 });
/// assert!(c.access(0x1000).is_none());           // cold miss
/// c.fill(0x1000, LineState::default());
/// assert!(c.access(0x1000).is_some());           // now a hit
/// ```
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: u32,
    lines: Vec<Line>,
    tick: u64,
    /// Demand evictions since last reset (drives the feedback interval).
    evictions: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or ways, or a
    /// non-power-of-two set count).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(config.ways > 0, "cache must have at least one way");
        assert!(sets > 0, "cache must have at least one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            config,
            sets,
            lines: vec![INVALID; (sets * config.ways) as usize],
            tick: 0,
            evictions: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Total evictions of valid lines since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    #[inline]
    fn set_index(&self, addr: Addr) -> u32 {
        (addr / BLOCK_BYTES) & (self.sets - 1)
    }

    #[inline]
    fn tag(&self, addr: Addr) -> u32 {
        addr / BLOCK_BYTES / self.sets
    }

    #[inline]
    fn set_range(&self, addr: Addr) -> std::ops::Range<usize> {
        let set = self.set_index(addr) as usize;
        let ways = self.config.ways as usize;
        set * ways..(set + 1) * ways
    }

    /// Looks up `addr` without touching LRU state (a tag probe).
    pub fn probe(&self, addr: Addr) -> Option<&LineState> {
        let tag = self.tag(addr);
        self.lines[self.set_range(addr)]
            .iter()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| &l.state)
    }

    /// Looks up `addr`, updating LRU state on a hit. Returns the line's
    /// metadata for the caller to inspect and mutate.
    pub fn access(&mut self, addr: Addr) -> Option<&mut LineState> {
        self.tick += 1;
        let tag = self.tag(addr);
        let tick = self.tick;
        let range = self.set_range(addr);
        self.lines[range]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| {
                l.last_used = tick;
                &mut l.state
            })
    }

    /// Inserts the block containing `addr` with metadata `state`, evicting
    /// the LRU line of the set if necessary. Returns the victim, if any.
    ///
    /// Filling an already-resident block replaces its metadata in place and
    /// evicts nothing.
    pub fn fill(&mut self, addr: Addr, state: LineState) -> Option<Evicted> {
        self.tick += 1;
        let tag = self.tag(addr);
        let set = self.set_index(addr);
        let tick = self.tick;
        let range = self.set_range(addr);

        // Already resident: refresh metadata.
        if let Some(l) = self.lines[range.clone()]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            l.state = state;
            l.last_used = tick;
            return None;
        }

        // Choose victim: an invalid way, else true LRU.
        let ways = &mut self.lines[range];
        let victim = match ways.iter_mut().find(|l| !l.valid) {
            Some(l) => l,
            None => ways
                .iter_mut()
                .min_by_key(|l| l.last_used)
                .expect("cache sets have at least one way"),
        };

        let evicted = victim.valid.then(|| Evicted {
            block_addr: (victim.tag * self.sets + set) * BLOCK_BYTES,
            state: victim.state,
        });
        if evicted.is_some() {
            self.evictions += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            last_used: tick,
            state,
        };
        evicted
    }

    /// Invalidates the block containing `addr`, returning its metadata if it
    /// was resident.
    pub fn invalidate(&mut self, addr: Addr) -> Option<LineState> {
        let tag = self.tag(addr);
        let range = self.set_range(addr);
        self.lines[range]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| {
                l.valid = false;
                l.state
            })
    }

    /// Iterates over all valid lines as `(block_addr, state)` pairs.
    pub fn iter_valid(&self) -> impl Iterator<Item = (Addr, &LineState)> + '_ {
        let ways = self.config.ways as usize;
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.valid)
            .map(move |(i, l)| {
                let set = (i / ways) as u32;
                ((l.tag * self.sets + set) * BLOCK_BYTES, &l.state)
            })
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Total number of lines (capacity / block size).
    pub fn total_lines(&self) -> usize {
        self.lines.len()
    }

    /// Serializes tags, LRU clocks and line metadata (valid lines only).
    /// Geometry is not stored — it is implied by the machine
    /// configuration, which the snapshot layer fingerprints separately.
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.tick);
        w.u64(self.evictions);
        w.u32(self.lines.len() as u32);
        let valid: Vec<(u32, &Line)> = self
            .lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.valid)
            .map(|(i, l)| (i as u32, l))
            .collect();
        w.u32(valid.len() as u32);
        for (i, l) in valid {
            w.u32(i);
            w.u32(l.tag);
            w.u64(l.last_used);
            write_line_state(w, &l.state);
        }
    }

    /// Restores state saved by [`Cache::save_state`] into a cache of the
    /// same geometry.
    pub(crate) fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.tick = r.u64()?;
        self.evictions = r.u64()?;
        let total = r.u32()? as usize;
        if total != self.lines.len() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot cache has {total} lines, this cache has {}",
                self.lines.len()
            )));
        }
        for l in &mut self.lines {
            *l = INVALID;
        }
        let n = r.u32()? as usize;
        if n > total {
            return Err(SnapshotError::Malformed(format!(
                "{n} valid lines exceed capacity {total}"
            )));
        }
        for _ in 0..n {
            let i = r.u32()? as usize;
            if i >= total {
                return Err(SnapshotError::Malformed(format!("line index {i}")));
            }
            let tag = r.u32()?;
            let last_used = r.u64()?;
            let state = read_line_state(r)?;
            self.lines[i] = Line {
                tag,
                valid: true,
                last_used,
                state,
            };
        }
        Ok(())
    }
}

fn write_line_state(w: &mut SnapWriter, s: &LineState) {
    w.bool(s.dirty);
    match s.prefetched_by {
        None => w.bool(false),
        Some(id) => {
            w.bool(true);
            w.u8(id.0);
        }
    }
    match s.pg_tag {
        None => w.bool(false),
        Some(pg) => {
            w.bool(true);
            w.u32(pg.pc);
            w.i16(pg.offset);
        }
    }
    w.bool(s.used);
}

fn read_line_state(r: &mut SnapReader<'_>) -> Result<LineState, SnapshotError> {
    let dirty = r.bool()?;
    let prefetched_by = if r.bool()? {
        Some(PrefetcherId(r.u8()?))
    } else {
        None
    };
    let pg_tag = if r.bool()? {
        let pc = r.u32()?;
        let offset = r.i16()?;
        Some(PgTag { pc, offset })
    } else {
        None
    };
    let used = r.bool()?;
    Ok(LineState {
        dirty,
        prefetched_by,
        pg_tag,
        used,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B = 256B.
        Cache::new(CacheConfig {
            bytes: 256,
            ways: 2,
            hit_latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(c.access(0x1000).is_none());
        c.fill(0x1000, LineState::default());
        assert!(c.access(0x1000).is_some());
        assert!(c.access(0x1004).is_some(), "same block hits");
        assert!(c.access(0x1040).is_none(), "next block misses");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 blocks (sets=2): block addresses with even block index.
        let a = 0x0000; // set 0
        let b = 0x0080; // set 0
        let d = 0x0100; // set 0
        c.fill(a, LineState::default());
        c.fill(b, LineState::default());
        assert!(c.access(a).is_some()); // a is now MRU
        let ev = c.fill(d, LineState::default()).expect("must evict");
        assert_eq!(ev.block_addr, b, "LRU victim is b");
        assert!(c.access(a).is_some());
        assert!(c.access(b).is_none());
        assert!(c.access(d).is_some());
    }

    #[test]
    fn refill_resident_block_does_not_evict() {
        let mut c = tiny();
        c.fill(0x0, LineState::default());
        let st = LineState {
            dirty: true,
            ..Default::default()
        };
        assert!(c.fill(0x0, st).is_none());
        assert!(c.access(0x0).unwrap().dirty);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn eviction_reports_metadata() {
        let mut c = tiny();
        let pf = LineState {
            prefetched_by: Some(PrefetcherId(1)),
            ..Default::default()
        };
        c.fill(0x0000, pf);
        c.fill(0x0080, LineState::default());
        let ev = c.fill(0x0100, LineState::default()).unwrap();
        assert_eq!(ev.state.prefetched_by, Some(PrefetcherId(1)));
        assert_eq!(ev.block_addr, 0x0000);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0x40, LineState::default());
        assert!(c.invalidate(0x40).is_some());
        assert!(c.access(0x40).is_none());
        assert!(c.invalidate(0x40).is_none());
    }

    #[test]
    fn probe_does_not_perturb_lru() {
        let mut c = tiny();
        let a = 0x0000;
        let b = 0x0080;
        let d = 0x0100;
        c.fill(a, LineState::default());
        c.fill(b, LineState::default());
        // Probing a must NOT make it MRU.
        assert!(c.probe(a).is_some());
        let ev = c.fill(d, LineState::default()).unwrap();
        assert_eq!(ev.block_addr, a, "probe must not refresh LRU");
    }

    #[test]
    fn set_geometry() {
        let c = Cache::new(CacheConfig {
            bytes: 1024 * 1024,
            ways: 8,
            hit_latency: 15,
        });
        assert_eq!(c.config().sets(), 2048);
        assert_eq!(c.total_lines(), 16384);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        c.fill(0x0000, LineState::default()); // set 0
        c.fill(0x0040, LineState::default()); // set 1
        c.fill(0x0080, LineState::default()); // set 0
        c.fill(0x00C0, LineState::default()); // set 1
        assert_eq!(c.valid_lines(), 4);
        assert_eq!(c.evictions(), 0);
    }
}
