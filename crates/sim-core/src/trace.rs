//! Workload traces: recording (functional execution) and the record format
//! replayed by the timing engine.

use sim_mem::{Addr, SimMemory};

/// Kind of a trace operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A load of a 4-byte value.
    Load,
    /// A store of a 4-byte value.
    Store,
    /// `value` non-memory instructions (modelled as single-cycle ALU ops).
    Compute,
}

/// Sentinel meaning "no producing load" in [`TraceOp::dep`].
pub const NO_DEP: u32 = u32::MAX;

/// One record of a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Static instruction address (identifies the load for ECDP hints).
    pub pc: u32,
    /// Data address (loads/stores) or 0.
    pub addr: Addr,
    /// Store value, or instruction count for [`OpKind::Compute`].
    pub value: u32,
    /// Absolute trace index of the load that produces this op's *address*,
    /// or [`NO_DEP`]. A pointer chase is a chain of such dependences.
    pub dep: u32,
    /// Operation kind.
    pub kind: OpKind,
    /// True if this access dereferences a linked-data-structure pointer
    /// (used by the Figure 1 oracle experiment and the pointer-intensity
    /// classification).
    pub lds: bool,
}

/// An identifier for a recorded load, used to express address dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadId(pub(crate) u32);

/// A recorded workload: the initial memory image plus the operation stream.
///
/// The timing engine replays `ops` against a copy of `initial_memory`,
/// applying stores in program order, so block contents seen by the
/// content-directed prefetcher match functional execution.
pub struct Trace {
    /// Memory image at the start of the timed region (after setup).
    pub initial_memory: SimMemory,
    /// The operation stream.
    pub ops: Vec<TraceOp>,
    /// Total instruction count (memory ops + compute counts).
    pub instructions: u64,
}

impl Trace {
    /// Number of memory operations (loads + stores) in the trace.
    pub fn memory_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| o.kind != OpKind::Compute)
            .count()
    }
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("ops", &self.ops.len())
            .field("instructions", &self.instructions)
            .finish()
    }
}

/// A source of trace operations for the timing engine.
///
/// The engine indexes ops by absolute trace position but only ever looks
/// at a bounded span: from the instruction-window head to the dispatch
/// cursor. A resident [`Trace`] serves ops straight from its `Vec`
/// ([`ResidentOps`]); a streamed external trace
/// ([`crate::stream::ExternalTrace`]) keeps just that span buffered. The
/// engine is generic over this trait and monomorphizes identically for
/// both, so streamed replays are bit-identical to resident ones.
pub trait OpSource {
    /// Total number of ops in the trace.
    fn total_ops(&self) -> usize;

    /// Returns the op at absolute index `idx` (`0 <= idx < total_ops`).
    ///
    /// Callers only revisit indices within one instruction window of the
    /// highest index requested so far; implementations may drop anything
    /// older.
    fn op(&mut self, idx: usize) -> TraceOp;
}

/// [`OpSource`] over a fully materialized op slice — the zero-cost path
/// every existing resident-[`Trace`] run goes through.
#[derive(Debug)]
pub struct ResidentOps<'a>(pub &'a [TraceOp]);

impl OpSource for ResidentOps<'_> {
    #[inline]
    fn total_ops(&self) -> usize {
        self.0.len()
    }

    #[inline]
    fn op(&mut self, idx: usize) -> TraceOp {
        self.0[idx]
    }
}

/// Records a trace while a workload executes functionally.
///
/// The builder owns a [`SimMemory`]; the workload first populates it through
/// [`TraceBuilder::setup`] (untimed — building the data structures), then
/// issues its timed accesses through [`TraceBuilder::load`],
/// [`TraceBuilder::store`] and [`TraceBuilder::compute`].
pub struct TraceBuilder {
    mem: SimMemory,
    snapshot: Option<SimMemory>,
    ops: Vec<TraceOp>,
    instructions: u64,
    lds_mode: bool,
}

impl TraceBuilder {
    /// Creates a builder over `mem`.
    pub fn new(mem: SimMemory) -> Self {
        TraceBuilder {
            mem,
            snapshot: None,
            ops: Vec::new(),
            instructions: 0,
            lds_mode: false,
        }
    }

    /// Runs untimed setup code against the memory image. May be called
    /// multiple times, but only before the first timed operation.
    ///
    /// # Panics
    ///
    /// Panics if timed operations have already been recorded.
    pub fn setup(&mut self, f: impl FnOnce(&mut SimMemory)) {
        assert!(self.ops.is_empty(), "setup must precede timed operations");
        f(&mut self.mem);
    }

    /// Read-only view of the evolving memory image (for workload logic that
    /// needs to inspect memory without recording an access).
    pub fn memory(&self) -> &SimMemory {
        &self.mem
    }

    /// Marks subsequent loads/stores as LDS accesses until the matching
    /// [`TraceBuilder::lds_end`]. Equivalent to passing `lds = true`
    /// explicitly on each access.
    pub fn lds_begin(&mut self) {
        self.lds_mode = true;
    }

    /// Ends an [`TraceBuilder::lds_begin`] region.
    pub fn lds_end(&mut self) {
        self.lds_mode = false;
    }

    fn ensure_snapshot(&mut self) {
        if self.snapshot.is_none() {
            self.snapshot = Some(self.mem.clone());
        }
    }

    /// Records a 4-byte load at `addr` by instruction `pc`, whose *address*
    /// was produced by `dep` (the pointer-chase link). Returns the loaded
    /// value and this load's id for downstream dependences.
    pub fn load(&mut self, pc: u32, addr: Addr, dep: Option<LoadId>) -> (u32, LoadId) {
        self.ensure_snapshot();
        let value = self.mem.read_u32(addr);
        let id = LoadId(self.ops.len() as u32);
        self.ops.push(TraceOp {
            pc,
            addr,
            value: 0,
            dep: dep.map_or(NO_DEP, |d| d.0),
            kind: OpKind::Load,
            lds: self.lds_mode || dep.is_some(),
        });
        self.instructions += 1;
        (value, id)
    }

    /// Records a 4-byte store of `value` at `addr` by instruction `pc`.
    pub fn store(&mut self, pc: u32, addr: Addr, value: u32, dep: Option<LoadId>) {
        self.ensure_snapshot();
        self.mem.write_u32(addr, value);
        self.ops.push(TraceOp {
            pc,
            addr,
            value,
            dep: dep.map_or(NO_DEP, |d| d.0),
            kind: OpKind::Store,
            lds: self.lds_mode || dep.is_some(),
        });
        self.instructions += 1;
    }

    /// Records `count` non-memory instructions of work.
    ///
    /// Large counts are split into chunks of at most 64 instructions so a
    /// single record never dominates the 256-entry instruction window.
    pub fn compute(&mut self, count: u32) {
        if count == 0 {
            return;
        }
        self.ensure_snapshot();
        let mut left = count;
        while left > 0 {
            let chunk = left.min(64);
            self.ops.push(TraceOp {
                pc: 0,
                addr: 0,
                value: chunk,
                dep: NO_DEP,
                kind: OpKind::Compute,
                lds: false,
            });
            left -= chunk;
        }
        self.instructions += u64::from(count);
    }

    /// Number of timed operations recorded so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no timed operations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Finalises the trace.
    pub fn finish(self) -> Trace {
        let initial_memory = self.snapshot.unwrap_or(self.mem);
        Trace {
            initial_memory,
            ops: self.ops,
            instructions: self.instructions,
        }
    }
}

impl std::fmt::Debug for TraceBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuilder")
            .field("ops", &self.ops.len())
            .field("instructions", &self.instructions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_functional_value() {
        let mut mem = SimMemory::new();
        mem.write_u32(0x4000_0000, 1234);
        let mut tb = TraceBuilder::new(mem);
        let (v, _) = tb.load(1, 0x4000_0000, None);
        assert_eq!(v, 1234);
    }

    #[test]
    fn store_updates_functional_memory() {
        let mut tb = TraceBuilder::new(SimMemory::new());
        tb.store(1, 0x4000_0000, 7, None);
        let (v, _) = tb.load(2, 0x4000_0000, None);
        assert_eq!(v, 7);
    }

    #[test]
    fn snapshot_precedes_timed_stores() {
        let mut tb = TraceBuilder::new(SimMemory::new());
        tb.setup(|m| m.write_u32(0x100, 5));
        tb.store(1, 0x100, 9, None);
        let trace = tb.finish();
        // Initial memory has the setup value, not the timed store.
        assert_eq!(trace.initial_memory.read_u32(0x100), 5);
    }

    #[test]
    fn dependences_are_recorded() {
        let mut mem = SimMemory::new();
        mem.write_u32(0x4000_0000, 0x4000_0040);
        let mut tb = TraceBuilder::new(mem);
        let (p, id) = tb.load(1, 0x4000_0000, None);
        let (_, _) = tb.load(2, p, Some(id));
        let trace = tb.finish();
        assert_eq!(trace.ops[1].dep, 0);
        assert!(trace.ops[1].lds, "dependent load is an LDS access");
        assert_eq!(trace.ops[0].dep, NO_DEP);
    }

    #[test]
    fn compute_counts_instructions() {
        let mut tb = TraceBuilder::new(SimMemory::new());
        tb.compute(10);
        tb.compute(0); // no-op
        tb.load(1, 0, None);
        let trace = tb.finish();
        assert_eq!(trace.instructions, 11);
        assert_eq!(trace.ops.len(), 2);
        assert_eq!(trace.memory_ops(), 1);
    }

    #[test]
    #[should_panic(expected = "setup must precede")]
    fn setup_after_ops_panics() {
        let mut tb = TraceBuilder::new(SimMemory::new());
        tb.load(1, 0, None);
        tb.setup(|_| {});
    }

    #[test]
    fn lds_mode_marks_accesses() {
        let mut tb = TraceBuilder::new(SimMemory::new());
        tb.lds_begin();
        tb.load(1, 0x10, None);
        tb.lds_end();
        tb.load(2, 0x20, None);
        let t = tb.finish();
        assert!(t.ops[0].lds);
        assert!(!t.ops[1].lds);
    }
}
