//! Runtime paper-conformance invariants.
//!
//! The validate subsystem encodes the paper's accounting semantics as
//! machine-checked properties evaluated at every sampling-interval boundary
//! and once more at run end:
//!
//! * **Conservation** — the engine keeps two independent accounting paths
//!   per prefetcher ([`crate::RunStats`] and the feedback counters of
//!   §4.1); they must agree, and issued prefetches must decompose into
//!   used + unused-evicted + still-outstanding (exactly used +
//!   unused-evicted once the post-run drain resolves every line).
//! * **Bus occupancy** — cumulative bus busy-cycles (transfers × transfer
//!   cycles) can never exceed elapsed time by more than one in-flight
//!   transfer: the bus is a serial resource.
//! * **MSHR occupancy** — never exceeds the configured capacity.
//! * **Aggressiveness** — levels stay inside the paper's Table 2 range and
//!   every recorded transition moves at most one level in the direction of
//!   its decision (saturating at the ends).
//! * **Table 3 re-derivation** — every classified throttle transition is
//!   re-derived from its logged inputs with the shared
//!   [`TABLE4_THRESHOLDS`](crate::TABLE4_THRESHOLDS) const table and must
//!   reproduce the logged case and decision.
//!
//! Checks are read-only: a validated run produces bit-identical statistics
//! to an unvalidated one, and a violation surfaces as
//! [`SimError::InvariantViolation`] after the run instead of perturbing it.
//!
//! Activation is two-level. [`crate::Machine::set_validate`] (or
//! `SystemBuilder::validate` one layer up) opts a single run in at any
//! build. Compiling with the `validate` cargo feature additionally arms
//! [`ValidateConfig::paper`] for **every** run that did not choose its own
//! config, so the whole test suite executes under the invariants. Without
//! the feature and without an explicit opt-in the engine carries only a
//! null pointer check, exactly like the observability layer.

use crate::obs::ThrottleTransition;
use crate::prefetcher::Aggressiveness;
use crate::stats::RunStats;
use crate::throttling::{FeedbackCounters, ThrottleDecision, ThrottleThresholds};
use crate::SimError;

/// Which invariant families a [`RuntimeValidator`] asserts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidateConfig {
    /// Per-prefetcher conservation between `RunStats` and the feedback
    /// counters, and the issued = used + unused + outstanding decomposition.
    pub conservation: bool,
    /// Bus busy-cycles bounded by elapsed cycles.
    pub bus: bool,
    /// MSHR occupancy bounded by capacity.
    pub mshr: bool,
    /// Aggressiveness levels in Table 2 range and transitions single-step.
    pub aggressiveness: bool,
    /// Re-derive each classified Table 3 transition from its logged inputs.
    pub rederive_table3: bool,
    /// Thresholds used for the Table 3 re-derivation.
    pub thresholds: ThrottleThresholds,
}

impl ValidateConfig {
    /// Every check on, with the paper's Table 4 thresholds.
    pub fn paper() -> Self {
        ValidateConfig {
            conservation: true,
            bus: true,
            mshr: true,
            aggressiveness: true,
            rederive_table3: true,
            thresholds: ThrottleThresholds::default(),
        }
    }

    /// Every check off — an explicit opt-out that beats the `validate`
    /// cargo feature's suite-wide default.
    pub fn disabled() -> Self {
        ValidateConfig {
            conservation: false,
            bus: false,
            mshr: false,
            aggressiveness: false,
            rederive_table3: false,
            thresholds: ThrottleThresholds::default(),
        }
    }

    /// True if at least one check is enabled.
    pub fn any(&self) -> bool {
        self.conservation || self.bus || self.mshr || self.aggressiveness || self.rederive_table3
    }
}

impl Default for ValidateConfig {
    fn default() -> Self {
        ValidateConfig::paper()
    }
}

/// At most this many violation messages are kept verbatim; further
/// violations only bump the count (a broken invariant usually fires every
/// interval, and one message per family is enough to debug it).
const MAX_RECORDED: usize = 16;

/// Everything the validator sees at one interval boundary. All fields are
/// read-only views of engine state *after* the throttle decisions of this
/// interval have been applied.
pub struct IntervalCheck<'a> {
    /// 0-based interval index.
    pub interval: u64,
    /// Cycle at which the interval closed.
    pub cycle: u64,
    /// Per-prefetcher feedback counters (lifetime totals are live).
    pub counters: &'a [FeedbackCounters],
    /// The core's live statistics.
    pub stats: &'a RunStats,
    /// MSHRs currently allocated.
    pub mshr_occupied: u32,
    /// Configured MSHR capacity.
    pub mshr_capacity: u32,
    /// Cumulative bus transfers attributed to this core.
    pub bus_transfers: u64,
    /// Cycles one transfer occupies the bus.
    pub bus_transfer_cycles: u64,
    /// How far the transfer counter may lead the clock (transfers are
    /// counted at scheduling time; see
    /// [`crate::Dram::bus_busy_slack`]).
    pub bus_busy_slack: u64,
    /// The throttle transitions recorded at this boundary (one per
    /// prefetcher).
    pub transitions: &'a [ThrottleTransition],
}

/// Re-derives one classified throttle transition from its logged inputs
/// with `thresholds`, returning a description of the mismatch if the
/// logged case or decision disagrees. Transitions with `case == 0`
/// (unclassifying policies) are skipped.
///
/// This is the same code path the bench-level conformance suite runs over
/// a recorded decision-trace ring, kept here so both consumers share it.
pub fn rederive_transition(
    t: &ThrottleTransition,
    thresholds: &ThrottleThresholds,
) -> Result<(), String> {
    if t.case == 0 {
        return Ok(());
    }
    let (decision, case) = thresholds.classify(t.coverage, t.accuracy, t.rival_coverage);
    if decision != t.decision || case != t.case {
        return Err(format!(
            "table3 re-derivation mismatch: logged case {} decision {:?} but inputs \
             (cov {:.6}, acc {:.6}, rival {:.6}) derive case {} decision {:?}",
            t.case, t.decision, t.coverage, t.accuracy, t.rival_coverage, case, decision
        ));
    }
    Ok(())
}

/// Checks that a transition moves at most one level in the direction of
/// its decision, saturating at the Table 2 range ends.
pub fn check_transition_step(t: &ThrottleTransition) -> Result<(), String> {
    let expected = match t.decision {
        ThrottleDecision::Up => t.from_level.up(),
        ThrottleDecision::Down => t.from_level.down(),
        ThrottleDecision::Keep => t.from_level,
    };
    if t.to_level != expected {
        return Err(format!(
            "aggressiveness step mismatch: {:?} from {:?} must land on {:?}, not {:?}",
            t.decision, t.from_level, expected, t.to_level
        ));
    }
    if t.from_level.index() >= Aggressiveness::ALL.len()
        || t.to_level.index() >= Aggressiveness::ALL.len()
    {
        return Err(format!(
            "aggressiveness level outside Table 2 range: {:?} -> {:?}",
            t.from_level, t.to_level
        ));
    }
    Ok(())
}

/// Collects invariant violations over one run.
#[derive(Debug)]
pub struct RuntimeValidator {
    cfg: ValidateConfig,
    violations: Vec<String>,
    total: u64,
}

impl RuntimeValidator {
    /// A validator asserting the checks enabled in `cfg`.
    pub fn new(cfg: ValidateConfig) -> Self {
        RuntimeValidator {
            cfg,
            violations: Vec::new(),
            total: 0,
        }
    }

    fn record(&mut self, msg: String) {
        self.total += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(msg);
        }
    }

    /// Violations recorded so far (capped; see `total_violations`).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Total number of violations, including ones past the recording cap.
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// Serializes the violations accumulated so far (warm-state
    /// checkpointing). The check configuration is *not* captured — a forked
    /// run keeps its own validator's configuration.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.u64(self.violations.len() as u64);
        for v in &self.violations {
            w.str(v);
        }
        w.u64(self.total);
    }

    /// Restores state saved by [`RuntimeValidator::save_state`], keeping
    /// this validator's configuration.
    pub(crate) fn restore_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        let n = r.len_prefix()?;
        if n > MAX_RECORDED {
            return Err(crate::snapshot::SnapshotError::Malformed(format!(
                "{n} recorded violations"
            )));
        }
        self.violations.clear();
        for _ in 0..n {
            self.violations.push(r.str()?);
        }
        self.total = r.u64()?;
        Ok(())
    }

    /// Runs the interval-boundary checks.
    pub fn check_interval(&mut self, view: &IntervalCheck<'_>) {
        let at = format!("interval {} cycle {}", view.interval, view.cycle);
        if self.cfg.conservation {
            for (i, (c, s)) in view
                .counters
                .iter()
                .zip(view.stats.prefetchers.iter())
                .enumerate()
            {
                // The two accounting paths must agree on lifetime totals.
                for (name, a, b) in [
                    ("issued", s.issued, c.total_prefetched),
                    ("used", s.used, c.total_used),
                    ("late", s.late, c.total_late),
                    ("pollution", s.pollution, c.total_pollution),
                ] {
                    if a != b {
                        self.record(format!(
                            "{at}: prefetcher {i} {name} diverges: stats {a} vs counters {b}"
                        ));
                    }
                }
                if s.late > s.used || s.used + s.unused_evicted > s.issued {
                    self.record(format!(
                        "{at}: prefetcher {i} conservation broken: issued {} used {} \
                         late {} unused_evicted {}",
                        s.issued, s.used, s.late, s.unused_evicted
                    ));
                }
            }
        }
        if self.cfg.bus {
            // The bus is serial: cumulative busy-cycles can lead the clock
            // only by the scheduled-but-unfinished backlog.
            let busy = view.bus_transfers * view.bus_transfer_cycles;
            if busy > view.cycle + view.bus_busy_slack {
                self.record(format!(
                    "{at}: bus busy-cycles {busy} exceed elapsed {} + backlog slack {}",
                    view.cycle, view.bus_busy_slack
                ));
            }
        }
        if self.cfg.mshr && view.mshr_occupied > view.mshr_capacity {
            self.record(format!(
                "{at}: MSHR occupancy {} exceeds capacity {}",
                view.mshr_occupied, view.mshr_capacity
            ));
        }
        for t in view.transitions {
            if self.cfg.aggressiveness {
                if let Err(e) = check_transition_step(t) {
                    self.record(format!("{at}: prefetcher {}: {e}", t.prefetcher));
                }
            }
            if self.cfg.rederive_table3 {
                if let Err(e) = rederive_transition(t, &self.cfg.thresholds) {
                    self.record(format!("{at}: prefetcher {}: {e}", t.prefetcher));
                }
            }
        }
    }

    /// Runs the end-of-run checks (after the drain loop and the
    /// unused-resident resolution) and converts any violations into the
    /// run's error.
    pub fn finish(
        mut self,
        stats: &RunStats,
        final_cycle: u64,
        bus_transfers: u64,
        bus_transfer_cycles: u64,
    ) -> Result<(), SimError> {
        if self.cfg.conservation {
            for (i, s) in stats.prefetchers.iter().enumerate() {
                // Post-drain, every issued prefetch has been filled and
                // every fill was either demanded or resolved unused: the
                // decomposition is exact.
                if s.used + s.unused_evicted != s.issued {
                    self.record(format!(
                        "run end: prefetcher {i} issued {} != used {} + unused_evicted {}",
                        s.issued, s.used, s.unused_evicted
                    ));
                }
            }
        }
        if self.cfg.bus {
            // Post-drain the DRAM is empty, so the bound is exact: every
            // counted transfer's bus slot lies in the past.
            let busy = bus_transfers * bus_transfer_cycles;
            if busy > final_cycle {
                self.record(format!(
                    "run end: bus busy-cycles {busy} exceed elapsed {final_cycle}"
                ));
            }
        }
        self.into_error()
    }

    /// Converts the violations accumulated so far into the run's error
    /// (used directly by consumers that cannot run the end-of-run exact
    /// checks, e.g. the multi-core driver whose per-core statistics are
    /// snapshotted mid-flight).
    pub fn into_error(self) -> Result<(), SimError> {
        if self.total == 0 {
            return Ok(());
        }
        let mut msg = format!(
            "{} paper-conformance invariant violation(s): {}",
            self.total,
            self.violations.join("; ")
        );
        if self.total as usize > self.violations.len() {
            msg.push_str("; ...");
        }
        Err(SimError::InvariantViolation(msg))
    }
}

/// The engine's default validator: armed with [`ValidateConfig::paper`]
/// when the `validate` cargo feature is on, absent otherwise.
pub(crate) fn default_runtime_validator() -> Option<Box<RuntimeValidator>> {
    #[cfg(feature = "validate")]
    {
        Some(Box::new(RuntimeValidator::new(ValidateConfig::paper())))
    }
    #[cfg(not(feature = "validate"))]
    {
        None
    }
}

/// Builds the validator for a run given an explicit opt-in (which beats
/// the feature default; a config with nothing enabled disables checks).
pub(crate) fn runtime_validator_for(
    explicit: Option<&ValidateConfig>,
) -> Option<Box<RuntimeValidator>> {
    match explicit {
        Some(cfg) if cfg.any() => Some(Box::new(RuntimeValidator::new(*cfg))),
        Some(_) => None,
        None => default_runtime_validator(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::PrefetcherStats;

    fn transition(case: u8, cov: f64, acc: f64, rival: f64) -> ThrottleTransition {
        let t = ThrottleThresholds::default();
        let (decision, derived) = t.classify(cov, acc, rival);
        assert_eq!(derived, case, "test fixture must pick matching inputs");
        let from = Aggressiveness::Moderate;
        let to = match decision {
            ThrottleDecision::Up => from.up(),
            ThrottleDecision::Down => from.down(),
            ThrottleDecision::Keep => from,
        };
        ThrottleTransition {
            interval: 0,
            prefetcher: 0,
            case,
            accuracy: acc,
            coverage: cov,
            rival_coverage: rival,
            decision,
            from_level: from,
            to_level: to,
        }
    }

    #[test]
    fn rederivation_accepts_consistent_transitions() {
        let th = ThrottleThresholds::default();
        for (case, cov, acc, rival) in [
            (1, 0.5, 0.0, 0.0),
            (2, 0.1, 0.2, 0.0),
            (3, 0.1, 0.5, 0.1),
            (4, 0.1, 0.5, 0.6),
            (5, 0.1, 0.9, 0.6),
        ] {
            let t = transition(case, cov, acc, rival);
            assert!(rederive_transition(&t, &th).is_ok());
            assert!(check_transition_step(&t).is_ok());
        }
    }

    #[test]
    fn rederivation_rejects_wrong_case_or_decision() {
        let th = ThrottleThresholds::default();
        let mut t = transition(2, 0.1, 0.2, 0.0);
        t.case = 3;
        assert!(rederive_transition(&t, &th).is_err());
        let mut t = transition(2, 0.1, 0.2, 0.0);
        t.decision = ThrottleDecision::Up;
        assert!(rederive_transition(&t, &th).is_err());
    }

    #[test]
    fn rederivation_detects_broken_thresholds() {
        // A transition logged under the paper thresholds fails to re-derive
        // under deliberately shifted ones — the drift detector.
        let broken = ThrottleThresholds {
            coverage: 0.5,
            ..ThrottleThresholds::default()
        };
        let t = transition(1, 0.3, 0.0, 0.0);
        assert!(rederive_transition(&t, &broken).is_err());
    }

    #[test]
    fn unclassified_transitions_are_skipped() {
        let th = ThrottleThresholds::default();
        let mut t = transition(1, 0.5, 0.0, 0.0);
        t.case = 0;
        t.decision = ThrottleDecision::Down; // would mismatch if checked
        assert!(rederive_transition(&t, &th).is_ok());
    }

    #[test]
    fn transition_step_rejects_level_jumps() {
        let mut t = transition(1, 0.5, 0.0, 0.0);
        t.from_level = Aggressiveness::VeryConservative;
        t.to_level = Aggressiveness::Aggressive;
        assert!(check_transition_step(&t).is_err());
    }

    #[test]
    fn saturated_up_keeps_the_top_level() {
        let mut t = transition(1, 0.5, 0.0, 0.0);
        t.from_level = Aggressiveness::Aggressive;
        t.to_level = Aggressiveness::Aggressive;
        assert!(check_transition_step(&t).is_ok());
    }

    fn consistent_view<'a>(
        counters: &'a [FeedbackCounters],
        stats: &'a RunStats,
    ) -> IntervalCheck<'a> {
        IntervalCheck {
            interval: 0,
            cycle: 100_000,
            counters,
            stats,
            mshr_occupied: 4,
            mshr_capacity: 32,
            bus_transfers: 10,
            bus_transfer_cycles: 40,
            bus_busy_slack: 1640,
            transitions: &[],
        }
    }

    #[test]
    fn consistent_accounting_passes() {
        let mut c = FeedbackCounters::default();
        for _ in 0..8 {
            c.record_issued();
        }
        c.record_used(false);
        c.record_used(true);
        let stats = RunStats {
            prefetchers: vec![PrefetcherStats {
                issued: 8,
                used: 2,
                late: 1,
                unused_evicted: 3,
                ..Default::default()
            }],
            ..Default::default()
        };
        let counters = vec![c];
        let mut v = RuntimeValidator::new(ValidateConfig::paper());
        v.check_interval(&consistent_view(&counters, &stats));
        assert_eq!(v.total_violations(), 0, "{:?}", v.violations());
    }

    #[test]
    fn diverging_accounting_paths_are_caught() {
        let mut c = FeedbackCounters::default();
        c.record_issued();
        let stats = RunStats {
            prefetchers: vec![PrefetcherStats {
                issued: 2, // counters say 1
                ..Default::default()
            }],
            ..Default::default()
        };
        let counters = vec![c];
        let mut v = RuntimeValidator::new(ValidateConfig::paper());
        v.check_interval(&consistent_view(&counters, &stats));
        assert_eq!(v.total_violations(), 1);
        assert!(v.violations()[0].contains("issued diverges"));
    }

    #[test]
    fn mshr_overflow_and_bus_overrun_are_caught() {
        let stats = RunStats::default();
        let counters: Vec<FeedbackCounters> = Vec::new();
        let mut v = RuntimeValidator::new(ValidateConfig::paper());
        let mut view = consistent_view(&counters, &stats);
        view.mshr_occupied = 33;
        view.bus_transfers = 10_000; // 400k busy-cycles in a 100k window
        v.check_interval(&view);
        assert_eq!(v.total_violations(), 2);
    }

    #[test]
    fn finish_reports_exact_conservation_breaks() {
        let stats = RunStats {
            prefetchers: vec![PrefetcherStats {
                issued: 10,
                used: 4,
                unused_evicted: 5, // one prefetch unaccounted for
                ..Default::default()
            }],
            ..Default::default()
        };
        let v = RuntimeValidator::new(ValidateConfig::paper());
        let err = v.finish(&stats, 1_000_000, 0, 40).expect_err("must fail");
        assert_eq!(err.kind(), "invariant");
    }

    #[test]
    fn finish_is_clean_on_balanced_books() {
        let stats = RunStats {
            prefetchers: vec![PrefetcherStats {
                issued: 10,
                used: 4,
                unused_evicted: 6,
                ..Default::default()
            }],
            ..Default::default()
        };
        let v = RuntimeValidator::new(ValidateConfig::paper());
        assert!(v.finish(&stats, 1_000_000, 100, 40).is_ok());
    }

    #[test]
    fn violation_messages_are_capped_but_counted() {
        let mut v = RuntimeValidator::new(ValidateConfig::paper());
        for i in 0..100 {
            v.record(format!("violation {i}"));
        }
        assert_eq!(v.violations().len(), MAX_RECORDED);
        assert_eq!(v.total_violations(), 100);
    }

    #[test]
    fn disabled_config_checks_nothing() {
        assert!(!ValidateConfig::disabled().any());
        assert!(ValidateConfig::paper().any());
        let stats = RunStats {
            prefetchers: vec![PrefetcherStats {
                issued: 10,
                ..Default::default()
            }],
            ..Default::default()
        };
        let v = RuntimeValidator::new(ValidateConfig::disabled());
        assert!(v.finish(&stats, 0, 1_000_000, 40).is_ok());
    }
}
