//! Streaming ingestion of externally recorded memory-access traces.
//!
//! The `ECDPXTRC` container carries the same information as a resident
//! [`Trace`], but framed so the op stream can be replayed *without ever
//! being fully resident*: a header (magic, version, instruction count),
//! the sparse non-zero 4 KB pages of the initial memory image, and then a
//! flat run of fixed-width op records. [`ExternalTrace::open`] validates
//! the complete framing in one bounded-memory pass (computing the
//! provenance content hash as a side effect), and replay pulls records
//! through [`StreamedOps`] — an [`OpSource`] holding only the bounded
//! span of ops the engine's instruction window can still reference.
//!
//! Wire layout (all integers little-endian):
//!
//! ```text
//! magic        8 bytes  b"ECDPXTRC"
//! version      u32      currently 1
//! instructions u64      sum of per-op instruction counts
//! page_count   u32
//! pages        page_count × (index u32, 4096 raw bytes)
//! op_count     u64
//! records      op_count × 18 bytes:
//!              kind u8 (0 load, 1 store, 2 compute), lds u8 (0/1),
//!              pc u32, addr u32, value u32, dep u32
//! ```
//!
//! A text form of the same op stream exists for hand-written tests; it
//! lives in the `workloads` loader (which owns line/column diagnostics)
//! and converts to this binary framing via [`XtraceWriter`].

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use sim_mem::SimMemory;

use crate::trace::{OpKind, OpSource, Trace, TraceOp, NO_DEP};

/// Magic bytes opening every external trace file.
pub const XTRACE_MAGIC: &[u8; 8] = b"ECDPXTRC";
/// Current wire version.
pub const XTRACE_VERSION: u32 = 1;

const PAGE_BYTES: usize = 4096;
const RECORD_BYTES: usize = 18;
/// Records fetched per refill of the streaming buffer.
pub const STREAM_CHUNK_OPS: usize = 1024;
/// Ops kept buffered *behind* the read frontier. The engine never
/// revisits an index more than one instruction window behind its
/// dispatch cursor, so this bounds the resident span for any
/// configuration with `window_size <= STREAM_LOOKBACK_OPS`.
pub const STREAM_LOOKBACK_OPS: usize = 4096;

/// Failure opening or validating an external trace file.
#[derive(Debug)]
pub enum XtraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid file; the message names the offending record
    /// and field.
    Malformed(String),
}

impl std::fmt::Display for XtraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XtraceError::Io(e) => write!(f, "i/o error: {e}"),
            XtraceError::Malformed(m) => write!(f, "malformed external trace: {m}"),
        }
    }
}

impl std::error::Error for XtraceError {}

impl From<io::Error> for XtraceError {
    fn from(e: io::Error) -> Self {
        // A short read while parsing a sized structure is a framing error,
        // not an environment failure.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            XtraceError::Malformed("file truncated mid-structure".to_string())
        } else {
            XtraceError::Io(e)
        }
    }
}

/// FNV-1a over the raw file bytes — the provenance content hash recorded
/// in run manifests so result-store hits and `--resume` can prove they
/// matched the same trace.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Reader that folds every consumed byte into the content hash.
struct HashingReader<R> {
    inner: R,
    fnv: Fnv,
    /// Bytes consumed so far (for error offsets).
    offset: u64,
}

impl<R: Read> HashingReader<R> {
    fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_exact(buf)?;
        self.fnv.update(buf);
        self.offset += buf.len() as u64;
        Ok(())
    }

    fn u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
}

fn decode_record(bytes: &[u8]) -> TraceOp {
    let kind = match bytes[0] {
        0 => OpKind::Load,
        1 => OpKind::Store,
        _ => OpKind::Compute,
    };
    let u32_at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().expect("4 bytes"));
    TraceOp {
        pc: u32_at(2),
        addr: u32_at(6),
        value: u32_at(10),
        dep: u32_at(14),
        kind,
        lds: bytes[1] != 0,
    }
}

fn encode_record(op: &TraceOp, out: &mut [u8; RECORD_BYTES]) {
    out[0] = match op.kind {
        OpKind::Load => 0,
        OpKind::Store => 1,
        OpKind::Compute => 2,
    };
    out[1] = u8::from(op.lds);
    out[2..6].copy_from_slice(&op.pc.to_le_bytes());
    out[6..10].copy_from_slice(&op.addr.to_le_bytes());
    out[10..14].copy_from_slice(&op.value.to_le_bytes());
    out[14..18].copy_from_slice(&op.dep.to_le_bytes());
}

/// Instruction count an op contributes (compute records carry theirs in
/// `value`; memory ops are one instruction).
fn instrs_of(op: &TraceOp) -> u64 {
    match op.kind {
        OpKind::Compute => u64::from(op.value),
        _ => 1,
    }
}

/// Validates one record and returns its instruction contribution.
fn check_record(bytes: &[u8], idx: u64) -> Result<u64, XtraceError> {
    let bad = |what: String| Err(XtraceError::Malformed(format!("record {idx}: {what}")));
    if bytes[0] > 2 {
        return bad(format!(
            "field `kind` is {}, expected 0 (load), 1 (store) or 2 (compute)",
            bytes[0]
        ));
    }
    if bytes[1] > 1 {
        return bad(format!("field `lds` is {}, expected 0 or 1", bytes[1]));
    }
    let op = decode_record(bytes);
    match op.kind {
        OpKind::Compute => {
            if op.value == 0 {
                // A zero-instruction compute op would stall the dispatch
                // budget loop without making progress.
                return bad("field `value` of a compute record must be >= 1".to_string());
            }
            if op.lds {
                return bad("field `lds` must be 0 on a compute record".to_string());
            }
            if op.dep != NO_DEP {
                return bad(format!(
                    "field `dep` must be 0xffffffff on a compute record, got {}",
                    op.dep
                ));
            }
        }
        OpKind::Load | OpKind::Store => {
            if op.dep != NO_DEP && u64::from(op.dep) >= idx {
                return bad(format!("field `dep` ({}) must name an earlier op", op.dep));
            }
        }
    }
    Ok(instrs_of(&op))
}

/// Bounded-window [`OpSource`] over the record section of an open
/// `ECDPXTRC` file.
///
/// Keeps at most [`STREAM_LOOKBACK_OPS`] + [`STREAM_CHUNK_OPS`] decoded
/// ops resident regardless of trace length. The file was fully validated
/// at [`ExternalTrace::open`] time, so mid-replay read failures (the file
/// changed or vanished underneath the run) panic with the path rather
/// than returning an error through the hot path.
pub struct StreamedOps {
    file: BufReader<File>,
    path: PathBuf,
    data_start: u64,
    total: usize,
    /// Absolute index of `buf[0]`.
    base: usize,
    buf: Vec<TraceOp>,
    high_water: usize,
}

impl StreamedOps {
    fn refill(&mut self) {
        // Drop ops the engine can no longer reference before buffering
        // more, keeping the resident span bounded.
        if self.buf.len() >= STREAM_LOOKBACK_OPS + STREAM_CHUNK_OPS {
            let drop = self.buf.len() - STREAM_LOOKBACK_OPS;
            self.buf.drain(..drop);
            self.base += drop;
        }
        let next = self.base + self.buf.len();
        let want = STREAM_CHUNK_OPS.min(self.total - next);
        debug_assert!(want > 0, "refill past the end of the trace");
        let mut bytes = vec![0u8; want * RECORD_BYTES];
        self.file.read_exact(&mut bytes).unwrap_or_else(|e| {
            panic!(
                "external trace {} failed mid-stream at op {next}: {e}",
                self.path.display()
            )
        });
        for rec in bytes.chunks_exact(RECORD_BYTES) {
            self.buf.push(decode_record(rec));
        }
        self.high_water = self.high_water.max(self.buf.len());
    }

    fn rewind(&mut self) {
        self.file
            .seek(SeekFrom::Start(self.data_start))
            .unwrap_or_else(|e| {
                panic!("external trace {} rewind failed: {e}", self.path.display())
            });
        self.buf.clear();
        self.base = 0;
    }
}

impl OpSource for StreamedOps {
    fn total_ops(&self) -> usize {
        self.total
    }

    fn op(&mut self, idx: usize) -> TraceOp {
        assert!(idx < self.total, "op index {idx} past trace end");
        assert!(
            idx >= self.base,
            "streamed trace lookback exceeded (op {idx}, window base {}): \
             the instruction window is larger than STREAM_LOOKBACK_OPS ({})",
            self.base,
            STREAM_LOOKBACK_OPS
        );
        while idx >= self.base + self.buf.len() {
            self.refill();
        }
        self.buf[idx - self.base]
    }
}

impl std::fmt::Debug for StreamedOps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamedOps")
            .field("path", &self.path)
            .field("total", &self.total)
            .field("base", &self.base)
            .field("buffered", &self.buf.len())
            .finish()
    }
}

/// An opened, validated external trace: the resident initial memory image
/// plus a bounded-window stream over the op records.
///
/// Replay with [`crate::Machine::run_streamed`]; results are
/// bit-identical to materializing the same ops in a resident [`Trace`].
pub struct ExternalTrace {
    initial_memory: SimMemory,
    instructions: u64,
    content_hash: u64,
    ops: StreamedOps,
}

impl ExternalTrace {
    /// Opens and validates an `ECDPXTRC` file.
    ///
    /// Validation is a single streaming pass — magic, version, page
    /// framing, every op record (field ranges, dependence ordering), the
    /// header instruction count against the records' sum, and exact
    /// end-of-file — so a malformed file is rejected up front with a
    /// record-level diagnostic and replay can treat the stream as
    /// trusted. Peak memory is bounded regardless of file size. The
    /// FNV-1a hash of the whole file is computed during the same pass.
    ///
    /// # Errors
    ///
    /// [`XtraceError::Malformed`] for framing/semantic violations,
    /// [`XtraceError::Io`] for environment failures.
    pub fn open(path: impl AsRef<Path>) -> Result<ExternalTrace, XtraceError> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let mut r = HashingReader {
            inner: BufReader::new(file),
            fnv: Fnv::new(),
            offset: 0,
        };

        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != XTRACE_MAGIC {
            return Err(XtraceError::Malformed(
                "bad magic (not an ECDPXTRC external trace)".to_string(),
            ));
        }
        let version = r.u32()?;
        if version != XTRACE_VERSION {
            return Err(XtraceError::Malformed(format!(
                "unsupported version {version}, this build reads version {XTRACE_VERSION}"
            )));
        }
        let instructions = r.u64()?;

        let mut initial_memory = SimMemory::new();
        let page_count = r.u32()?;
        let mut page = vec![0u8; PAGE_BYTES];
        for p in 0..page_count {
            let idx = r.u32()?;
            let base = idx.checked_mul(PAGE_BYTES as u32).ok_or_else(|| {
                XtraceError::Malformed(format!("page {p}: field `index` {idx} overflows"))
            })?;
            r.read_exact(&mut page)?;
            for (i, &b) in page.iter().enumerate() {
                if b != 0 {
                    initial_memory.write_u8(base + i as u32, b);
                }
            }
        }

        let op_count = r.u64()?;
        let data_start = r.offset;
        let mut summed: u64 = 0;
        let mut bytes = vec![0u8; RECORD_BYTES * STREAM_CHUNK_OPS];
        let mut done: u64 = 0;
        while done < op_count {
            let n = STREAM_CHUNK_OPS.min((op_count - done) as usize);
            let chunk = &mut bytes[..n * RECORD_BYTES];
            r.read_exact(chunk)?;
            for (k, rec) in chunk.chunks_exact(RECORD_BYTES).enumerate() {
                summed += check_record(rec, done + k as u64)?;
            }
            done += n as u64;
        }
        if summed != instructions {
            return Err(XtraceError::Malformed(format!(
                "header field `instructions` is {instructions}, records sum to {summed}"
            )));
        }
        let mut tail = [0u8; 1];
        match r.inner.read(&mut tail)? {
            0 => {}
            _ => {
                return Err(XtraceError::Malformed(format!(
                    "trailing bytes after the final record (op_count says {op_count})"
                )))
            }
        }
        let content_hash = r.fnv.0;

        let mut file = r.inner;
        file.seek(SeekFrom::Start(data_start))?;
        Ok(ExternalTrace {
            initial_memory,
            instructions,
            content_hash,
            ops: StreamedOps {
                file,
                path,
                data_start,
                total: op_count as usize,
                base: 0,
                buf: Vec::new(),
                high_water: 0,
            },
        })
    }

    /// The initial memory image (resident; sparse pages only).
    pub fn initial_memory(&self) -> &SimMemory {
        &self.initial_memory
    }

    /// Total instruction count, as validated against the records.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Number of op records.
    pub fn op_count(&self) -> usize {
        self.ops.total
    }

    /// FNV-1a hash of the whole file — the provenance identity recorded
    /// in manifests and the result store.
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// High-water mark of decoded ops resident in the streaming buffer
    /// (bounded by [`STREAM_LOOKBACK_OPS`] + [`STREAM_CHUNK_OPS`]
    /// regardless of trace length).
    pub fn max_resident_ops(&self) -> usize {
        self.ops.high_water
    }

    /// Splits into the parts a replay needs, rewinding the op stream to
    /// the first record.
    pub(crate) fn replay_parts(&mut self) -> (&SimMemory, &mut StreamedOps) {
        self.ops.rewind();
        (&self.initial_memory, &mut self.ops)
    }
}

impl std::fmt::Debug for ExternalTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExternalTrace")
            .field("ops", &self.ops.total)
            .field("instructions", &self.instructions)
            .field("content_hash", &format_args!("{:#018x}", self.content_hash))
            .finish()
    }
}

/// Incremental `ECDPXTRC` writer.
///
/// Writes the header and memory image up front with placeholder counts,
/// appends op records one at a time, and patches the instruction and op
/// counts on [`XtraceWriter::finish`] — so arbitrarily long traces can be
/// produced without ever materializing the op stream.
pub struct XtraceWriter<W: Write + Seek> {
    w: BufWriter<W>,
    instructions: u64,
    op_count: u64,
    count_pos: u64,
}

/// Byte offset of the `instructions` header field.
const INSTRUCTIONS_POS: u64 = 12;

impl<W: Write + Seek> XtraceWriter<W> {
    /// Starts a trace file: header, memory image, placeholder counts.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn new(w: W, initial_memory: &SimMemory) -> io::Result<Self> {
        let mut w = BufWriter::new(w);
        w.write_all(XTRACE_MAGIC)?;
        w.write_all(&XTRACE_VERSION.to_le_bytes())?;
        w.write_all(&0u64.to_le_bytes())?; // instructions, patched in finish()
        let mut pages: Vec<(u32, [u8; PAGE_BYTES])> = Vec::new();
        for page_idx in initial_memory.resident_page_indices() {
            let base = page_idx * PAGE_BYTES as u32;
            let mut buf = [0u8; PAGE_BYTES];
            for (i, b) in buf.iter_mut().enumerate() {
                *b = initial_memory.read_u8(base + i as u32);
            }
            if buf.iter().any(|&b| b != 0) {
                pages.push((page_idx, buf));
            }
        }
        w.write_all(&(pages.len() as u32).to_le_bytes())?;
        for (idx, buf) in &pages {
            w.write_all(&idx.to_le_bytes())?;
            w.write_all(buf)?;
        }
        let count_pos = 8 + 4 + 8 + 4 + pages.len() as u64 * (4 + PAGE_BYTES as u64);
        w.write_all(&0u64.to_le_bytes())?; // op_count, patched in finish()
        Ok(XtraceWriter {
            w,
            instructions: 0,
            op_count: 0,
            count_pos,
        })
    }

    /// Appends one op record.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn push(&mut self, op: &TraceOp) -> io::Result<()> {
        let mut rec = [0u8; RECORD_BYTES];
        encode_record(op, &mut rec);
        self.w.write_all(&rec)?;
        self.op_count += 1;
        self.instructions += instrs_of(op);
        Ok(())
    }

    /// Patches the header counts and flushes.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn finish(self) -> io::Result<W> {
        let mut w = self
            .w
            .into_inner()
            .map_err(io::IntoInnerError::into_error)?;
        w.seek(SeekFrom::Start(INSTRUCTIONS_POS))?;
        w.write_all(&self.instructions.to_le_bytes())?;
        w.seek(SeekFrom::Start(self.count_pos))?;
        w.write_all(&self.op_count.to_le_bytes())?;
        w.flush()?;
        Ok(w)
    }
}

/// Serializes a resident [`Trace`] into the external streaming format
/// (the fixture path for tests and for exporting built-in workloads).
///
/// # Errors
///
/// Propagates writer I/O errors.
pub fn write_external(trace: &Trace, w: impl Write + Seek) -> io::Result<()> {
    let mut xw = XtraceWriter::new(w, &trace.initial_memory)?;
    for op in &trace.ops {
        xw.push(op)?;
    }
    xw.finish()?;
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use crate::{Machine, MachineConfig};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ecdp-stream-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    fn chase_trace(n: u32) -> Trace {
        let mut tb = TraceBuilder::new(SimMemory::new());
        let base = sim_mem::layout::HEAP_BASE;
        let stride = 4096u32;
        tb.setup(|m| {
            for i in 0..n {
                let next = if i + 1 < n {
                    base + (i + 1) * stride
                } else {
                    0
                };
                m.write_u32(base + i * stride, next);
            }
        });
        let (mut cur, mut dep) = (base, None);
        while cur != 0 {
            let (next, id) = tb.load(0x400, cur, dep);
            tb.compute(3);
            cur = next;
            dep = Some(id);
        }
        tb.finish()
    }

    fn write_file(trace: &Trace, name: &str) -> PathBuf {
        let path = tmp(name);
        write_external(trace, File::create(&path).unwrap()).unwrap();
        path
    }

    #[test]
    fn streamed_replay_is_bit_identical_to_resident() {
        let trace = chase_trace(300);
        let path = write_file(&trace, "identical.xtrc");
        let resident = Machine::new(MachineConfig::default()).run(&trace).unwrap();
        let mut xt = ExternalTrace::open(&path).unwrap();
        assert_eq!(xt.op_count(), trace.ops.len());
        assert_eq!(xt.instructions(), trace.instructions);
        let streamed = Machine::new(MachineConfig::default())
            .run_streamed(&mut xt)
            .unwrap();
        assert_eq!(resident, streamed, "streamed replay must be bit-identical");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn reruns_of_the_same_stream_match() {
        let trace = chase_trace(150);
        let path = write_file(&trace, "rerun.xtrc");
        let mut xt = ExternalTrace::open(&path).unwrap();
        let a = Machine::new(MachineConfig::default())
            .run_streamed(&mut xt)
            .unwrap();
        let b = Machine::new(MachineConfig::default())
            .run_streamed(&mut xt)
            .unwrap();
        assert_eq!(a, b, "rewind + replay must be deterministic");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        let trace = chase_trace(40);
        let path = write_file(&trace, "hash-a.xtrc");
        let h1 = ExternalTrace::open(&path).unwrap().content_hash();
        let h2 = ExternalTrace::open(&path).unwrap().content_hash();
        assert_eq!(h1, h2);
        let other = chase_trace(41);
        let path_b = write_file(&other, "hash-b.xtrc");
        assert_ne!(h1, ExternalTrace::open(&path_b).unwrap().content_hash());
        std::fs::remove_file(path).unwrap();
        std::fs::remove_file(path_b).unwrap();
    }

    #[test]
    fn resident_span_stays_bounded() {
        // Many more ops than the streaming window: the buffer high-water
        // mark must stay at the fixed bound, not scale with the trace.
        let path = tmp("bounded.xtrc");
        let mem = SimMemory::new();
        let mut xw = XtraceWriter::new(File::create(&path).unwrap(), &mem).unwrap();
        let total = 10 * (STREAM_LOOKBACK_OPS + STREAM_CHUNK_OPS);
        for i in 0..total {
            xw.push(&TraceOp {
                pc: 0x500,
                addr: sim_mem::layout::HEAP_BASE + ((i as u32) % 64) * 64,
                value: 0,
                dep: NO_DEP,
                kind: OpKind::Load,
                lds: false,
            })
            .unwrap();
        }
        xw.finish().unwrap();
        let mut xt = ExternalTrace::open(&path).unwrap();
        let stats = Machine::new(MachineConfig::default())
            .run_streamed(&mut xt)
            .unwrap();
        assert_eq!(stats.retired_instructions, total as u64);
        assert!(
            xt.max_resident_ops() <= STREAM_LOOKBACK_OPS + STREAM_CHUNK_OPS,
            "resident span {} exceeds the streaming bound",
            xt.max_resident_ops()
        );
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("badmagic.xtrc");
        std::fs::write(&path, b"NOTTRACE________________").unwrap();
        let err = ExternalTrace::open(&path).unwrap_err();
        assert!(matches!(err, XtraceError::Malformed(_)), "{err}");
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn bad_records_are_rejected_with_field_names() {
        let cases: [(&str, TraceOp, &str); 3] = [
            (
                "fwd-dep",
                TraceOp {
                    pc: 1,
                    addr: 8,
                    value: 0,
                    dep: 7,
                    kind: OpKind::Load,
                    lds: true,
                },
                "`dep`",
            ),
            (
                "zero-compute",
                TraceOp {
                    pc: 0,
                    addr: 0,
                    value: 0,
                    dep: NO_DEP,
                    kind: OpKind::Compute,
                    lds: false,
                },
                "`value`",
            ),
            (
                "lds-compute",
                TraceOp {
                    pc: 0,
                    addr: 0,
                    value: 4,
                    dep: NO_DEP,
                    kind: OpKind::Compute,
                    lds: true,
                },
                "`lds`",
            ),
        ];
        for (name, op, needle) in cases {
            let path = tmp(&format!("bad-{name}.xtrc"));
            let mut xw =
                XtraceWriter::new(File::create(&path).unwrap(), &SimMemory::new()).unwrap();
            xw.push(&op).unwrap();
            xw.finish().unwrap();
            let err = ExternalTrace::open(&path).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("record 0"), "{name}: {msg}");
            assert!(msg.contains(needle), "{name}: {msg}");
            std::fs::remove_file(path).unwrap();
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let trace = chase_trace(20);
        let path = write_file(&trace, "frame.xtrc");
        let bytes = std::fs::read(&path).unwrap();

        let trunc = tmp("frame-trunc.xtrc");
        std::fs::write(&trunc, &bytes[..bytes.len() - 5]).unwrap();
        let err = ExternalTrace::open(&trunc).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        let trail = tmp("frame-trail.xtrc");
        let mut extended = bytes.clone();
        extended.extend_from_slice(b"junk");
        std::fs::write(&trail, &extended).unwrap();
        let err = ExternalTrace::open(&trail).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");

        let wrong_sum = tmp("frame-sum.xtrc");
        let mut patched = bytes;
        patched[INSTRUCTIONS_POS as usize] ^= 1;
        std::fs::write(&wrong_sum, &patched).unwrap();
        let err = ExternalTrace::open(&wrong_sum).unwrap_err();
        assert!(err.to_string().contains("`instructions`"), "{err}");

        for p in [path, trunc, trail, wrong_sum] {
            std::fs::remove_file(p).unwrap();
        }
    }
}
