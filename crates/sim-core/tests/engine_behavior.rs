//! Behavioural tests of the engine's prefetch plumbing, using a scripted
//! prefetcher: feedback accounting (used/late/unused/pollution), prefetch
//! deduplication, and throttling application.

#![allow(clippy::unwrap_used)]

use sim_core::{
    Aggressiveness, DemandAccess, IntervalFeedback, Machine, MachineConfig, PrefetchCtx,
    PrefetchRequest, Prefetcher, PrefetcherId, PrefetcherKind, ThrottleDecision, ThrottlePolicy,
    Trace, TraceBuilder,
};
use sim_mem::{layout, SimMemory};

/// A prefetcher that, on every demand miss, requests `addr + delta`.
struct NextDelta {
    id: PrefetcherId,
    delta: i64,
    level: Aggressiveness,
}

impl NextDelta {
    fn new(delta: i64) -> Self {
        NextDelta {
            id: PrefetcherId(0),
            delta,
            level: Aggressiveness::Aggressive,
        }
    }
}

impl Prefetcher for NextDelta {
    fn name(&self) -> &'static str {
        "next-delta"
    }
    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Other
    }
    fn on_demand_access(&mut self, ctx: &mut PrefetchCtx<'_>, ev: &DemandAccess) {
        if ev.hit {
            return;
        }
        let target = i64::from(ev.addr) + self.delta;
        if target > 0 {
            ctx.request(PrefetchRequest {
                addr: target as u32,
                id: self.id,
                depth: 0,
                pg: None,
                root_pc: ev.pc,
            });
        }
    }
    fn set_aggressiveness(&mut self, level: Aggressiveness) {
        self.level = level;
    }
    fn aggressiveness(&self) -> Aggressiveness {
        self.level
    }
}

/// Loads `count` blocks at `stride` intervals with `gap` compute between.
fn strided_trace(count: u32, stride: u32, gap: u32) -> Trace {
    let mut tb = TraceBuilder::new(SimMemory::new());
    for i in 0..count {
        tb.load(0x100, layout::HEAP_BASE + i * stride, None);
        tb.compute(gap);
    }
    tb.finish()
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn useful_prefetches_are_credited() {
    // The +64 prefetcher perfectly predicts a sequential walk.
    let trace = strided_trace(400, 64, 30);
    let mut m = Machine::new(MachineConfig::default());
    m.add_prefetcher(Box::new(NextDelta::new(64)));
    let s = m.run(&trace).expect("run");
    let p = &s.prefetchers[0];
    assert!(p.issued > 100, "prefetcher should issue: {}", p.issued);
    assert!(
        p.accuracy() > 0.9,
        "perfect predictor should be accurate: {}",
        p.accuracy()
    );
    assert!(
        s.l2_demand_misses + s.l2_merged_into_prefetch + p.used >= 400,
        "every block accounted for"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn useless_prefetches_are_marked_unused_on_eviction() {
    // The -1MB prefetcher targets blocks the program never touches, but the
    // trace touches enough blocks to force evictions of the junk.
    let blocks = 3 * 16 * 1024; // 3x L2 lines
    let trace = strided_trace(blocks, 64, 0);
    let mut m = Machine::new(MachineConfig::default());
    m.add_prefetcher(Box::new(NextDelta::new(-(1 << 20))));
    let s = m.run(&trace).expect("run");
    let p = &s.prefetchers[0];
    assert!(p.issued > 1000);
    assert_eq!(p.used, 0, "junk is never used");
    assert!(
        p.unused_evicted > p.issued / 2,
        "most junk must be observed as unused: {} of {}",
        p.unused_evicted,
        p.issued
    );
}

#[test]
fn resident_blocks_are_not_prefetched_twice() {
    // Walk the same small region twice: on the second pass everything is
    // resident, so the prefetcher's requests are dropped at the L2 probe
    // and `issued` stays at first-pass levels.
    let mut tb = TraceBuilder::new(SimMemory::new());
    for pass in 0..2 {
        for i in 0..200u32 {
            tb.load(0x100 + pass, layout::HEAP_BASE + i * 64, None);
            tb.compute(20);
        }
    }
    let trace = tb.finish();
    let mut m = Machine::new(MachineConfig::default());
    m.add_prefetcher(Box::new(NextDelta::new(64)));
    let s = m.run(&trace).expect("run");
    assert!(
        s.prefetchers[0].issued <= 220,
        "second pass must not re-issue: {}",
        s.prefetchers[0].issued
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn late_prefetches_count_as_merged() {
    // With zero compute between loads, demands race ahead of fills: some
    // prefetches will be merged into (late) rather than hit.
    let trace = strided_trace(600, 64, 0);
    let mut m = Machine::new(MachineConfig::default());
    m.add_prefetcher(Box::new(NextDelta::new(64)));
    let s = m.run(&trace).expect("run");
    assert!(
        s.prefetchers[0].late > 0,
        "racing demands should produce late prefetches"
    );
    assert_eq!(
        s.l2_merged_into_prefetch, s.prefetchers[0].late,
        "every late use is a merge"
    );
}

/// A policy that forces Down every interval and records invocations.
struct AlwaysDown {
    calls: std::rc::Rc<std::cell::Cell<u32>>,
}

impl ThrottlePolicy for AlwaysDown {
    fn name(&self) -> &'static str {
        "always-down"
    }
    fn adjust(&mut self, feedback: &[IntervalFeedback]) -> Vec<ThrottleDecision> {
        self.calls.set(self.calls.get() + 1);
        vec![ThrottleDecision::Down; feedback.len()]
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn throttle_decisions_are_applied_to_prefetchers() {
    let blocks = 6 * 16 * 1024; // enough evictions for several intervals
    let trace = strided_trace(blocks, 64, 0);
    let mut m = Machine::new(MachineConfig::default());
    let id = m.add_prefetcher(Box::new(NextDelta::new(64)));
    let calls = std::rc::Rc::new(std::cell::Cell::new(0));
    m.set_throttle(Box::new(AlwaysDown {
        calls: std::rc::Rc::clone(&calls),
    }));
    let s = m.run(&trace).expect("run");
    assert!(s.intervals >= 3, "intervals must elapse: {}", s.intervals);
    assert_eq!(
        u64::from(calls.get()),
        s.intervals,
        "policy called per interval"
    );
    assert_eq!(
        m.prefetcher(id).aggressiveness(),
        Aggressiveness::VeryConservative,
        "repeated Down must saturate at the bottom level"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn pollution_is_attributed_to_the_evicting_prefetcher() {
    // Junk prefetches into a small set-conflicting region evict blocks the
    // demand stream still needs; those re-misses are pollution events.
    let l2_lines = 16 * 1024u32;
    let mut tb = TraceBuilder::new(SimMemory::new());
    // Two passes over exactly the L2 capacity: without prefetching the
    // second pass would mostly hit; junk prefetches (one per miss) displace
    // about half of it.
    for _pass in 0..3 {
        for i in 0..l2_lines {
            tb.load(0x100, layout::HEAP_BASE + i * 64, None);
        }
    }
    let trace = tb.finish();
    let mut m = Machine::new(MachineConfig::default());
    m.add_prefetcher(Box::new(NextDelta::new(32 << 20)));
    let s = m.run(&trace).expect("run");
    assert!(
        s.prefetchers[0].pollution > 0,
        "demand re-misses to prefetch-evicted blocks must be detected"
    );
}
