//! Bounded-memory guarantee of streamed trace replay: peak RSS stays flat
//! while the on-disk trace is far larger than the streaming window.
//!
//! This file holds exactly one test so the binary's `VmHWM` reading is not
//! polluted by unrelated tests sharing the process.

use std::fs::File;

use sim_core::{
    ExternalTrace, Machine, MachineConfig, OpKind, TraceOp, XtraceWriter, NO_DEP, STREAM_CHUNK_OPS,
    STREAM_LOOKBACK_OPS,
};
use sim_mem::SimMemory;

/// Peak resident set size (`VmHWM`) in bytes; `None` off Linux.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[test]
fn peak_rss_is_independent_of_trace_length() {
    const HEAP_ADDR: u32 = 0x4000_0000;
    const OPS: usize = 2_000_000;

    let dir = std::env::temp_dir();
    let path = dir.join(format!("ecdp-rss-{}.xtrc", std::process::id()));

    // Stream the trace to disk without ever materializing it: the writer
    // sees one op at a time.
    let mut mem = SimMemory::new();
    mem.write_u32(HEAP_ADDR, 0xABCD);
    let mut w = XtraceWriter::new(File::create(&path).expect("create"), &mem).expect("header");
    for i in 0..OPS {
        let op = if i % 32 == 0 {
            TraceOp {
                pc: 0x1000,
                addr: HEAP_ADDR,
                value: 0xABCD,
                dep: NO_DEP,
                kind: OpKind::Load,
                lds: false,
            }
        } else {
            TraceOp {
                pc: 0,
                addr: 0,
                value: 64,
                dep: NO_DEP,
                kind: OpKind::Compute,
                lds: false,
            }
        };
        w.push(&op).expect("push");
    }
    w.finish().expect("finish");
    let file_bytes = std::fs::metadata(&path).expect("metadata").len();
    assert!(
        file_bytes > 30 * 1024 * 1024,
        "trace file unexpectedly small ({file_bytes} bytes); the RSS bound below would be vacuous"
    );

    let before = peak_rss_bytes();
    let mut trace = ExternalTrace::open(&path).expect("open");
    assert_eq!(trace.op_count(), OPS);
    let stats = Machine::new(MachineConfig::default())
        .run_streamed(&mut trace)
        .expect("run");
    assert!(stats.retired_instructions > OPS as u64);

    // The replay buffer never held more than one lookback + one refill
    // chunk of ops...
    let window = STREAM_LOOKBACK_OPS + STREAM_CHUNK_OPS;
    assert!(
        trace.max_resident_ops() <= window,
        "resident window grew to {} ops (cap {window})",
        trace.max_resident_ops()
    );

    // ...and the process-level peak backs that up: far less than the file
    // size (let alone a materialized Vec<TraceOp>) was ever resident.
    drop(trace);
    std::fs::remove_file(&path).ok();
    if let (Some(before), Some(after)) = (before, peak_rss_bytes()) {
        let delta = after.saturating_sub(before);
        assert!(
            delta < file_bytes / 2,
            "peak RSS grew by {delta} bytes replaying a {file_bytes}-byte trace; \
             streaming should keep the resident window in the low hundreds of KB"
        );
    }
}
