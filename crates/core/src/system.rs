//! Assembly of every machine configuration evaluated in the paper.
//!
//! [`SystemKind`] enumerates the systems; [`SystemBuilder`] wires the right
//! prefetchers, scan filters and throttling policy together and runs a
//! trace through the result, optionally attaching the observability layer
//! ([`sim_core::ObsConfig`]) or a [`sim_core::PrefetchObserver`].
//! Multi-core experiments use [`core_setup`] to get the per-core
//! equivalent.

use std::collections::HashSet;
use std::sync::Arc;

use prefetch::{
    AllowAll, AvdConfig, AvdPrefetcher, CdpConfig, ContentDirectedPrefetcher, DbpConfig,
    DependenceBasedPrefetcher, FilterConfig, GhbConfig, GhbPrefetcher, JumpPointerConfig,
    JumpPointerPrefetcher, MarkovConfig, MarkovPrefetcher, NextLinePrefetcher,
    PollutionFilteredPrefetcher, ScanFilter, StreamConfig, StreamPrefetcher, StrideConfig,
    StridePrefetcher,
};
use sim_core::{
    CoreSetup, Machine, MachineConfig, ObsConfig, PrefetchObserver, PrefetcherId, RunStats,
    RunTrace, SimError, Snapshot, Trace, ValidateConfig,
};
use throttle::{CoordinatedThrottle, FdpThrottle, PabSelector, Switchable};

use crate::hints::HintTable;
use crate::profile::PgProfile;

/// Everything the "compiler" hands to the hardware: hint bit vectors for
/// ECDP plus the coarser per-load gates used by the §7.1/§7.2 comparisons.
#[derive(Debug, Clone, Default)]
pub struct CompilerArtifacts {
    /// Per-load hint bit vectors (ECDP).
    pub hints: HintTable,
    /// Loads with at least one beneficial pointer group (GRP-style gate).
    pub grp_loads: HashSet<u32>,
    /// Loads whose aggregate prefetches are majority useful
    /// (Srinivasan-style per-load filter).
    pub accurate_loads: HashSet<u32>,
}

impl CompilerArtifacts {
    /// Derives all artifacts from a profiling run.
    pub fn from_profile(profile: &PgProfile) -> Self {
        CompilerArtifacts {
            hints: profile.hint_table(),
            grp_loads: profile.loads_with_beneficial_pg(),
            accurate_loads: profile.majority_useful_loads(),
        }
    }

    /// Empty artifacts (for systems that do not use the compiler).
    pub fn empty() -> Self {
        Self::default()
    }
}

/// A coarse per-load gate: when a load is enabled, *all* pointers in its
/// fetched blocks may be prefetched; when disabled, none (GRP §7.1 and the
/// per-triggering-load filter §7.2).
#[derive(Debug, Clone, Default)]
pub struct PerLoadGate {
    enabled: HashSet<u32>,
}

impl PerLoadGate {
    /// Creates a gate enabling exactly `enabled`.
    pub fn new(enabled: HashSet<u32>) -> Self {
        PerLoadGate { enabled }
    }
}

impl ScanFilter for PerLoadGate {
    fn allow(&self, _pc: u32, _offset: i32) -> bool {
        true
    }

    fn scan_load(&self, pc: u32) -> bool {
        self.enabled.contains(&pc)
    }
}

/// Every system configuration evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// No prefetching at all.
    NoPrefetch,
    /// The baseline: aggressive stream prefetcher only.
    StreamOnly,
    /// Baseline plus the Figure 1 oracle: LDS misses become hits.
    OracleLds,
    /// Stream + original (unfiltered) CDP — the Figure 2 problem case.
    StreamCdp,
    /// Stream + compiler-guided ECDP.
    StreamEcdp,
    /// Stream + original CDP with coordinated throttling.
    StreamCdpThrottled,
    /// The full proposal: stream + ECDP + coordinated throttling.
    StreamEcdpThrottled,
    /// Stream + dependence-based prefetcher (§6.3).
    StreamDbp,
    /// Stream + Markov correlation prefetcher (§6.3).
    StreamMarkov,
    /// GHB G/DC alone (§6.3; it subsumes streaming patterns).
    GhbAlone,
    /// GHB + ECDP hybrid (§6.3 orthogonality experiment).
    GhbEcdp,
    /// GHB + ECDP + coordinated throttling.
    GhbEcdpThrottled,
    /// Stream + CDP behind the Zhuang–Lee hardware filter (§6.4).
    StreamCdpHwFilter,
    /// Hardware filter plus coordinated throttling (§6.4).
    StreamCdpHwFilterThrottled,
    /// Stream + ECDP throttled by (uncoordinated) FDP (§6.5).
    StreamEcdpFdp,
    /// Stream + ECDP under the PAB best-prefetcher-only selector (§7.4).
    StreamEcdpPab,
    /// Stream + CDP gated per-load in GRP's coarse style (§7.1).
    StreamGrpCdp,
    /// Stream + CDP gated by per-triggering-load accuracy (§7.2).
    StreamLoadFilterCdp,
    /// Next-line prefetching only (the 1977 baseline, for context).
    NextLineOnly,
    /// Per-PC stride prefetching only.
    StrideOnly,
    /// Stream + hardware jump-pointer prefetching (§7.3, 64 KB storage).
    StreamJumpPointer,
    /// Stream + address-value-delta prediction used as a prefetcher (§7.3).
    StreamAvd,
}

impl SystemKind {
    /// Every system, in presentation order. `ALL[i].label()` round-trips
    /// through [`SystemKind::from_label`].
    pub const ALL: [SystemKind; 22] = [
        SystemKind::NoPrefetch,
        SystemKind::StreamOnly,
        SystemKind::OracleLds,
        SystemKind::StreamCdp,
        SystemKind::StreamEcdp,
        SystemKind::StreamCdpThrottled,
        SystemKind::StreamEcdpThrottled,
        SystemKind::StreamDbp,
        SystemKind::StreamMarkov,
        SystemKind::GhbAlone,
        SystemKind::GhbEcdp,
        SystemKind::GhbEcdpThrottled,
        SystemKind::StreamCdpHwFilter,
        SystemKind::StreamCdpHwFilterThrottled,
        SystemKind::StreamEcdpFdp,
        SystemKind::StreamEcdpPab,
        SystemKind::StreamGrpCdp,
        SystemKind::StreamLoadFilterCdp,
        SystemKind::NextLineOnly,
        SystemKind::StrideOnly,
        SystemKind::StreamJumpPointer,
        SystemKind::StreamAvd,
    ];

    /// Inverse of [`SystemKind::label`]; `None` for unknown labels.
    pub fn from_label(label: &str) -> Option<SystemKind> {
        SystemKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::NoPrefetch => "no-pf",
            SystemKind::StreamOnly => "stream",
            SystemKind::OracleLds => "stream+oracle",
            SystemKind::StreamCdp => "stream+cdp",
            SystemKind::StreamEcdp => "stream+ecdp",
            SystemKind::StreamCdpThrottled => "stream+cdp+throttle",
            SystemKind::StreamEcdpThrottled => "stream+ecdp+throttle",
            SystemKind::StreamDbp => "stream+dbp",
            SystemKind::StreamMarkov => "stream+markov",
            SystemKind::GhbAlone => "ghb",
            SystemKind::GhbEcdp => "ghb+ecdp",
            SystemKind::GhbEcdpThrottled => "ghb+ecdp+throttle",
            SystemKind::StreamCdpHwFilter => "stream+cdp+hwfilter",
            SystemKind::StreamCdpHwFilterThrottled => "stream+cdp+hwfilter+throttle",
            SystemKind::StreamEcdpFdp => "stream+ecdp+fdp",
            SystemKind::StreamEcdpPab => "stream+ecdp+pab",
            SystemKind::StreamGrpCdp => "stream+grp-cdp",
            SystemKind::StreamLoadFilterCdp => "stream+loadfilter-cdp",
            SystemKind::NextLineOnly => "next-line",
            SystemKind::StrideOnly => "stride",
            SystemKind::StreamJumpPointer => "stream+jump",
            SystemKind::StreamAvd => "stream+avd",
        }
    }
}

fn stream() -> Box<StreamPrefetcher> {
    Box::new(StreamPrefetcher::new(
        PrefetcherId(0),
        StreamConfig::default(),
    ))
}

fn cdp(filter: Box<dyn ScanFilter>) -> Box<ContentDirectedPrefetcher> {
    Box::new(ContentDirectedPrefetcher::new(
        PrefetcherId(1),
        CdpConfig::default(),
        filter,
    ))
}

/// Builds the per-core prefetcher/throttle setup for `kind`.
pub fn core_setup(kind: SystemKind, artifacts: &CompilerArtifacts) -> CoreSetup {
    let mut setup = CoreSetup::bare();
    match kind {
        SystemKind::NoPrefetch => {}
        SystemKind::StreamOnly | SystemKind::OracleLds => {
            setup.prefetchers.push(stream());
        }
        SystemKind::StreamCdp => {
            setup.prefetchers.push(stream());
            setup.prefetchers.push(cdp(Box::new(AllowAll)));
        }
        SystemKind::StreamEcdp => {
            setup.prefetchers.push(stream());
            setup
                .prefetchers
                .push(cdp(Box::new(artifacts.hints.clone())));
        }
        SystemKind::StreamCdpThrottled => {
            setup.prefetchers.push(stream());
            setup.prefetchers.push(cdp(Box::new(AllowAll)));
            setup.throttle = Box::new(CoordinatedThrottle::default());
        }
        SystemKind::StreamEcdpThrottled => {
            setup.prefetchers.push(stream());
            setup
                .prefetchers
                .push(cdp(Box::new(artifacts.hints.clone())));
            setup.throttle = Box::new(CoordinatedThrottle::default());
        }
        SystemKind::StreamDbp => {
            setup.prefetchers.push(stream());
            setup
                .prefetchers
                .push(Box::new(DependenceBasedPrefetcher::new(
                    PrefetcherId(1),
                    DbpConfig::default(),
                )));
        }
        SystemKind::StreamMarkov => {
            setup.prefetchers.push(stream());
            setup.prefetchers.push(Box::new(MarkovPrefetcher::new(
                PrefetcherId(1),
                MarkovConfig::default(),
            )));
        }
        SystemKind::GhbAlone => {
            setup.prefetchers.push(Box::new(GhbPrefetcher::new(
                PrefetcherId(0),
                GhbConfig::default(),
            )));
        }
        SystemKind::GhbEcdp | SystemKind::GhbEcdpThrottled => {
            setup.prefetchers.push(Box::new(GhbPrefetcher::new(
                PrefetcherId(0),
                GhbConfig::default(),
            )));
            setup
                .prefetchers
                .push(cdp(Box::new(artifacts.hints.clone())));
            if kind == SystemKind::GhbEcdpThrottled {
                setup.throttle = Box::new(CoordinatedThrottle::default());
            }
        }
        SystemKind::StreamCdpHwFilter | SystemKind::StreamCdpHwFilterThrottled => {
            setup.prefetchers.push(stream());
            setup
                .prefetchers
                .push(Box::new(PollutionFilteredPrefetcher::new(
                    cdp(Box::new(AllowAll)),
                    FilterConfig::default(),
                )));
            if kind == SystemKind::StreamCdpHwFilterThrottled {
                setup.throttle = Box::new(CoordinatedThrottle::default());
            }
        }
        SystemKind::StreamEcdpFdp => {
            setup.prefetchers.push(stream());
            setup
                .prefetchers
                .push(cdp(Box::new(artifacts.hints.clone())));
            setup.throttle = Box::new(FdpThrottle::default());
        }
        SystemKind::StreamEcdpPab => {
            let (s, sf) = Switchable::new(stream());
            let (c, cf) = Switchable::new(cdp(Box::new(artifacts.hints.clone())));
            setup.prefetchers.push(Box::new(s));
            setup.prefetchers.push(Box::new(c));
            setup.throttle = Box::new(PabSelector::new(vec![sf, cf]));
        }
        SystemKind::StreamGrpCdp => {
            setup.prefetchers.push(stream());
            setup
                .prefetchers
                .push(cdp(Box::new(PerLoadGate::new(artifacts.grp_loads.clone()))));
        }
        SystemKind::StreamLoadFilterCdp => {
            setup.prefetchers.push(stream());
            setup.prefetchers.push(cdp(Box::new(PerLoadGate::new(
                artifacts.accurate_loads.clone(),
            ))));
        }
        SystemKind::NextLineOnly => {
            setup
                .prefetchers
                .push(Box::new(NextLinePrefetcher::new(PrefetcherId(0))));
        }
        SystemKind::StrideOnly => {
            setup.prefetchers.push(Box::new(StridePrefetcher::new(
                PrefetcherId(0),
                StrideConfig::default(),
            )));
        }
        SystemKind::StreamJumpPointer => {
            setup.prefetchers.push(stream());
            setup.prefetchers.push(Box::new(JumpPointerPrefetcher::new(
                PrefetcherId(1),
                JumpPointerConfig::default(),
            )));
        }
        SystemKind::StreamAvd => {
            setup.prefetchers.push(stream());
            setup.prefetchers.push(Box::new(AvdPrefetcher::new(
                PrefetcherId(1),
                AvdConfig::default(),
            )));
        }
    }
    setup
}

/// The outcome of a [`SystemBuilder`] run: run statistics plus, when the
/// observability layer was enabled with [`SystemBuilder::observe`], the
/// interval-resolution [`RunTrace`], and, when a warm checkpoint was
/// requested with [`SystemBuilder::warm_checkpoint`], the captured
/// [`Snapshot`].
#[derive(Debug, Clone, Default)]
pub struct SystemRun {
    /// End-of-run statistics.
    pub stats: RunStats,
    /// Interval samples / throttle transitions / lifecycle events.
    /// `None` unless observability was requested and the run succeeded.
    pub trace: Option<RunTrace>,
    /// Warm-state snapshot captured mid-run. `None` unless requested (or
    /// if the run finished before the checkpoint cycle).
    pub snapshot: Option<Snapshot>,
}

/// Two runs are equal when their *results* agree: statistics and trace.
/// A captured snapshot is a by-product, not a result, and is excluded —
/// differential harnesses compare a cold run (no snapshot) against a
/// checkpointing run.
impl PartialEq for SystemRun {
    fn eq(&self, other: &Self) -> bool {
        self.stats == other.stats && self.trace == other.trace
    }
}

/// One-stop assembly and execution of a paper system — the single entry
/// point for building and running machines (the former `build_machine` /
/// `build_machine_with` / `run_system` / `run_system_profiled` free
/// functions are gone).
///
/// Observability hooks (the interval sampler and decision trace of
/// [`sim_core::obs`], or a custom [`PrefetchObserver`]) attach only
/// through this builder. The machine configuration is held behind an
/// [`Arc`], so cloning a prebuilt config across thousands of sweep cells
/// shares one allocation instead of deep-copying.
///
/// # Example
///
/// ```no_run
/// use ecdp::system::{CompilerArtifacts, SystemBuilder, SystemKind};
/// # fn demo(trace: &sim_core::Trace) -> Result<(), sim_core::SimError> {
/// let artifacts = CompilerArtifacts::empty();
/// let run = SystemBuilder::new(SystemKind::StreamOnly)
///     .artifacts(&artifacts)
///     .run(trace)?;
/// println!("IPC {:.3}", run.stats.ipc());
/// # Ok(()) }
/// ```
pub struct SystemBuilder<'a> {
    kind: SystemKind,
    artifacts: Option<&'a CompilerArtifacts>,
    config: Arc<MachineConfig>,
    observer: Option<Box<dyn PrefetchObserver>>,
    obs: ObsConfig,
    validate: Option<ValidateConfig>,
    cycle_budget: Option<u64>,
    wall_deadline: Option<std::time::Duration>,
    reference_stepping: bool,
    warm_checkpoint: Option<u64>,
    fork_from: Option<&'a Snapshot>,
}

impl<'a> SystemBuilder<'a> {
    /// Starts a builder for `kind` with the default configuration
    /// (Table 5), empty compiler artifacts and observability disabled.
    pub fn new(kind: SystemKind) -> Self {
        SystemBuilder {
            kind,
            artifacts: None,
            config: Arc::new(MachineConfig::default()),
            observer: None,
            obs: ObsConfig::default(),
            validate: None,
            cycle_budget: None,
            wall_deadline: None,
            reference_stepping: false,
            warm_checkpoint: None,
            fork_from: None,
        }
    }

    /// Uses `artifacts` (hint vectors and per-load gates) when assembling
    /// compiler-guided systems. Systems that ignore the compiler are
    /// unaffected.
    pub fn artifacts(mut self, artifacts: &'a CompilerArtifacts) -> Self {
        self.artifacts = Some(artifacts);
        self
    }

    /// Replaces the machine configuration. `oracle_lds` is still forced
    /// to match the system kind. Accepts a plain [`MachineConfig`] or an
    /// already-shared `Arc<MachineConfig>` (the latter avoids a deep copy
    /// when many builders reuse one config).
    pub fn config(mut self, config: impl Into<Arc<MachineConfig>>) -> Self {
        self.config = config.into();
        self
    }

    /// Disables event skip-ahead and steps the machine cycle by cycle, as
    /// a reference for differential tests. Results are bit-identical to
    /// the default skipping engine, only slower.
    pub fn reference_stepping(mut self, on: bool) -> Self {
        self.reference_stepping = on;
        self
    }

    /// Attaches a custom per-prefetch observer (e.g. the pointer-group
    /// profiler's `PgCollector`).
    pub fn observer(mut self, observer: Box<dyn PrefetchObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Enables the observability layer: interval time series, throttle
    /// decision traces and (optionally) prefetch lifecycle events, per
    /// `obs`. With the default (all-disabled) config this is a no-op and
    /// the run costs nothing extra.
    pub fn observe(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Opts the run into the paper-conformance runtime invariants
    /// (conservation, bus/MSHR bounds, Table 3 re-derivation), per `cfg`.
    /// Checks are read-only — statistics stay bit-identical — and a
    /// violation fails the run with `SimError::InvariantViolation`.
    /// Passing `ValidateConfig::disabled()` opts out even when the
    /// `validate` cargo feature arms the suite-wide default.
    pub fn validate(mut self, cfg: ValidateConfig) -> Self {
        self.validate = Some(cfg);
        self
    }

    /// Aborts runs exceeding `cycles` with `SimError::CycleBudget`.
    pub fn cycle_budget(mut self, cycles: u64) -> Self {
        self.cycle_budget = Some(cycles);
        self
    }

    /// Aborts runs whose *wall-clock* time exceeds `deadline` with
    /// [`sim_core::SimError::DeadlineExceeded`] (the engine watchdog
    /// captures a diagnostic snapshot at the kill point). Successful
    /// runs are bit-identical with or without a deadline — the check is
    /// a coarse, read-only poll. This is the per-cell deadline hook the
    /// sweep supervisor escalates through.
    pub fn wall_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.wall_deadline = Some(deadline);
        self
    }

    /// Captures a warm-state [`Snapshot`] once the run reaches `cycles`
    /// simulated cycles. Capture is read-only — the run's results are
    /// bit-identical with or without it — and the snapshot comes back in
    /// [`SystemRun::snapshot`] (or `None` if the run finished first).
    pub fn warm_checkpoint(mut self, cycles: u64) -> Self {
        self.warm_checkpoint = Some(cycles);
        self
    }

    /// Starts the run from `snapshot` instead of a cold machine: state is
    /// restored and simulation resumes at the captured cycle. The same
    /// trace that produced the snapshot must be replayed, and the machine
    /// assembled by this builder must match the one that captured it
    /// (same config, prefetchers and throttle) — mismatches fail the run
    /// with [`SimError::SnapshotRejected`].
    pub fn fork_from(mut self, snapshot: &'a Snapshot) -> Self {
        self.fork_from = Some(snapshot);
        self
    }

    /// Assembles the machine without running it.
    pub fn build(self) -> Machine {
        let empty = CompilerArtifacts::empty();
        let mut config = self.config;
        let oracle = self.kind == SystemKind::OracleLds;
        // Only unshare the config when the flag actually differs, so
        // sweep harnesses sharing one Arc across cells keep sharing it.
        if config.oracle_lds != oracle {
            Arc::make_mut(&mut config).oracle_lds = oracle;
        }
        let setup = core_setup(self.kind, self.artifacts.unwrap_or(&empty));
        let mut machine = Machine::new(config);
        for p in setup.prefetchers {
            machine.add_prefetcher(p);
        }
        machine.set_throttle(setup.throttle);
        if let Some(observer) = self.observer {
            machine.set_observer(observer);
        }
        machine.set_obs(self.obs);
        if let Some(v) = self.validate {
            machine.set_validate(v);
        }
        machine.set_cycle_budget(self.cycle_budget);
        machine.set_wall_deadline(self.wall_deadline);
        machine.set_reference_stepping(self.reference_stepping);
        machine.set_warm_checkpoint(self.warm_checkpoint);
        machine
    }

    /// Builds the machine and runs `trace` through it.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the run (deadlock watchdog, cycle
    /// budget, invariant violation) so sweep harnesses can record the
    /// cell as failed instead of aborting the process.
    pub fn run(self, trace: &Trace) -> Result<SystemRun, SimError> {
        let fork = self.fork_from;
        let mut machine = self.build();
        if let Some(snapshot) = fork {
            machine.fork_from(snapshot)?;
        }
        let stats = machine.run(trace)?;
        Ok(SystemRun {
            stats,
            trace: machine.take_run_trace(),
            snapshot: machine.take_snapshot(),
        })
    }

    /// Builds the machine and replays a streamed external trace through
    /// it in bounded windows (see [`sim_core::stream`]). Statistics are
    /// bit-identical to materializing the same ops and calling
    /// [`SystemBuilder::run`].
    ///
    /// External traces carry no train input, so profile-guided systems
    /// run with whatever artifacts were supplied — usually
    /// [`CompilerArtifacts::empty`], since there is nothing to profile
    /// from a foreign address trace.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the run, as
    /// [`SystemBuilder::run`] does.
    pub fn run_streamed(
        self,
        trace: &mut sim_core::stream::ExternalTrace,
    ) -> Result<SystemRun, SimError> {
        let fork = self.fork_from;
        let mut machine = self.build();
        if let Some(snapshot) = fork {
            machine.fork_from(snapshot)?;
        }
        let stats = machine.run_streamed(trace)?;
        Ok(SystemRun {
            stats,
            trace: machine.take_run_trace(),
            snapshot: machine.take_snapshot(),
        })
    }

    /// Like [`SystemBuilder::run`], but also collects the pointer-group
    /// usefulness observed *during this run* (used by the Figure 10
    /// experiment to compare PG usefulness under original CDP versus
    /// ECDP). Replaces any observer set with [`SystemBuilder::observer`].
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the run, as
    /// [`SystemBuilder::run`] does.
    pub fn run_profiled(mut self, trace: &Trace) -> Result<(SystemRun, PgProfile), SimError> {
        let (collector, handle) = crate::profile::PgCollector::new();
        self.observer = Some(Box::new(collector));
        let run = self.run(trace)?;
        let pgs = handle.borrow().clone();
        Ok((
            run,
            PgProfile {
                pgs,
                min_samples: 4,
            },
        ))
    }
}

// Thread-safety contract of the parallel experiment harness: the shared
// *inputs and outputs* of `SystemBuilder::run` must be `Send + Sync` so a
// cached trace/artifact can feed simulations on many worker threads at
// once. The machine internals themselves (e.g. the `Rc<RefCell<_>>`
// collector used by `SystemBuilder::run_profiled`) are deliberately
// single-threaded — each worker builds its own `Machine` — and are *not*
// part of this contract.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Trace>();
    assert_send_sync::<RunStats>();
    assert_send_sync::<SystemRun>();
    assert_send_sync::<CompilerArtifacts>();
    assert_send_sync::<crate::profile::PgProfile>();
    assert_send_sync::<SystemKind>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{InputSet, Workload};

    fn artifacts_for(trace: &Trace) -> CompilerArtifacts {
        CompilerArtifacts::from_profile(&crate::profile::profile_workload(trace))
    }

    fn run_system(
        kind: SystemKind,
        trace: &Trace,
        artifacts: &CompilerArtifacts,
    ) -> Result<RunStats, SimError> {
        SystemBuilder::new(kind)
            .artifacts(artifacts)
            .run(trace)
            .map(|run| run.stats)
    }

    #[test]
    fn all_kinds_build() {
        for kind in SystemKind::ALL {
            let _ = SystemBuilder::new(kind).build();
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn shared_config_arc_is_not_deep_copied() {
        let cfg = Arc::new(MachineConfig::default());
        let m = SystemBuilder::new(SystemKind::StreamOnly)
            .config(Arc::clone(&cfg))
            .build();
        // StreamOnly leaves oracle_lds at its default, so the builder must
        // keep sharing the caller's allocation.
        assert!(!m.config().oracle_lds);
        assert_eq!(Arc::strong_count(&cfg), 2);
        let m = SystemBuilder::new(SystemKind::OracleLds)
            .config(Arc::clone(&cfg))
            .build();
        assert!(m.config().oracle_lds);
        assert!(!cfg.oracle_lds, "caller's config must not be mutated");
    }

    #[test]
    fn observe_yields_an_interval_trace_without_perturbing_stats() {
        let t = workloads::streaming::Libquantum.generate(InputSet::Test);
        let a = CompilerArtifacts::empty();
        // Shrink the L2 and interval so the short test input spans
        // several sampling intervals.
        let mut cfg = MachineConfig::default();
        cfg.l2.bytes = 64 * 1024;
        cfg.interval_evictions = 128;
        let kind = SystemKind::StreamEcdpThrottled;
        let plain = SystemBuilder::new(kind)
            .artifacts(&a)
            .config(cfg.clone())
            .run(&t)
            .expect("run");
        let observed = SystemBuilder::new(kind)
            .artifacts(&a)
            .config(cfg)
            .observe(ObsConfig {
                timeseries: true,
                decisions: true,
                ..ObsConfig::default()
            })
            .run(&t)
            .expect("run");
        assert_eq!(plain.stats, observed.stats, "observer must not perturb");
        let trace = observed.trace.expect("trace requested");
        assert_eq!(trace.samples.len(), observed.stats.intervals as usize);
        assert!(
            observed.stats.intervals > 0,
            "workload too small to sample; shrink the interval further"
        );
    }

    #[test]
    fn warm_checkpoint_fork_reproduces_cold_run() {
        let t = workloads::olden::Mst.generate(InputSet::Test);
        let a = artifacts_for(&t);
        let mut cfg = MachineConfig::default();
        cfg.l2.bytes = 64 * 1024;
        cfg.interval_evictions = 128;
        let kind = SystemKind::StreamEcdpThrottled;
        let obs = ObsConfig {
            timeseries: true,
            decisions: true,
            ..ObsConfig::default()
        };
        let build = || {
            SystemBuilder::new(kind)
                .artifacts(&a)
                .config(cfg.clone())
                .observe(obs)
        };

        let cold = build().run(&t).expect("cold run");
        assert!(cold.snapshot.is_none(), "no checkpoint requested");

        // Checkpoint mid-run; capture must not perturb the results.
        let warm = build()
            .warm_checkpoint(cold.stats.cycles / 2)
            .run(&t)
            .expect("checkpointing run");
        assert_eq!(warm, cold, "capture must be read-only");
        let snapshot = warm.snapshot.expect("snapshot captured");
        assert!(snapshot.cycle() >= cold.stats.cycles / 2);

        // Fork from the snapshot; the forked run must be bit-identical.
        let forked = build().fork_from(&snapshot).run(&t).expect("forked run");
        assert_eq!(forked, cold, "fork must reproduce the cold run");

        // A mismatched system rejects the snapshot instead of panicking.
        let err = SystemBuilder::new(SystemKind::StreamOnly)
            .artifacts(&a)
            .config(cfg.clone())
            .fork_from(&snapshot)
            .run(&t)
            .expect_err("mismatched system");
        assert_eq!(err.kind(), "snapshot-rejected");
    }

    #[test]
    fn oracle_flag_is_forced_by_the_builder() {
        let m = SystemBuilder::new(SystemKind::OracleLds).build();
        assert!(m.config().oracle_lds);
        let m = SystemBuilder::new(SystemKind::StreamOnly).build();
        assert!(!m.config().oracle_lds);
    }

    #[test]
    fn labels_round_trip() {
        for kind in SystemKind::ALL {
            assert_eq!(SystemKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(SystemKind::from_label("no-such-system"), None);
    }

    #[test]
    fn stream_beats_no_prefetch_on_streaming_workload() {
        let t = workloads::streaming::Libquantum.generate(InputSet::Train);
        let a = CompilerArtifacts::empty();
        let none = run_system(SystemKind::NoPrefetch, &t, &a).expect("run");
        let stream = run_system(SystemKind::StreamOnly, &t, &a).expect("run");
        assert!(
            stream.ipc() > 1.2 * none.ipc(),
            "stream {} vs none {}",
            stream.ipc(),
            none.ipc()
        );
    }

    #[test]
    fn ecdp_filters_prefetches_versus_cdp() {
        let t = workloads::olden::Mst.generate(InputSet::Train);
        let a = artifacts_for(&t);
        assert!(!a.hints.is_empty(), "profiling must produce hints");
        let with_cdp = run_system(SystemKind::StreamCdp, &t, &a).expect("run");
        let with_ecdp = run_system(SystemKind::StreamEcdp, &t, &a).expect("run");
        let cdp_issued = with_cdp.prefetchers[1].issued;
        let ecdp_issued = with_ecdp.prefetchers[1].issued;
        assert!(
            ecdp_issued < cdp_issued,
            "ECDP must prune prefetches: {ecdp_issued} vs {cdp_issued}"
        );
        assert!(
            with_ecdp.prefetchers[1].accuracy() > with_cdp.prefetchers[1].accuracy(),
            "ECDP accuracy {} must beat CDP {}",
            with_ecdp.prefetchers[1].accuracy(),
            with_cdp.prefetchers[1].accuracy()
        );
    }

    #[test]
    fn oracle_is_an_upper_bound_on_pointer_chase() {
        let t = workloads::olden::Health.generate(InputSet::Train);
        let a = CompilerArtifacts::empty();
        let base = run_system(SystemKind::StreamOnly, &t, &a).expect("run");
        let oracle = run_system(SystemKind::OracleLds, &t, &a).expect("run");
        assert!(oracle.ipc() > base.ipc());
    }
}
