//! Hardware storage cost accounting (paper Table 7).
//!
//! The proposal needs only: two *prefetched* bits per L2 line, eleven
//! 16-bit feedback counters, and per-MSHR storage for the triggering
//! load's block offset plus its hint bit vector(s). The paper's
//! configuration (128-byte blocks ⇒ 8192 L2 lines, 7-bit offset, 16-bit
//! vector) totals 17296 bits = 2.11 KB; this reproduction's 64-byte-block
//! configuration is computed by [`HardwareCost::for_config`].

use sim_core::MachineConfig;
use sim_mem::BLOCK_BYTES;

/// Storage cost breakdown, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareCost {
    /// `prefetched-stream`/`prefetched-CDP` bits: 2 per L2 line.
    pub prefetched_bits: u64,
    /// Feedback counters for coordinated throttling (11 × 16 bits).
    pub counter_bits: u64,
    /// Per-MSHR trigger offset + hint vector storage.
    pub mshr_bits: u64,
}

impl HardwareCost {
    /// The paper's Table 7 numbers (128-byte blocks, one 16-bit vector,
    /// 7-bit block offset, 32 MSHRs).
    pub fn paper() -> Self {
        HardwareCost {
            prefetched_bits: 8192 * 2,
            counter_bits: 11 * 16,
            mshr_bits: 32 * (7 + 16),
        }
    }

    /// The cost for a given machine configuration of this reproduction
    /// (64-byte blocks; positive *and* negative 16-bit hint vectors and a
    /// 6-bit in-block offset per MSHR entry).
    pub fn for_config(config: &MachineConfig) -> Self {
        let l2_lines = u64::from(config.l2.bytes / BLOCK_BYTES);
        let offset_bits = (BLOCK_BYTES.trailing_zeros()) as u64; // 6 for 64B
        HardwareCost {
            prefetched_bits: l2_lines * 2,
            counter_bits: 11 * 16,
            mshr_bits: u64::from(config.l2_mshrs) * (offset_bits + 16 + 16),
        }
    }

    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.prefetched_bits + self.counter_bits + self.mshr_bits
    }

    /// Total kilobytes.
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }

    /// Cost excluding the *prefetched* bits (the paper notes these may
    /// already exist in the baseline): 912 bits in the paper's config.
    pub fn without_prefetched_bits(&self) -> u64 {
        self.counter_bits + self.mshr_bits
    }

    /// Area overhead as a fraction of the L2 data array.
    pub fn overhead_vs_l2(&self, config: &MachineConfig) -> f64 {
        self.total_bits() as f64 / 8.0 / f64::from(config.l2.bytes)
    }
}

impl std::fmt::Display for HardwareCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "prefetched bits : {:>6} bits", self.prefetched_bits)?;
        writeln!(f, "feedback counters: {:>6} bits", self.counter_bits)?;
        writeln!(f, "MSHR hint storage: {:>6} bits", self.mshr_bits)?;
        write!(
            f,
            "total            : {:>6} bits = {:.2} KB",
            self.total_bits(),
            self.total_kb()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_total_matches_table7() {
        let c = HardwareCost::paper();
        assert_eq!(c.total_bits(), 17296);
        assert!((c.total_kb() - 2.11).abs() < 0.01);
        assert_eq!(c.without_prefetched_bits(), 912);
    }

    #[test]
    fn our_config_is_same_order_of_magnitude() {
        let cfg = MachineConfig::default();
        let c = HardwareCost::for_config(&cfg);
        // 16384 lines x 2 bits dominates; still a few KB.
        assert_eq!(c.prefetched_bits, 32768);
        assert!(c.total_kb() < 8.0);
        assert!(c.overhead_vs_l2(&cfg) < 0.01, "under 1% of the L2");
    }

    #[test]
    fn display_mentions_total() {
        let s = HardwareCost::paper().to_string();
        assert!(s.contains("2.11 KB"));
    }
}
