//! The profiling pass — this reproduction's stand-in for the paper's
//! profiling compiler (§3, "Profiling Implementation", first approach).
//!
//! The paper's compiler simulates the target machine's cache hierarchy and
//! prefetcher on the *train* input, measures the usefulness of every
//! pointer group `PG(L, X)`, and marks groups whose prefetches are majority
//! useful as *beneficial*. Here [`profile_workload`] does exactly that: it
//! runs the train trace on the baseline machine with stream prefetching and
//! **unfiltered** CDP, collects per-PG outcomes through a
//! [`sim_core::PrefetchObserver`], and summarises them in a [`PgProfile`]
//! from which hint bit vectors are generated.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use prefetch::{AllowAll, CdpConfig, ContentDirectedPrefetcher, StreamPrefetcher};
use sim_core::{
    Addr, Machine, MachineConfig, PgTag, PrefetchObserver, PrefetchRequest, PrefetcherId, Trace,
};

use crate::hints::{HintTable, HintVector};

/// Outcome counts for one pointer group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PgUsage {
    /// Prefetches issued on behalf of this PG (including recursive ones).
    pub issued: u64,
    /// Prefetched blocks later used by demand accesses.
    pub useful: u64,
    /// Prefetched blocks evicted without use.
    pub useless: u64,
}

impl PgUsage {
    /// Fraction of resolved prefetches that were useful (0.5 when nothing
    /// has resolved yet).
    pub fn usefulness(&self) -> f64 {
        let resolved = self.useful + self.useless;
        if resolved == 0 {
            0.5
        } else {
            self.useful as f64 / resolved as f64
        }
    }
}

/// Per-pointer-group usefulness measured over a profiling run.
#[derive(Debug, Clone, Default)]
pub struct PgProfile {
    /// Usefulness per pointer group.
    pub pgs: HashMap<PgTag, PgUsage>,
    /// Minimum resolved prefetches for a PG to be classified at all.
    pub min_samples: u64,
}

impl PgProfile {
    /// True if `pg` is beneficial: majority (>50%) of its prefetches were
    /// useful, with at least `min_samples` resolved outcomes.
    pub fn is_beneficial(&self, pg: &PgTag) -> bool {
        self.pgs
            .get(pg)
            .is_some_and(|u| u.useful + u.useless >= self.min_samples && u.usefulness() > 0.5)
    }

    /// Counts of (beneficial, harmful) pointer groups — the paper's
    /// Figure 4 breakdown.
    pub fn counts(&self) -> (usize, usize) {
        let mut beneficial = 0;
        let mut harmful = 0;
        for (pg, u) in &self.pgs {
            if u.useful + u.useless < self.min_samples {
                continue;
            }
            if self.is_beneficial(pg) {
                beneficial += 1;
            } else {
                harmful += 1;
            }
        }
        (beneficial, harmful)
    }

    /// Histogram of PG usefulness in the paper's Figure 10 buckets:
    /// `[0–25%, 25–50%, 50–75%, 75–100%]`.
    pub fn usefulness_histogram(&self) -> [usize; 4] {
        let mut h = [0usize; 4];
        for u in self.pgs.values() {
            if u.useful + u.useless < self.min_samples {
                continue;
            }
            let f = u.usefulness();
            let bucket = if f < 0.25 {
                0
            } else if f < 0.5 {
                1
            } else if f < 0.75 {
                2
            } else {
                3
            };
            h[bucket] += 1;
        }
        h
    }

    /// Generates the per-load hint bit vectors: one bit per beneficial PG.
    pub fn hint_table(&self) -> HintTable {
        let mut table = HintTable::new();
        let mut vectors: HashMap<u32, HintVector> = HashMap::new();
        for pg in self.pgs.keys() {
            if self.is_beneficial(pg) {
                let v = vectors.entry(pg.pc).or_default();
                let off = i32::from(pg.offset);
                if off % 4 == 0 && (-64..=60).contains(&off) {
                    v.set(off);
                }
            }
        }
        for (pc, v) in vectors {
            if !v.is_empty() {
                table.insert(pc, v);
            }
        }
        table
    }

    /// Loads with at least one beneficial PG (the GRP-style coarse gate:
    /// enable *all* pointers for these loads, none for the rest).
    pub fn loads_with_beneficial_pg(&self) -> HashSet<u32> {
        self.pgs
            .keys()
            .filter(|pg| self.is_beneficial(pg))
            .map(|pg| pg.pc)
            .collect()
    }

    /// Loads whose *aggregate* prefetches are majority useful (the
    /// Srinivasan-style per-triggering-load filter of §7.2).
    pub fn majority_useful_loads(&self) -> HashSet<u32> {
        let mut per_load: HashMap<u32, (u64, u64)> = HashMap::new();
        for (pg, u) in &self.pgs {
            let e = per_load.entry(pg.pc).or_default();
            e.0 += u.useful;
            e.1 += u.useless;
        }
        per_load
            .into_iter()
            .filter(|(_, (useful, useless))| {
                useful + useless >= self.min_samples && *useful * 2 > useful + useless
            })
            .map(|(pc, _)| pc)
            .collect()
    }
}

/// Observer that attributes prefetch outcomes to pointer groups.
///
/// Create with [`PgCollector::new`]; the returned handle shares the
/// underlying map, so results remain accessible after the collector is
/// moved into the [`Machine`].
#[derive(Debug)]
pub struct PgCollector {
    map: Rc<RefCell<HashMap<PgTag, PgUsage>>>,
}

impl PgCollector {
    /// Creates a collector and a shared handle to its results.
    #[allow(clippy::type_complexity)]
    pub fn new() -> (Self, Rc<RefCell<HashMap<PgTag, PgUsage>>>) {
        let map = Rc::new(RefCell::new(HashMap::new()));
        (
            PgCollector {
                map: Rc::clone(&map),
            },
            map,
        )
    }
}

impl PrefetchObserver for PgCollector {
    fn prefetch_issued(&mut self, req: &PrefetchRequest) {
        if let Some(pg) = req.pg {
            self.map.borrow_mut().entry(pg).or_default().issued += 1;
        }
    }

    fn prefetch_used(&mut self, _block: Addr, _id: PrefetcherId, pg: Option<PgTag>) {
        if let Some(pg) = pg {
            self.map.borrow_mut().entry(pg).or_default().useful += 1;
        }
    }

    fn prefetch_unused(&mut self, _block: Addr, _id: PrefetcherId, pg: Option<PgTag>) {
        if let Some(pg) = pg {
            self.map.borrow_mut().entry(pg).or_default().useless += 1;
        }
    }
}

/// Runs the profiling pass on `trace` (normally a *train*-input trace):
/// baseline machine, stream prefetcher + unfiltered CDP, no throttling.
/// Returns the measured pointer-group profile.
pub fn profile_workload(trace: &Trace) -> PgProfile {
    profile_workload_with(trace, MachineConfig::default())
}

/// Observer for the paper's *second* profiling implementation (§3):
/// informing load operations. Software can observe that a prefetch was
/// issued and that a later load hit a prefetched line (the informing load
/// reports the hit and its prefetch provenance), but it never sees cache
/// evictions — so a pointer group's useless count is *inferred* as
/// `issued − used` when the run ends.
#[derive(Debug)]
pub struct InformingCollector {
    map: Rc<RefCell<HashMap<PgTag, PgUsage>>>,
}

impl InformingCollector {
    /// Creates a collector and a shared handle to its counts (`useful` and
    /// `issued` are live; `useless` is derived at the end).
    #[allow(clippy::type_complexity)]
    pub fn new() -> (Self, Rc<RefCell<HashMap<PgTag, PgUsage>>>) {
        let map = Rc::new(RefCell::new(HashMap::new()));
        (
            InformingCollector {
                map: Rc::clone(&map),
            },
            map,
        )
    }
}

impl PrefetchObserver for InformingCollector {
    fn prefetch_issued(&mut self, req: &PrefetchRequest) {
        if let Some(pg) = req.pg {
            self.map.borrow_mut().entry(pg).or_default().issued += 1;
        }
    }

    fn prefetch_used(&mut self, _block: Addr, _id: PrefetcherId, pg: Option<PgTag>) {
        if let Some(pg) = pg {
            self.map.borrow_mut().entry(pg).or_default().useful += 1;
        }
    }

    // prefetch_unused is deliberately NOT implemented: informing loads give
    // software no visibility into evictions.
}

/// The §3 "informing loads" profiling implementation: like
/// [`profile_workload`] but using only information available to software on
/// a machine with informing memory operations. Uselessness is inferred as
/// issued-but-never-informed-used, which is slightly more conservative than
/// the simulator-based profiler (in-flight and still-resident prefetches
/// count as useless).
pub fn informing_profile(trace: &Trace) -> PgProfile {
    let mut machine = Machine::new(MachineConfig::default());
    machine.add_prefetcher(Box::new(StreamPrefetcher::new(
        PrefetcherId(0),
        Default::default(),
    )));
    machine.add_prefetcher(Box::new(ContentDirectedPrefetcher::new(
        PrefetcherId(1),
        CdpConfig::default(),
        Box::new(AllowAll),
    )));
    let (collector, handle) = InformingCollector::new();
    machine.set_observer(Box::new(collector));
    // A wedged profiling run is a simulator bug; surface it as a
    // panic so the experiment harness records the cell as failed.
    machine.run(trace).expect("profiling run failed");
    let mut pgs = handle.borrow().clone();
    for u in pgs.values_mut() {
        u.useless = u.issued.saturating_sub(u.useful);
    }
    PgProfile {
        pgs,
        min_samples: 4,
    }
}

/// [`profile_workload`] with an explicit machine configuration.
pub fn profile_workload_with(trace: &Trace, config: MachineConfig) -> PgProfile {
    let mut machine = Machine::new(config);
    machine.add_prefetcher(Box::new(StreamPrefetcher::new(
        PrefetcherId(0),
        Default::default(),
    )));
    machine.add_prefetcher(Box::new(ContentDirectedPrefetcher::new(
        PrefetcherId(1),
        CdpConfig::default(),
        Box::new(AllowAll),
    )));
    let (collector, handle) = PgCollector::new();
    machine.set_observer(Box::new(collector));
    // A wedged profiling run is a simulator bug; surface it as a
    // panic so the experiment harness records the cell as failed.
    machine.run(trace).expect("profiling run failed");
    let pgs = handle.borrow().clone();
    PgProfile {
        pgs,
        min_samples: 4,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn tag(pc: u32, offset: i16) -> PgTag {
        PgTag { pc, offset }
    }

    fn usage(useful: u64, useless: u64) -> PgUsage {
        PgUsage {
            issued: useful + useless,
            useful,
            useless,
        }
    }

    fn profile(entries: &[(PgTag, PgUsage)]) -> PgProfile {
        PgProfile {
            pgs: entries.iter().copied().collect(),
            min_samples: 4,
        }
    }

    #[test]
    fn majority_useful_pgs_are_beneficial() {
        let p = profile(&[
            (tag(1, 8), usage(30, 10)),
            (tag(1, 4), usage(5, 40)),
            (tag(2, 0), usage(1, 1)), // below min_samples
        ]);
        assert!(p.is_beneficial(&tag(1, 8)));
        assert!(!p.is_beneficial(&tag(1, 4)));
        assert!(!p.is_beneficial(&tag(2, 0)), "insufficient samples");
        assert_eq!(p.counts(), (1, 1));
    }

    #[test]
    fn hint_table_sets_only_beneficial_bits() {
        let p = profile(&[
            (tag(1, 8), usage(30, 10)),
            (tag(1, -4), usage(20, 2)),
            (tag(1, 12), usage(2, 50)),
        ]);
        let t = p.hint_table();
        let v = t.get(1).unwrap();
        assert!(v.allows(8));
        assert!(v.allows(-4));
        assert!(!v.allows(12));
        assert!(t.get(99).is_none());
    }

    #[test]
    fn histogram_buckets_match_figure10() {
        let p = profile(&[
            (tag(1, 0), usage(0, 10)),  // 0%   -> bucket 0
            (tag(1, 4), usage(3, 7)),   // 30%  -> bucket 1
            (tag(1, 8), usage(6, 4)),   // 60%  -> bucket 2
            (tag(1, 12), usage(10, 0)), // 100% -> bucket 3
        ]);
        assert_eq!(p.usefulness_histogram(), [1, 1, 1, 1]);
    }

    #[test]
    fn per_load_gates_aggregate_across_pgs() {
        // Load 1: one great PG, one terrible PG with more volume.
        let p = profile(&[
            (tag(1, 8), usage(30, 0)),
            (tag(1, 4), usage(0, 100)),
            (tag(2, 0), usage(50, 10)),
        ]);
        let grp = p.loads_with_beneficial_pg();
        assert!(grp.contains(&1), "GRP gate: any beneficial PG enables");
        assert!(grp.contains(&2));
        let maj = p.majority_useful_loads();
        assert!(!maj.contains(&1), "aggregate accuracy of load 1 is low");
        assert!(maj.contains(&2));
    }

    #[test]
    fn collector_routes_outcomes_by_pg() {
        let (mut c, handle) = PgCollector::new();
        let pg = tag(7, 8);
        c.prefetch_issued(&PrefetchRequest {
            addr: 0x100,
            id: PrefetcherId(1),
            depth: 1,
            pg: Some(pg),
            root_pc: 7,
        });
        c.prefetch_used(0x100, PrefetcherId(1), Some(pg));
        c.prefetch_unused(0x140, PrefetcherId(1), Some(pg));
        c.prefetch_used(0x180, PrefetcherId(1), None); // untagged: ignored
        let map = handle.borrow();
        let u = map.get(&pg).unwrap();
        assert_eq!((u.issued, u.useful, u.useless), (1, 1, 1));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn informing_profiler_agrees_with_simulator_profiler() {
        use workloads::{InputSet, Workload};
        let t = workloads::olden::Mst.generate(InputSet::Train);
        let sim = profile_workload(&t);
        let inf = informing_profile(&t);
        let sim_hints = sim.hint_table();
        let inf_hints = inf.hint_table();
        assert!(!inf_hints.is_empty(), "informing profiler finds hints");
        // Every load the informing profiler enables must also be enabled by
        // the simulator-based profiler (the informing variant is the more
        // conservative of the two).
        for (pc, _) in inf_hints.iter() {
            assert!(
                sim_hints.get(*pc).is_some(),
                "informing-enabled load {pc:#x} unknown to the simulator profiler"
            );
        }
    }

    #[test]
    fn informing_collector_derives_useless_from_issued() {
        let (mut c, handle) = InformingCollector::new();
        let pg = tag(9, 8);
        for _ in 0..10 {
            c.prefetch_issued(&PrefetchRequest {
                addr: 0x100,
                id: PrefetcherId(1),
                depth: 1,
                pg: Some(pg),
                root_pc: 9,
            });
        }
        c.prefetch_used(0x100, PrefetcherId(1), Some(pg));
        // Eviction events are invisible to informing loads:
        c.prefetch_unused(0x140, PrefetcherId(1), Some(pg));
        let mut pgs = handle.borrow().clone();
        for u in pgs.values_mut() {
            u.useless = u.issued.saturating_sub(u.useful);
        }
        let u = pgs[&pg];
        assert_eq!((u.issued, u.useful, u.useless), (10, 1, 9));
    }

    #[test]
    fn end_to_end_profile_finds_beneficial_next_pointers() {
        // The mst stand-in's defining property: next-pointer PGs useful,
        // data-pointer PGs harmful.
        use workloads::{InputSet, Workload};
        let t = workloads::olden::Mst.generate(InputSet::Train);
        let p = profile_workload(&t);
        assert!(!p.pgs.is_empty(), "profiling must observe pointer groups");
        let (beneficial, harmful) = p.counts();
        assert!(beneficial > 0, "mst has useful next chains");
        assert!(harmful > 0, "mst has harmful data pointers");
    }
}
