//! **ECDP** — bandwidth-efficient content-directed prefetching of linked
//! data structures in hybrid prefetching systems.
//!
//! This crate implements the two contributions of Ebrahimi, Mutlu & Patt
//! (HPCA 2009) on top of the `sim-core`/`prefetch`/`throttle` substrate:
//!
//! 1. **Efficient CDP (ECDP)** — a compiler-guided filter for the stateless
//!    content-directed prefetcher. The [`profile`] module plays the role of
//!    the profiling compiler: it runs a workload's *train* input with
//!    unfiltered CDP, attributes every prefetch to its pointer group
//!    `PG(L, X)` (static load `L`, byte offset `X`), measures per-PG
//!    usefulness, and emits per-load **hint bit vectors** ([`hints`]).
//!    At run time the content-directed prefetcher consults the missing
//!    load's hint vector and prefetches only beneficial pointer groups.
//! 2. **Coordinated prefetcher throttling** — re-exported from the
//!    `throttle` crate and wired into complete systems by [`system`], which
//!    assembles every machine configuration evaluated in the paper
//!    (baseline stream, stream+CDP, stream+ECDP, each with and without
//!    coordinated throttling, plus the DBP/Markov/GHB/hardware-filter/FDP/
//!    PAB comparison points).
//!
//! # Quickstart
//!
//! ```
//! use ecdp::profile::profile_workload;
//! use ecdp::system::{CompilerArtifacts, SystemBuilder, SystemKind};
//! use workloads::{registry, InputSet};
//!
//! let wl = registry::lookup("mst").unwrap();
//!
//! // "Compile": profile the train input to classify pointer groups.
//! let train = wl.generate(InputSet::Train);
//! let profile = profile_workload(&train);
//! let artifacts = CompilerArtifacts::from_profile(&profile);
//!
//! // Run the ref input on the full proposal (ECDP + coordinated
//! // throttling) and on the baseline.
//! let reference = wl.generate(InputSet::Ref);
//! let base = SystemBuilder::new(SystemKind::StreamOnly)
//!     .artifacts(&artifacts)
//!     .run(&reference)
//!     .expect("sim");
//! let ours = SystemBuilder::new(SystemKind::StreamEcdpThrottled)
//!     .artifacts(&artifacts)
//!     .run(&reference)
//!     .expect("sim");
//! assert!(ours.stats.ipc() > 0.0 && base.stats.ipc() > 0.0);
//! ```

pub mod cost;
pub mod hints;
pub mod isa;
pub mod profile;
pub mod system;

pub use cost::HardwareCost;
pub use hints::{HintTable, HintVector, HINTS_SCHEMA_VERSION};
pub use profile::{profile_workload, PgProfile, PgUsage};
pub use system::{CompilerArtifacts, SystemBuilder, SystemKind, SystemRun};
