//! Compiler hint bit vectors (paper §3, Figure 6).
//!
//! A hint vector accompanies each static load instruction. If bit `n` of
//! the (positive) vector is set, the pointer group at byte offset `4 × n`
//! from the byte the load accesses is *beneficial* and may be prefetched by
//! the content-directed prefetcher. A second vector encodes negative
//! offsets (footnote 6 of the paper): bit `n` covers offset `-4 × (n + 1)`.
//! With 64-byte blocks and 4-byte pointers each vector is 16 bits.

use std::collections::HashMap;

use prefetch::ScanFilter;
use sim_mem::PTRS_PER_BLOCK;

/// A per-load pair of hint bit vectors (positive and negative offsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HintVector {
    /// Bit `n` allows offset `4 * n` (0..=60).
    pub positive: u16,
    /// Bit `n` allows offset `-4 * (n + 1)` (-4..=-64).
    pub negative: u16,
}

impl HintVector {
    /// A vector allowing every offset (equivalent to unfiltered CDP).
    pub const ALL: HintVector = HintVector {
        positive: u16::MAX,
        negative: u16::MAX,
    };

    /// True if no pointer group is enabled.
    pub fn is_empty(&self) -> bool {
        self.positive == 0 && self.negative == 0
    }

    /// Number of enabled pointer groups.
    pub fn count(&self) -> u32 {
        self.positive.count_ones() + self.negative.count_ones()
    }

    /// Enables the pointer group at byte `offset` (must be word aligned and
    /// within ±`BLOCK_BYTES`).
    ///
    /// # Panics
    ///
    /// Panics if `offset` is not a multiple of 4 or out of range.
    pub fn set(&mut self, offset: i32) {
        assert!(offset.rem_euclid(4) == 0, "offsets are word aligned");
        if offset >= 0 {
            let bit = (offset / 4) as usize;
            assert!(bit < PTRS_PER_BLOCK, "offset {offset} out of range");
            self.positive |= 1 << bit;
        } else {
            let bit = ((-offset) / 4 - 1) as usize;
            assert!(bit < PTRS_PER_BLOCK, "offset {offset} out of range");
            self.negative |= 1 << bit;
        }
    }

    /// True if the pointer group at byte `offset` is beneficial.
    pub fn allows(&self, offset: i32) -> bool {
        if offset % 4 != 0 {
            return false;
        }
        if offset >= 0 {
            let bit = (offset / 4) as usize;
            bit < PTRS_PER_BLOCK && self.positive & (1 << bit) != 0
        } else {
            let bit = ((-offset) / 4) as usize;
            (1..=PTRS_PER_BLOCK).contains(&bit) && self.negative & (1 << (bit - 1)) != 0
        }
    }
}

/// The hint vectors for every profiled static load — the information the
/// paper's new ISA instruction would carry into the pipeline.
///
/// Loads absent from the table produce no content-directed prefetches
/// (the compiler found none of their pointer groups beneficial, or the
/// load never missed during profiling).
#[derive(Debug, Clone, Default)]
pub struct HintTable {
    vectors: HashMap<u32, HintVector>,
}

impl HintTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces the hint vector for load `pc`.
    pub fn insert(&mut self, pc: u32, v: HintVector) {
        self.vectors.insert(pc, v);
    }

    /// The hint vector for `pc`, if the load was profiled.
    pub fn get(&self, pc: u32) -> Option<&HintVector> {
        self.vectors.get(&pc)
    }

    /// Number of loads with hints.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if no load has hints.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Iterates over `(pc, vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&u32, &HintVector)> {
        self.vectors.iter()
    }
}

impl ScanFilter for HintTable {
    fn allow(&self, pc: u32, offset: i32) -> bool {
        self.get(pc).is_some_and(|v| v.allows(offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_offsets_round_trip() {
        let mut v = HintVector::default();
        v.set(0);
        v.set(8);
        v.set(60);
        assert!(v.allows(0));
        assert!(v.allows(8));
        assert!(v.allows(60));
        assert!(!v.allows(4));
        assert_eq!(v.count(), 3);
    }

    #[test]
    fn negative_offsets_round_trip() {
        let mut v = HintVector::default();
        v.set(-4);
        v.set(-64);
        assert!(v.allows(-4));
        assert!(v.allows(-64));
        assert!(!v.allows(-8));
        assert!(!v.allows(4));
    }

    #[test]
    fn unaligned_offsets_never_allowed() {
        let v = HintVector::ALL;
        assert!(!v.allows(3));
        assert!(!v.allows(-5));
        assert!(v.allows(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut v = HintVector::default();
        v.set(64);
    }

    #[test]
    fn all_vector_allows_full_block() {
        let v = HintVector::ALL;
        for n in 0..16 {
            assert!(v.allows(n * 4));
            assert!(v.allows(-(n + 1) * 4));
        }
        assert_eq!(v.count(), 32);
    }

    #[test]
    fn table_filters_by_pc() {
        let mut t = HintTable::new();
        let mut v = HintVector::default();
        v.set(12);
        t.insert(0x100, v);
        assert!(t.allow(0x100, 12));
        assert!(!t.allow(0x100, 8));
        // Unprofiled load: nothing allowed.
        assert!(!t.allow(0x200, 12));
    }

    #[test]
    fn vector_is_16_bits_per_direction() {
        // The paper's Figure 6: 64-byte blocks, 4-byte pointers => 16 bits.
        assert_eq!(PTRS_PER_BLOCK, 16);
        assert_eq!(std::mem::size_of::<HintVector>(), 4);
    }
}
