//! Compiler hint bit vectors (paper §3, Figure 6).
//!
//! A hint vector accompanies each static load instruction. If bit `n` of
//! the (positive) vector is set, the pointer group at byte offset `4 × n`
//! from the byte the load accesses is *beneficial* and may be prefetched by
//! the content-directed prefetcher. A second vector encodes negative
//! offsets (footnote 6 of the paper): bit `n` covers offset `-4 × (n + 1)`.
//! With 64-byte blocks and 4-byte pointers each vector is 16 bits.

use std::collections::HashMap;

use prefetch::ScanFilter;
use sim_core::Json;
use sim_mem::PTRS_PER_BLOCK;

/// Schema version of the hint-table JSON representation. Bump on any
/// change to the field layout; the schema-stability tests pin the exact
/// serialized form for the current version.
pub const HINTS_SCHEMA_VERSION: u64 = 1;

/// A per-load pair of hint bit vectors (positive and negative offsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HintVector {
    /// Bit `n` allows offset `4 * n` (0..=60).
    pub positive: u16,
    /// Bit `n` allows offset `-4 * (n + 1)` (-4..=-64).
    pub negative: u16,
}

impl HintVector {
    /// A vector allowing every offset (equivalent to unfiltered CDP).
    pub const ALL: HintVector = HintVector {
        positive: u16::MAX,
        negative: u16::MAX,
    };

    /// True if no pointer group is enabled.
    pub fn is_empty(&self) -> bool {
        self.positive == 0 && self.negative == 0
    }

    /// Number of enabled pointer groups.
    pub fn count(&self) -> u32 {
        self.positive.count_ones() + self.negative.count_ones()
    }

    /// Enables the pointer group at byte `offset` (must be word aligned and
    /// within ±`BLOCK_BYTES`).
    ///
    /// # Panics
    ///
    /// Panics if `offset` is not a multiple of 4 or out of range.
    pub fn set(&mut self, offset: i32) {
        assert!(offset.rem_euclid(4) == 0, "offsets are word aligned");
        if offset >= 0 {
            let bit = (offset / 4) as usize;
            assert!(bit < PTRS_PER_BLOCK, "offset {offset} out of range");
            self.positive |= 1 << bit;
        } else {
            let bit = ((-offset) / 4 - 1) as usize;
            assert!(bit < PTRS_PER_BLOCK, "offset {offset} out of range");
            self.negative |= 1 << bit;
        }
    }

    /// Serializes to `{"positive": n, "negative": n}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("positive", Json::Num(f64::from(self.positive))),
            ("negative", Json::Num(f64::from(self.negative))),
        ])
    }

    /// Parses the [`HintVector::to_json`] representation. Returns `None`
    /// on missing fields or values outside the 16-bit range.
    pub fn from_json(j: &Json) -> Option<Self> {
        let positive = u16::try_from(j.get("positive")?.as_u64()?).ok()?;
        let negative = u16::try_from(j.get("negative")?.as_u64()?).ok()?;
        Some(HintVector { positive, negative })
    }

    /// True if the pointer group at byte `offset` is beneficial.
    pub fn allows(&self, offset: i32) -> bool {
        if offset % 4 != 0 {
            return false;
        }
        if offset >= 0 {
            let bit = (offset / 4) as usize;
            bit < PTRS_PER_BLOCK && self.positive & (1 << bit) != 0
        } else {
            let bit = ((-offset) / 4) as usize;
            (1..=PTRS_PER_BLOCK).contains(&bit) && self.negative & (1 << (bit - 1)) != 0
        }
    }
}

/// The hint vectors for every profiled static load — the information the
/// paper's new ISA instruction would carry into the pipeline.
///
/// Loads absent from the table produce no content-directed prefetches
/// (the compiler found none of their pointer groups beneficial, or the
/// load never missed during profiling).
#[derive(Debug, Clone, Default)]
pub struct HintTable {
    vectors: HashMap<u32, HintVector>,
}

impl HintTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces the hint vector for load `pc`.
    pub fn insert(&mut self, pc: u32, v: HintVector) {
        self.vectors.insert(pc, v);
    }

    /// The hint vector for `pc`, if the load was profiled.
    pub fn get(&self, pc: u32) -> Option<&HintVector> {
        self.vectors.get(&pc)
    }

    /// Number of loads with hints.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if no load has hints.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Iterates over `(pc, vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&u32, &HintVector)> {
        self.vectors.iter()
    }

    /// Serializes the table, with entries sorted by PC so the output is
    /// deterministic:
    /// `{"schema_version": 1, "hints": [{"pc": n, "positive": n,
    /// "negative": n}, ...]}`.
    pub fn to_json(&self) -> Json {
        let mut pcs: Vec<u32> = self.vectors.keys().copied().collect();
        pcs.sort_unstable();
        let hints: Vec<Json> = pcs
            .into_iter()
            .map(|pc| {
                let v = self.vectors[&pc];
                Json::obj(vec![
                    ("pc", Json::Num(f64::from(pc))),
                    ("positive", Json::Num(f64::from(v.positive))),
                    ("negative", Json::Num(f64::from(v.negative))),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema_version", Json::Num(HINTS_SCHEMA_VERSION as f64)),
            ("hints", Json::Arr(hints)),
        ])
    }

    /// Parses the [`HintTable::to_json`] representation. Returns `None`
    /// on a schema-version mismatch or any malformed entry.
    pub fn from_json(j: &Json) -> Option<Self> {
        if j.get("schema_version")?.as_u64()? != HINTS_SCHEMA_VERSION {
            return None;
        }
        let mut table = HintTable::new();
        for entry in j.get("hints")?.as_arr()? {
            let pc = u32::try_from(entry.get("pc")?.as_u64()?).ok()?;
            table.insert(pc, HintVector::from_json(entry)?);
        }
        Some(table)
    }
}

impl ScanFilter for HintTable {
    fn allow(&self, pc: u32, offset: i32) -> bool {
        self.get(pc).is_some_and(|v| v.allows(offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_offsets_round_trip() {
        let mut v = HintVector::default();
        v.set(0);
        v.set(8);
        v.set(60);
        assert!(v.allows(0));
        assert!(v.allows(8));
        assert!(v.allows(60));
        assert!(!v.allows(4));
        assert_eq!(v.count(), 3);
    }

    #[test]
    fn negative_offsets_round_trip() {
        let mut v = HintVector::default();
        v.set(-4);
        v.set(-64);
        assert!(v.allows(-4));
        assert!(v.allows(-64));
        assert!(!v.allows(-8));
        assert!(!v.allows(4));
    }

    #[test]
    fn unaligned_offsets_never_allowed() {
        let v = HintVector::ALL;
        assert!(!v.allows(3));
        assert!(!v.allows(-5));
        assert!(v.allows(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut v = HintVector::default();
        v.set(64);
    }

    #[test]
    fn all_vector_allows_full_block() {
        let v = HintVector::ALL;
        for n in 0..16 {
            assert!(v.allows(n * 4));
            assert!(v.allows(-(n + 1) * 4));
        }
        assert_eq!(v.count(), 32);
    }

    #[test]
    fn table_filters_by_pc() {
        let mut t = HintTable::new();
        let mut v = HintVector::default();
        v.set(12);
        t.insert(0x100, v);
        assert!(t.allow(0x100, 12));
        assert!(!t.allow(0x100, 8));
        // Unprofiled load: nothing allowed.
        assert!(!t.allow(0x200, 12));
    }

    #[test]
    fn vector_json_round_trips() {
        let mut v = HintVector::default();
        v.set(0);
        v.set(-4);
        v.set(60);
        let back = HintVector::from_json(&v.to_json()).expect("parse");
        assert_eq!(back, v);
        // Through text, too.
        let text = v.to_json().to_string_compact();
        let parsed = Json::parse(&text).expect("valid json");
        assert_eq!(HintVector::from_json(&parsed).expect("parse"), v);
    }

    #[test]
    fn table_json_round_trips() {
        let mut t = HintTable::new();
        let mut v1 = HintVector::default();
        v1.set(12);
        let mut v2 = HintVector::default();
        v2.set(-8);
        v2.set(4);
        t.insert(0x200, v2);
        t.insert(0x100, v1);
        t.insert(0x300, HintVector::ALL);
        let text = t.to_json().to_string_pretty();
        let back = HintTable::from_json(&Json::parse(&text).expect("valid")).expect("parse");
        assert_eq!(back.len(), 3);
        assert_eq!(back.get(0x100), t.get(0x100));
        assert_eq!(back.get(0x200), t.get(0x200));
        assert_eq!(back.get(0x300), Some(&HintVector::ALL));
    }

    #[test]
    fn table_json_schema_is_stable() {
        // Pins the exact serialized form of schema v1: entries sorted by
        // pc, fields in pc/positive/negative order. Any change here is a
        // schema break and must bump HINTS_SCHEMA_VERSION.
        let mut t = HintTable::new();
        let mut v = HintVector::default();
        v.set(8);
        t.insert(0x2000, HintVector::ALL);
        t.insert(0x1000, v);
        assert_eq!(
            t.to_json().to_string_compact(),
            "{\"schema_version\":1,\"hints\":[\
             {\"pc\":4096,\"positive\":4,\"negative\":0},\
             {\"pc\":8192,\"positive\":65535,\"negative\":65535}]}"
        );
    }

    #[test]
    fn malformed_json_is_rejected() {
        for text in [
            "{}",
            "{\"schema_version\":2,\"hints\":[]}",
            "{\"schema_version\":1}",
            "{\"schema_version\":1,\"hints\":[{\"pc\":1}]}",
            "{\"schema_version\":1,\"hints\":[{\"pc\":1,\"positive\":70000,\"negative\":0}]}",
        ] {
            let j = Json::parse(text).expect("syntactically valid");
            assert!(HintTable::from_json(&j).is_none(), "accepted: {text}");
        }
    }

    #[test]
    fn vector_is_16_bits_per_direction() {
        // The paper's Figure 6: 64-byte blocks, 4-byte pointers => 16 bits.
        assert_eq!(PTRS_PER_BLOCK, 16);
        assert_eq!(std::mem::size_of::<HintVector>(), 4);
    }
}
