//! Encoding of the paper's hinted-load instruction.
//!
//! §3 conveys the per-load hint bit vector "as part of the load instruction,
//! using a new instruction added to the target ISA which has enough hint
//! bits in its format to support the bit vector", and footnote 5 notes the
//! addition has "a negligible effect on both code size and instruction cache
//! miss rate". This module models that instruction as a 64-bit word — an
//! 8-bit opcode, the two 16-bit hint vectors (positive and negative
//! offsets), and a checksum byte — plus a code-size-overhead estimator that
//! backs the footnote.

use crate::hints::{HintTable, HintVector};

/// Opcode byte of the hinted-load instruction.
pub const HINTED_LOAD_OPCODE: u8 = 0x8F;

/// Decode failure for a hinted-load instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte is not [`HINTED_LOAD_OPCODE`].
    BadOpcode(u8),
    /// The checksum does not match the payload.
    BadChecksum,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "bad hinted-load opcode {op:#04x}"),
            DecodeError::BadChecksum => write!(f, "hinted-load checksum mismatch"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn checksum(pos: u16, neg: u16) -> u8 {
    let mut c = 0x5Au8;
    for b in pos.to_le_bytes().into_iter().chain(neg.to_le_bytes()) {
        c = c.rotate_left(3) ^ b;
    }
    c
}

/// Encodes a hint vector as a 64-bit hinted-load instruction word.
///
/// Layout (LSB first): opcode(8) | reserved(16) | pos(16) | neg(16) |
/// checksum(8).
pub fn encode(v: HintVector) -> u64 {
    u64::from(HINTED_LOAD_OPCODE)
        | (u64::from(v.positive) << 24)
        | (u64::from(v.negative) << 40)
        | (u64::from(checksum(v.positive, v.negative)) << 56)
}

/// Decodes a hinted-load instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] on a wrong opcode or corrupted payload.
pub fn decode(word: u64) -> Result<HintVector, DecodeError> {
    let opcode = (word & 0xFF) as u8;
    if opcode != HINTED_LOAD_OPCODE {
        return Err(DecodeError::BadOpcode(opcode));
    }
    let pos = ((word >> 24) & 0xFFFF) as u16;
    let neg = ((word >> 40) & 0xFFFF) as u16;
    let sum = ((word >> 56) & 0xFF) as u8;
    if sum != checksum(pos, neg) {
        return Err(DecodeError::BadChecksum);
    }
    Ok(HintVector {
        positive: pos,
        negative: neg,
    })
}

/// Encodes a whole hint table as `(pc, instruction word)` pairs, sorted by
/// PC — the "binary patch" the profiling compiler emits.
pub fn encode_program(table: &HintTable) -> Vec<(u32, u64)> {
    let mut out: Vec<(u32, u64)> = table.iter().map(|(pc, v)| (*pc, encode(*v))).collect();
    out.sort_by_key(|(pc, _)| *pc);
    out
}

/// Estimated code-size overhead of replacing `hinted_loads` ordinary loads
/// with the 8-byte hinted form in a program of `static_instructions`
/// (assumed ~4 bytes each) — footnote 5's "negligible effect".
pub fn code_size_overhead(hinted_loads: usize, static_instructions: usize) -> f64 {
    if static_instructions == 0 {
        return 0.0;
    }
    // Each hinted load grows from ~4 to 8 bytes.
    (hinted_loads * 4) as f64 / (static_instructions * 4) as f64
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut v = HintVector::default();
        v.set(12);
        v.set(-8);
        let word = encode(v);
        assert_eq!(decode(word).unwrap(), v);
    }

    #[test]
    fn wrong_opcode_is_rejected() {
        let word = encode(HintVector::ALL) & !0xFF;
        assert_eq!(decode(word), Err(DecodeError::BadOpcode(0)));
    }

    #[test]
    fn corruption_is_detected() {
        let word = encode(HintVector::ALL) ^ (1 << 30); // flip a payload bit
        assert_eq!(decode(word), Err(DecodeError::BadChecksum));
    }

    #[test]
    fn program_encoding_is_sorted_and_complete() {
        let mut t = HintTable::new();
        let mut v = HintVector::default();
        v.set(8);
        t.insert(0x300, v);
        t.insert(0x100, v);
        let prog = encode_program(&t);
        assert_eq!(prog.len(), 2);
        assert!(prog[0].0 < prog[1].0);
        assert_eq!(decode(prog[0].1).unwrap(), v);
    }

    #[test]
    fn overhead_is_negligible_for_realistic_ratios() {
        // A few dozen hinted loads in a hundred-thousand-instruction binary.
        let overhead = code_size_overhead(50, 100_000);
        assert!(overhead < 0.001, "footnote 5: negligible ({overhead})");
    }
}
