//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the workspace
//! `criterion` dev-dependency points here. Benchmarks compile and run
//! (`cargo bench`) and report a simple mean wall-clock time per
//! iteration; there is no statistical analysis, warm-up tuning, or HTML
//! report. The measurement loop auto-scales the iteration count to
//! roughly the configured target time (400 ms by default).

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted and ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Benchmark driver handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    target_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target_time: Duration::from_millis(400),
            sample_size: 0,
        }
    }
}

fn report(name: &str, iters: u64, elapsed: Duration) {
    let per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    let (value, unit) = if per_iter >= 1e9 {
        (per_iter / 1e9, "s")
    } else if per_iter >= 1e6 {
        (per_iter / 1e6, "ms")
    } else if per_iter >= 1e3 {
        (per_iter / 1e3, "µs")
    } else {
        (per_iter, "ns")
    };
    println!("{name:<40} {value:>10.2} {unit}/iter  ({iters} iters)");
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            target_time: self.target_time,
            min_iters: self.sample_size as u64,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(name, b.iters, b.elapsed);
        self
    }

    /// Starts a named group; the group's benchmarks are reported as
    /// `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: 0,
        }
    }
}

/// A named collection of benchmarks (subset of criterion's group API).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Lower-bounds the number of measured iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            target_time: self.parent.target_time,
            min_iters: self.sample_size as u64,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{name}", self.name), b.iters, b.elapsed);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    target_time: Duration,
    min_iters: u64,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the target measurement time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if iters >= self.min_iters.max(1) && start.elapsed() >= self.target_time {
                break;
            }
            if iters >= 10_000_000 {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup` (setup time excluded).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut iters = 0u64;
        let mut measured = Duration::ZERO;
        let wall = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            measured += t.elapsed();
            iters += 1;
            if iters >= self.min_iters.max(1)
                && (measured >= self.target_time || wall.elapsed() >= 4 * self.target_time)
            {
                break;
            }
            if iters >= 10_000_000 {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = measured;
    }
}

/// Declares the benchmark entry list (subset: plain function names only).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion {
            target_time: Duration::from_millis(1),
            sample_size: 0,
        };
        tiny(&mut c);
        c.bench_function("batched", |b| {
            b.iter_batched(|| 3u32, |x| x * 2, BatchSize::SmallInput)
        });
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("inner", |b| b.iter(|| ()));
        g.finish();
    }
}
