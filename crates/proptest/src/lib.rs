//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the workspace
//! `proptest` dev-dependency points here. The [`proptest!`] macro runs
//! each property for a fixed number of deterministic cases (seeded from
//! the test's module path and name, so failures reproduce exactly across
//! runs and thread counts). There is **no shrinking**: a failing case
//! reports its case index and generated inputs via the panic message.
//!
//! Supported surface:
//!
//! * `proptest! { #[test] fn name(x in strategy, ...) { ... } }`, with an
//!   optional leading `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * integer range strategies (`0u32..64`, `1usize..=8`, `-16i32..16`);
//! * [`collection::vec`] with an exact size or a size range;
//! * tuples of strategies up to arity 4;
//! * [`any`] for integers and `bool`;
//! * `prop_assert!` / `prop_assert_eq!` (panic-based).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

pub mod collection;

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Run-count configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the heavier
        // simulator properties fast in debug test runs while still giving
        // good coverage, since cases are deterministic (not fresh each run).
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for one case of one named property; stable across runs.
    pub fn deterministic(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator (no shrinking).
pub trait Strategy {
    /// Generated value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::SampleRange::sample_one(self.clone(), rng)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::SampleRange::sample_one(self.clone(), rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range");
                let u = <f64 as rand::Standard>::sample(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range");
                let u = <f64 as rand::Standard>::sample(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws a fully random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                <$t as rand::Standard>::sample(rng)
            }
        }
    )*};
}

impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (`any::<u32>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Asserts a condition inside a property (panics with case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            panic!(
                "{} (left: `{:?}`, right: `{:?}`)",
                format!($($fmt)+), a, b
            );
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Defines deterministic property tests. See the crate docs for the
/// supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..u64::from(cfg.cases) {
                let mut __proptest_rng = $crate::TestRng::deterministic(test_name, case);
                $(
                    let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);
                )+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {case}/{} of {test_name} failed \
                         (deterministic seed; rerun reproduces it)",
                        cfg.cases
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0usize..=4, z in -5i32..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-5..5).contains(&z));
        }

        #[test]
        fn vecs_obey_size(v in crate::collection::vec(0u8..4, 2..6), w in crate::collection::vec(any::<u32>(), 7)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 7);
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn tuples_compose(t in (0u32..4, 1u8..3, 0usize..2)) {
            let (a, b, c) = t;
            prop_assert!(a < 4 && (1..3).contains(&b) && c < 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_override_applies(_x in 0u32..10) {
            // Five cases only; nothing to assert beyond successful expansion.
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = Strategy::generate(&(0u64..u64::MAX), &mut TestRng::deterministic("t", 3));
        let b = Strategy::generate(&(0u64..u64::MAX), &mut TestRng::deterministic("t", 3));
        let c = Strategy::generate(&(0u64..u64::MAX), &mut TestRng::deterministic("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
