//! Collection strategies (`proptest::collection` subset).

use crate::{Strategy, TestRng};

/// Inclusive-exclusive element-count bounds for [`vec()`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive; lo + 1 for exact sizes
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of `elem`-generated values.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rand::SampleRange::sample_one(self.size.lo..self.size.hi, rng)
        };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
