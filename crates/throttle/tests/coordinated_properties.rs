//! Property tests for the coordinated throttling heuristic (paper §4.2).
//!
//! Two invariants of the Table 3 decision rule, checked over the whole
//! input space rather than the hand-picked cases in the unit tests:
//!
//! 1. driving a prefetcher's aggressiveness with the decisions can never
//!    leave the four Table 2 levels — `Up`/`Down` saturate at the ends
//!    and every step moves at most one level;
//! 2. at fixed own/rival coverage, the decision is monotone in the
//!    deciding prefetcher's own accuracy (more accurate never throttles
//!    harder).

use proptest::prelude::*;

use sim_core::{Aggressiveness, IntervalFeedback, ThrottleDecision, ThrottlePolicy};
use throttle::CoordinatedThrottle;

fn fb(coverage: f64, accuracy: f64, level: Aggressiveness) -> IntervalFeedback {
    IntervalFeedback {
        accuracy,
        coverage,
        lateness: 0.0,
        pollution: 0.0,
        level,
    }
}

/// Orders decisions by how aggressive they leave the prefetcher:
/// `Down` < `Keep` < `Up`.
fn rank(d: ThrottleDecision) -> u8 {
    match d {
        ThrottleDecision::Down => 0,
        ThrottleDecision::Keep => 1,
        ThrottleDecision::Up => 2,
    }
}

fn apply(level: Aggressiveness, d: ThrottleDecision) -> Aggressiveness {
    match d {
        ThrottleDecision::Up => level.up(),
        ThrottleDecision::Down => level.down(),
        ThrottleDecision::Keep => level,
    }
}

proptest! {
    /// A multi-interval walk driven by the policy stays inside the four
    /// Table 2 levels, saturating at the ends, and never jumps levels.
    #[test]
    fn decisions_never_leave_table2_levels(
        start in 0usize..4,
        intervals in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 1..64),
    ) {
        let mut policy = CoordinatedThrottle::default();
        let mut level = Aggressiveness::ALL[start];
        for (own_cov, own_acc, rival_cov) in intervals {
            let d = policy.adjust(&[
                fb(own_cov, own_acc, level),
                fb(rival_cov, 0.5, Aggressiveness::Moderate),
            ]);
            let next = apply(level, d[0]);
            prop_assert!(Aggressiveness::ALL.contains(&next));
            prop_assert!(
                next.index().abs_diff(level.index()) <= 1,
                "level jumped from {level:?} to {next:?}"
            );
            if level == Aggressiveness::Aggressive {
                prop_assert!(next <= level, "Up must saturate at Aggressive");
            }
            if level == Aggressiveness::VeryConservative {
                prop_assert!(next >= level, "Down must saturate at VeryConservative");
            }
            level = next;
        }
    }

    /// At fixed own and rival coverage, raising the deciding prefetcher's
    /// accuracy never produces a *less* aggressive decision (Table 3 rows
    /// 2→5/3 order).
    #[test]
    fn decision_is_monotone_in_own_accuracy(
        own_cov in 0.0f64..1.0,
        rival_cov in 0.0f64..1.0,
        acc_lo in 0.0f64..1.0,
        acc_hi in 0.0f64..1.0,
    ) {
        let (acc_lo, acc_hi) = if acc_lo <= acc_hi {
            (acc_lo, acc_hi)
        } else {
            (acc_hi, acc_lo)
        };
        let mut policy = CoordinatedThrottle::default();
        let d_lo = policy.adjust(&[
            fb(own_cov, acc_lo, Aggressiveness::Moderate),
            fb(rival_cov, 0.5, Aggressiveness::Moderate),
        ])[0];
        let d_hi = policy.adjust(&[
            fb(own_cov, acc_hi, Aggressiveness::Moderate),
            fb(rival_cov, 0.5, Aggressiveness::Moderate),
        ])[0];
        prop_assert!(
            rank(d_lo) <= rank(d_hi),
            "accuracy {acc_lo:.3} -> {d_lo:?} but {acc_hi:.3} -> {d_hi:?} \
             (cov {own_cov:.3}, rival {rival_cov:.3})"
        );
    }

    /// The decision depends only on the three Table 3 inputs — not on the
    /// current aggressiveness level (the paper's rule is memoryless).
    #[test]
    fn decision_ignores_current_level(
        own_cov in 0.0f64..1.0,
        own_acc in 0.0f64..1.0,
        rival_cov in 0.0f64..1.0,
        level_a in 0usize..4,
        level_b in 0usize..4,
    ) {
        let mut policy = CoordinatedThrottle::default();
        let a = policy.adjust(&[
            fb(own_cov, own_acc, Aggressiveness::ALL[level_a]),
            fb(rival_cov, 0.5, Aggressiveness::Moderate),
        ])[0];
        let b = policy.adjust(&[
            fb(own_cov, own_acc, Aggressiveness::ALL[level_b]),
            fb(rival_cov, 0.5, Aggressiveness::Moderate),
        ])[0];
        prop_assert_eq!(a, b);
    }
}
