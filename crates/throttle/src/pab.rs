//! The PAB-based multi-prefetcher selector of Gendler et al. (§7.4
//! comparison): keep only the most accurate prefetcher on, turn the rest
//! off entirely.
//!
//! Unlike coordinated throttling this scheme 1) ignores coverage, 2) can
//! disable a high-coverage prefetcher that is actually delivering the
//! performance, and 3) switches prefetchers off/on instead of adjusting
//! aggressiveness. The paper reports it *loses* 11% performance on these
//! workloads; the reproduction shows the same failure mode.
//!
//! Since the engine's throttle interface only moves aggressiveness levels,
//! on/off switching is implemented by wrapping each prefetcher in a
//! [`Switchable`] that shares an enable flag with the [`PabSelector`]
//! policy.

use std::cell::Cell;
use std::rc::Rc;

use sim_core::{
    Addr, Aggressiveness, DemandAccess, FillEvent, IntervalFeedback, PgTag, PrefetchCtx,
    Prefetcher, PrefetcherKind, SnapReader, SnapWriter, SnapshotError, ThrottleDecision,
    ThrottlePolicy,
};

/// A prefetcher wrapper with an externally controlled on/off switch.
///
/// While disabled, the wrapped prefetcher still observes events (its tables
/// stay warm, as in the PAB proposal) but its prefetch requests are
/// discarded.
pub struct Switchable {
    inner: Box<dyn Prefetcher>,
    enabled: Rc<Cell<bool>>,
}

impl Switchable {
    /// Wraps `inner`; returns the wrapper and the shared enable flag.
    pub fn new(inner: Box<dyn Prefetcher>) -> (Self, Rc<Cell<bool>>) {
        let flag = Rc::new(Cell::new(true));
        (
            Switchable {
                inner,
                enabled: Rc::clone(&flag),
            },
            flag,
        )
    }

    /// True if prefetch requests currently pass through.
    pub fn is_enabled(&self) -> bool {
        self.enabled.get()
    }

    fn gate(&self, ctx: &mut PrefetchCtx<'_>) {
        if !self.enabled.get() {
            let _ = ctx.take_requests();
        }
    }
}

impl std::fmt::Debug for Switchable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Switchable")
            .field("inner", &self.inner.name())
            .field("enabled", &self.enabled.get())
            .finish()
    }
}

impl Prefetcher for Switchable {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn kind(&self) -> PrefetcherKind {
        self.inner.kind()
    }

    fn on_demand_access(&mut self, ctx: &mut PrefetchCtx<'_>, ev: &DemandAccess) {
        self.inner.on_demand_access(ctx, ev);
        self.gate(ctx);
    }

    fn on_fill(&mut self, ctx: &mut PrefetchCtx<'_>, ev: &FillEvent) {
        self.inner.on_fill(ctx, ev);
        self.gate(ctx);
    }

    fn on_prefetch_outcome(&mut self, block_addr: Addr, pg: Option<PgTag>, used: bool) {
        self.inner.on_prefetch_outcome(block_addr, pg, used);
    }

    fn set_aggressiveness(&mut self, level: Aggressiveness) {
        self.inner.set_aggressiveness(level);
    }

    fn aggressiveness(&self) -> Aggressiveness {
        self.inner.aggressiveness()
    }

    fn save_state(&self, w: &mut SnapWriter) {
        // The enable flag is shared with the PabSelector policy, so
        // restoring it here also restores the selector's view.
        w.bool(self.enabled.get());
        self.inner.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.enabled.set(r.bool()?);
        self.inner.load_state(r)
    }
}

/// The PAB policy: each interval, enable only the prefetcher with the
/// highest accuracy (ties favour the lower index).
pub struct PabSelector {
    flags: Vec<Rc<Cell<bool>>>,
}

impl PabSelector {
    /// Creates the selector over the enable flags returned by
    /// [`Switchable::new`], in prefetcher registration order.
    pub fn new(flags: Vec<Rc<Cell<bool>>>) -> Self {
        PabSelector { flags }
    }
}

impl std::fmt::Debug for PabSelector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PabSelector")
            .field("prefetchers", &self.flags.len())
            .finish()
    }
}

impl ThrottlePolicy for PabSelector {
    fn name(&self) -> &'static str {
        "pab"
    }

    fn adjust(&mut self, feedback: &[IntervalFeedback]) -> Vec<ThrottleDecision> {
        debug_assert_eq!(feedback.len(), self.flags.len());
        let best = feedback
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.accuracy.total_cmp(&b.accuracy))
            .map(|(i, _)| i);
        for (i, flag) in self.flags.iter().enumerate() {
            flag.set(Some(i) == best);
        }
        // Aggressiveness levels are left alone; selection is on/off only.
        vec![ThrottleDecision::Keep; feedback.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct FakePf;
    impl Prefetcher for FakePf {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn kind(&self) -> PrefetcherKind {
            PrefetcherKind::Other
        }
        fn on_demand_access(&mut self, ctx: &mut PrefetchCtx<'_>, ev: &DemandAccess) {
            ctx.request(sim_core::PrefetchRequest {
                addr: ev.addr + 64,
                id: sim_core::PrefetcherId(0),
                depth: 0,
                pg: None,
                root_pc: 0,
            });
        }
    }

    fn fb(accuracy: f64) -> IntervalFeedback {
        IntervalFeedback {
            accuracy,
            coverage: 0.5,
            lateness: 0.0,
            pollution: 0.0,
            level: Aggressiveness::Aggressive,
        }
    }

    #[test]
    fn selector_enables_only_most_accurate() {
        let (_, f0) = Switchable::new(Box::new(FakePf));
        let (_, f1) = Switchable::new(Box::new(FakePf));
        let mut pab = PabSelector::new(vec![Rc::clone(&f0), Rc::clone(&f1)]);
        pab.adjust(&[fb(0.3), fb(0.8)]);
        assert!(!f0.get());
        assert!(f1.get());
        pab.adjust(&[fb(0.9), fb(0.8)]);
        assert!(f0.get());
        assert!(!f1.get());
    }

    #[test]
    fn disabled_prefetcher_emits_nothing() {
        let (mut sw, flag) = Switchable::new(Box::new(FakePf));
        let mem = sim_mem::SimMemory::new();
        let ev = DemandAccess {
            pc: 1,
            addr: 0x4000_0000,
            value: 0,
            hit: false,
            is_store: false,
            cycle: 0,
        };
        let mut ctx = PrefetchCtx::new(&mem, 0);
        sw.on_demand_access(&mut ctx, &ev);
        assert_eq!(ctx.take_requests().len(), 1, "enabled passes through");
        flag.set(false);
        let mut ctx = PrefetchCtx::new(&mem, 0);
        sw.on_demand_access(&mut ctx, &ev);
        assert!(ctx.take_requests().is_empty(), "disabled discards");
    }

    #[test]
    fn decisions_are_always_keep() {
        let (_, f0) = Switchable::new(Box::new(FakePf));
        let mut pab = PabSelector::new(vec![f0]);
        assert_eq!(pab.adjust(&[fb(0.5)]), vec![ThrottleDecision::Keep]);
    }
}
