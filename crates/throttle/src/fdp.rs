//! Feedback-Directed Prefetching (Srinath et al., HPCA 2007) — the
//! uncoordinated baseline the paper compares coordinated throttling against
//! in §6.5.
//!
//! FDP throttles each prefetcher *individually* from three signals:
//! prefetch accuracy (two thresholds), lateness (one threshold) and
//! cache-pollution (one threshold) — six tunables in total counting the
//! two levels each signal classifies into. Crucially, a prefetcher's
//! decision never considers the other prefetcher's behaviour, which is the
//! structural reason it loses to coordinated throttling on hybrid systems.
//!
//! Decision table (after Srinath et al., Table 5):
//!
//! | Accuracy | Late? | Polluting? | Decision |
//! |----------|-------|------------|----------|
//! | High     | yes   | —          | Up       |
//! | High     | no    | —          | Keep     |
//! | Medium   | yes   | no         | Up       |
//! | Medium   | yes   | yes        | Down     |
//! | Medium   | no    | yes        | Down     |
//! | Medium   | no    | no         | Keep     |
//! | Low      | —     | yes        | Down     |
//! | Low      | —     | no         | Down     |

use sim_core::{IntervalFeedback, ThrottleDecision, ThrottlePolicy};

/// FDP's threshold set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FdpThresholds {
    /// Accuracy at or above which accuracy is "high".
    pub accuracy_high: f64,
    /// Accuracy below which accuracy is "low".
    pub accuracy_low: f64,
    /// Fraction of used prefetches arriving late above which the prefetcher
    /// is "late".
    pub lateness: f64,
    /// Pollution events per demand miss above which the prefetcher is
    /// "polluting".
    pub pollution: f64,
}

impl Default for FdpThresholds {
    fn default() -> Self {
        // Accuracy thresholds from the FDP paper; lateness/pollution adapted
        // to this simulator's counters (see DESIGN.md).
        FdpThresholds {
            accuracy_high: 0.75,
            accuracy_low: 0.40,
            lateness: 0.10,
            pollution: 0.05,
        }
    }
}

/// The FDP throttling policy. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct FdpThrottle {
    thresholds: FdpThresholds,
}

impl FdpThrottle {
    /// Creates the policy with the given thresholds.
    pub fn new(thresholds: FdpThresholds) -> Self {
        FdpThrottle { thresholds }
    }

    fn decide(&self, f: &IntervalFeedback) -> ThrottleDecision {
        let t = &self.thresholds;
        let late = f.lateness > t.lateness;
        let polluting = f.pollution > t.pollution;
        if f.accuracy >= t.accuracy_high {
            if late {
                ThrottleDecision::Up
            } else {
                ThrottleDecision::Keep
            }
        } else if f.accuracy >= t.accuracy_low {
            match (late, polluting) {
                (true, false) => ThrottleDecision::Up,
                (_, true) => ThrottleDecision::Down,
                (false, false) => ThrottleDecision::Keep,
            }
        } else {
            ThrottleDecision::Down
        }
    }
}

impl ThrottlePolicy for FdpThrottle {
    fn name(&self) -> &'static str {
        "fdp"
    }

    fn adjust(&mut self, feedback: &[IntervalFeedback]) -> Vec<ThrottleDecision> {
        // Each prefetcher is throttled independently: no cross-prefetcher
        // inputs, by design.
        feedback.iter().map(|f| self.decide(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Aggressiveness;

    fn fb(accuracy: f64, lateness: f64, pollution: f64) -> IntervalFeedback {
        IntervalFeedback {
            accuracy,
            coverage: 0.5,
            lateness,
            pollution,
            level: Aggressiveness::Moderate,
        }
    }

    fn p() -> FdpThrottle {
        FdpThrottle::new(FdpThresholds::default())
    }

    #[test]
    fn accurate_and_late_throttles_up() {
        assert_eq!(p().adjust(&[fb(0.9, 0.5, 0.0)]), vec![ThrottleDecision::Up]);
    }

    #[test]
    fn accurate_and_timely_keeps() {
        assert_eq!(
            p().adjust(&[fb(0.9, 0.0, 0.0)]),
            vec![ThrottleDecision::Keep]
        );
    }

    #[test]
    fn inaccurate_always_throttles_down() {
        assert_eq!(
            p().adjust(&[fb(0.1, 0.0, 0.0)]),
            vec![ThrottleDecision::Down]
        );
        assert_eq!(
            p().adjust(&[fb(0.1, 0.9, 0.9)]),
            vec![ThrottleDecision::Down]
        );
    }

    #[test]
    fn medium_accuracy_polluting_throttles_down() {
        assert_eq!(
            p().adjust(&[fb(0.5, 0.5, 0.5)]),
            vec![ThrottleDecision::Down]
        );
        assert_eq!(
            p().adjust(&[fb(0.5, 0.0, 0.5)]),
            vec![ThrottleDecision::Down]
        );
    }

    #[test]
    fn medium_accuracy_late_clean_throttles_up() {
        assert_eq!(p().adjust(&[fb(0.5, 0.5, 0.0)]), vec![ThrottleDecision::Up]);
    }

    #[test]
    fn decisions_are_independent_per_prefetcher() {
        // A terrible rival does not change the first prefetcher's decision —
        // the defining difference from coordinated throttling.
        let alone = p().adjust(&[fb(0.9, 0.5, 0.0)])[0];
        let with_rival = p().adjust(&[fb(0.9, 0.5, 0.0), fb(0.01, 0.0, 0.9)])[0];
        assert_eq!(alone, with_rival);
    }
}
