//! A recording decorator for throttling policies: captures the feedback and
//! decisions of every sampling interval for post-run analysis (the data
//! behind the paper's phase-behaviour discussion in §6.1.1).

use std::cell::RefCell;
use std::rc::Rc;

use sim_core::{Aggressiveness, IntervalFeedback, ThrottleDecision, ThrottlePolicy};

/// One recorded sampling interval.
#[derive(Debug, Clone)]
pub struct IntervalRecord {
    /// Interval index (0-based).
    pub interval: u64,
    /// Feedback per prefetcher, in registration order.
    pub feedback: Vec<IntervalFeedback>,
    /// Decision per prefetcher.
    pub decisions: Vec<ThrottleDecision>,
}

/// Wraps any [`ThrottlePolicy`] and records every interval.
///
/// # Example
///
/// ```
/// use throttle::{CoordinatedThrottle, Recorder};
/// use sim_core::ThrottlePolicy;
///
/// let (mut policy, log) = Recorder::new(CoordinatedThrottle::default());
/// let _ = policy.adjust(&[]);
/// assert_eq!(log.borrow().len(), 1);
/// ```
pub struct Recorder<P> {
    inner: P,
    log: Rc<RefCell<Vec<IntervalRecord>>>,
}

impl<P: ThrottlePolicy> Recorder<P> {
    /// Wraps `inner`; returns the recorder and a shared handle to the log.
    #[allow(clippy::type_complexity)]
    pub fn new(inner: P) -> (Self, Rc<RefCell<Vec<IntervalRecord>>>) {
        let log = Rc::new(RefCell::new(Vec::new()));
        (
            Recorder {
                inner,
                log: Rc::clone(&log),
            },
            log,
        )
    }
}

impl<P> std::fmt::Debug for Recorder<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("intervals", &self.log.borrow().len())
            .finish()
    }
}

impl<P: ThrottlePolicy> ThrottlePolicy for Recorder<P> {
    fn name(&self) -> &'static str {
        "recorded"
    }

    fn adjust(&mut self, feedback: &[IntervalFeedback]) -> Vec<ThrottleDecision> {
        let decisions = self.inner.adjust(feedback);
        let mut log = self.log.borrow_mut();
        let interval = log.len() as u64;
        log.push(IntervalRecord {
            interval,
            feedback: feedback.to_vec(),
            decisions: decisions.clone(),
        });
        decisions
    }
}

/// Reconstructs the aggressiveness level trajectory of one prefetcher from
/// a recorded log, starting from `initial`.
pub fn level_trajectory(
    log: &[IntervalRecord],
    prefetcher: usize,
    initial: Aggressiveness,
) -> Vec<Aggressiveness> {
    let mut level = initial;
    let mut out = vec![level];
    for rec in log {
        if let Some(d) = rec.decisions.get(prefetcher) {
            level = match d {
                ThrottleDecision::Up => level.up(),
                ThrottleDecision::Down => level.down(),
                ThrottleDecision::Keep => level,
            };
        }
        out.push(level);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoordinatedThrottle;

    fn fb(cov: f64, acc: f64) -> IntervalFeedback {
        IntervalFeedback {
            accuracy: acc,
            coverage: cov,
            lateness: 0.0,
            pollution: 0.0,
            level: Aggressiveness::Aggressive,
        }
    }

    #[test]
    fn records_every_interval() {
        let (mut p, log) = Recorder::new(CoordinatedThrottle::default());
        p.adjust(&[fb(0.5, 0.9), fb(0.1, 0.1)]);
        p.adjust(&[fb(0.5, 0.9), fb(0.1, 0.1)]);
        let log = log.borrow();
        assert_eq!(log.len(), 2);
        assert_eq!(log[1].interval, 1);
        assert_eq!(log[0].decisions.len(), 2);
    }

    #[test]
    fn trajectory_follows_decisions() {
        let (mut p, log) = Recorder::new(CoordinatedThrottle::default());
        // Prefetcher 1: low coverage, low accuracy => Down every interval.
        for _ in 0..5 {
            p.adjust(&[fb(0.9, 0.9), fb(0.05, 0.1)]);
        }
        let log = log.borrow();
        let levels = level_trajectory(&log, 1, Aggressiveness::Aggressive);
        assert_eq!(levels.len(), 6);
        assert_eq!(*levels.last().unwrap(), Aggressiveness::VeryConservative);
        // Prefetcher 0 is case 1: pinned at the top.
        let up = level_trajectory(&log, 0, Aggressiveness::Aggressive);
        assert!(up.iter().all(|&l| l == Aggressiveness::Aggressive));
    }
}
