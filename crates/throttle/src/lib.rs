//! Prefetcher throttling policies for the hybrid prefetching system.
//!
//! * [`CoordinatedThrottle`] — the paper's contribution (§4): both
//!   prefetchers adjust their aggressiveness each sampling interval based on
//!   their own accuracy and coverage *and the rival prefetcher's coverage*,
//!   following the five-case heuristic table (paper Table 3) with the
//!   thresholds of Table 4.
//! * [`FdpThrottle`] — Feedback-Directed Prefetching (Srinath et al., HPCA
//!   2007): per-prefetcher throttling from accuracy, lateness and pollution,
//!   with *no* coordination between prefetchers — the §6.5 comparison.
//! * [`PabSelector`] + [`Switchable`] — Gendler et al.'s
//!   most-accurate-prefetcher-only scheme (§7.4): every interval, all
//!   prefetchers except the most accurate one are turned off entirely.

pub mod coordinated;
pub mod fdp;
pub mod pab;

pub use coordinated::{CoordinatedThrottle, Thresholds};
pub use fdp::{FdpThresholds, FdpThrottle};
pub use pab::{PabSelector, Switchable};
