//! Coordinated prefetcher throttling — the paper's §4.2.
//!
//! Every sampling interval, each prefetcher (the *deciding* prefetcher)
//! makes a throttling decision from three inputs: its own coverage, its own
//! accuracy, and the *rival* prefetcher's coverage:
//!
//! | Case | Own coverage | Own accuracy    | Rival coverage | Decision |
//! |------|--------------|-----------------|----------------|----------|
//! | 1    | High         | —               | —              | Up       |
//! | 2    | Low          | Low             | —              | Down     |
//! | 3    | Low          | Medium or High  | Low            | Up       |
//! | 4    | Low          | Low or Medium   | High           | Down     |
//! | 5    | Low          | High            | High           | Keep     |
//!
//! With more than two prefetchers, the rival coverage is the maximum
//! coverage among the other prefetchers (the paper notes the scheme is
//! prefetcher-symmetric and extensible this way).

use sim_core::{
    DecisionTrace, IntervalFeedback, SnapReader, SnapWriter, SnapshotError, ThrottleDecision,
    ThrottlePolicy,
};

/// The thresholds of the paper's Table 4.
///
/// This is the shared `sim_core` const table
/// ([`sim_core::TABLE4_THRESHOLDS`]), re-exported under its historical
/// name so the policy and the validate subsystem's Table 3 re-derivation
/// can never disagree on the values.
pub use sim_core::ThrottleThresholds as Thresholds;

/// The coordinated throttling policy. See the module docs.
///
/// # Example
///
/// ```
/// use throttle::CoordinatedThrottle;
/// use sim_core::ThrottlePolicy;
///
/// let policy = CoordinatedThrottle::new(Default::default());
/// assert_eq!(policy.name(), "coordinated");
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoordinatedThrottle {
    thresholds: Thresholds,
    /// Case number + rival coverage behind the most recent `adjust`
    /// decisions, exposed through `ThrottlePolicy::decision_trace` for
    /// the observability layer.
    last_trace: Vec<DecisionTrace>,
}

impl CoordinatedThrottle {
    /// Creates the policy with the given thresholds (use
    /// `Thresholds::default()` for the paper's values).
    pub fn new(thresholds: Thresholds) -> Self {
        CoordinatedThrottle {
            thresholds,
            last_trace: Vec::new(),
        }
    }

    /// The Table 3 decision for one prefetcher, with the case number
    /// (1–5) that fired. Delegates to the shared
    /// [`sim_core::ThrottleThresholds::classify`] table.
    fn decide(
        &self,
        own_coverage: f64,
        own_accuracy: f64,
        rival_coverage: f64,
    ) -> (ThrottleDecision, u8) {
        self.thresholds
            .classify(own_coverage, own_accuracy, rival_coverage)
    }
}

impl ThrottlePolicy for CoordinatedThrottle {
    fn name(&self) -> &'static str {
        "coordinated"
    }

    fn adjust(&mut self, feedback: &[IntervalFeedback]) -> Vec<ThrottleDecision> {
        self.last_trace.clear();
        feedback
            .iter()
            .enumerate()
            .map(|(i, own)| {
                let rival_coverage = feedback
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, f)| f.coverage)
                    .fold(0.0, f64::max);
                let (decision, case) = self.decide(own.coverage, own.accuracy, rival_coverage);
                self.last_trace.push(DecisionTrace {
                    case,
                    rival_coverage,
                });
                decision
            })
            .collect()
    }

    fn decision_trace(&self) -> Option<&[DecisionTrace]> {
        Some(&self.last_trace)
    }

    fn save_state(&self, w: &mut SnapWriter) {
        // Thresholds come from construction; only the last interval's
        // decision trace is run state.
        w.u32(self.last_trace.len() as u32);
        for t in &self.last_trace {
            w.u8(t.case);
            w.f64(t.rival_coverage);
        }
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let n = r.u32()? as usize;
        self.last_trace.clear();
        for _ in 0..n {
            self.last_trace.push(DecisionTrace {
                case: r.u8()?,
                rival_coverage: r.f64()?,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Aggressiveness;

    fn fb(coverage: f64, accuracy: f64) -> IntervalFeedback {
        IntervalFeedback {
            accuracy,
            coverage,
            lateness: 0.0,
            pollution: 0.0,
            level: Aggressiveness::Moderate,
        }
    }

    fn policy() -> CoordinatedThrottle {
        CoordinatedThrottle::new(Thresholds::default())
    }

    #[test]
    fn case1_high_coverage_throttles_up() {
        // Regardless of accuracy and rival.
        let d = policy().adjust(&[fb(0.5, 0.1), fb(0.9, 0.9)]);
        assert_eq!(d, vec![ThrottleDecision::Up, ThrottleDecision::Up]);
    }

    #[test]
    fn case2_low_coverage_low_accuracy_throttles_down() {
        let d = policy().adjust(&[fb(0.1, 0.2), fb(0.1, 0.2)]);
        assert_eq!(d, vec![ThrottleDecision::Down, ThrottleDecision::Down]);
    }

    #[test]
    fn case3_low_rival_gives_chance_to_accurate_prefetcher() {
        // Own: low cov, medium acc; rival: low cov.
        let d = policy().adjust(&[fb(0.1, 0.5), fb(0.05, 0.1)]);
        assert_eq!(d[0], ThrottleDecision::Up);
        // High accuracy too.
        let d = policy().adjust(&[fb(0.1, 0.9), fb(0.05, 0.1)]);
        assert_eq!(d[0], ThrottleDecision::Up);
    }

    #[test]
    fn case4_medium_accuracy_yields_to_high_coverage_rival() {
        let d = policy().adjust(&[fb(0.1, 0.5), fb(0.6, 0.9)]);
        assert_eq!(d[0], ThrottleDecision::Down);
        assert_eq!(d[1], ThrottleDecision::Up, "rival is case 1");
    }

    #[test]
    fn case5_high_accuracy_with_strong_rival_keeps() {
        let d = policy().adjust(&[fb(0.1, 0.9), fb(0.6, 0.9)]);
        assert_eq!(d[0], ThrottleDecision::Keep);
    }

    #[test]
    fn thresholds_match_paper_table4() {
        let t = Thresholds::default();
        assert_eq!(t.coverage, 0.2);
        assert_eq!(t.accuracy_low, 0.4);
        assert_eq!(t.accuracy_high, 0.7);
        // The policy consumes the shared sim-core const table verbatim.
        assert_eq!(t, sim_core::TABLE4_THRESHOLDS);
    }

    #[test]
    fn boundary_values_classify_as_documented() {
        use sim_core::AccuracyClass;
        let p = policy();
        // accuracy == A_high is high; accuracy == A_low is medium.
        assert_eq!(p.thresholds.accuracy_class(0.7), AccuracyClass::High);
        assert_eq!(p.thresholds.accuracy_class(0.4), AccuracyClass::Medium);
        assert_eq!(p.thresholds.accuracy_class(0.39), AccuracyClass::Low);
        // coverage == T_coverage is high: case 1.
        assert_eq!(p.decide(0.2, 0.0, 0.0), (ThrottleDecision::Up, 1));
    }

    #[test]
    fn decision_trace_reports_case_numbers_and_rival_coverage() {
        let mut p = policy();
        assert!(
            p.decision_trace().expect("always classifies").is_empty(),
            "no adjust yet"
        );
        // Idx 0: low cov, medium acc, rival high => case 4 Down.
        // Idx 1: high cov => case 1 Up.
        let d = p.adjust(&[fb(0.1, 0.5), fb(0.6, 0.9)]);
        assert_eq!(d, vec![ThrottleDecision::Down, ThrottleDecision::Up]);
        let trace = p.decision_trace().expect("recorded");
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].case, 4);
        assert!((trace[0].rival_coverage - 0.6).abs() < 1e-12);
        assert_eq!(trace[1].case, 1);
        assert!((trace[1].rival_coverage - 0.1).abs() < 1e-12);
        // All five cases classify as documented.
        assert_eq!(p.decide(0.5, 0.0, 0.0).1, 1);
        assert_eq!(p.decide(0.1, 0.2, 0.0).1, 2);
        assert_eq!(p.decide(0.1, 0.5, 0.1).1, 3);
        assert_eq!(p.decide(0.1, 0.5, 0.6).1, 4);
        assert_eq!(p.decide(0.1, 0.9, 0.6).1, 5);
        // The trace is replaced, not appended, on the next adjust.
        p.adjust(&[fb(0.5, 0.5)]);
        assert_eq!(p.decision_trace().expect("recorded").len(), 1);
    }

    #[test]
    fn three_prefetchers_use_max_rival_coverage() {
        // Own (idx 0): low cov, high acc. Rivals: one low, one high
        // coverage. Max rival coverage is high => case 5 Keep.
        let d = policy().adjust(&[fb(0.1, 0.9), fb(0.05, 0.5), fb(0.8, 0.9)]);
        assert_eq!(d[0], ThrottleDecision::Keep);
    }

    #[test]
    fn single_prefetcher_has_zero_rival_coverage() {
        // Only one prefetcher: rival coverage 0 => case 3 for med/high acc.
        let d = policy().adjust(&[fb(0.1, 0.9)]);
        assert_eq!(d, vec![ThrottleDecision::Up]);
    }
}
