//! Sparse page-granular simulated memory.

use std::sync::Arc;

use crate::{Addr, BLOCK_BYTES};

const PAGE_SHIFT: u32 = 12;
/// Size of one simulated memory page in bytes (the CoW sharing granule).
pub const PAGE_BYTES: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_BYTES as u32) - 1;
/// Number of pages in the 32-bit address space.
const NUM_PAGES: usize = 1 << (32 - PAGE_SHIFT);

/// Pages are reference-counted so cloning a memory image is a
/// page-*table* copy, not a page-*data* copy; writes un-share lazily.
type Page = Arc<[u8; PAGE_BYTES]>;

/// A sparse, byte-addressable simulated 32-bit memory.
///
/// Pages are allocated lazily on first write; reads of untouched memory
/// return zero, which conveniently never looks like a heap pointer to the
/// CDP compare-bits predictor.
///
/// Cloning is copy-on-write: the clone shares every resident page with
/// the original, and either side transparently un-shares a page the
/// first time it writes to it. Clones therefore behave exactly like deep
/// copies while costing only a page-table copy — which is what lets the
/// engine treat `trace.initial_memory.clone()` as a cheap per-run
/// snapshot restore.
///
/// All multi-byte accessors are little-endian (the modelled ISA is x86) and
/// impose no alignment requirements.
///
/// # Example
///
/// ```
/// use sim_mem::SimMemory;
///
/// let mut mem = SimMemory::new();
/// mem.write_u32(0x4000_0000, 42);
/// assert_eq!(mem.read_u32(0x4000_0000), 42);
/// assert_eq!(mem.read_u32(0x5000_0000), 0); // untouched => zero
/// ```
pub struct SimMemory {
    pages: Vec<Option<Page>>,
    resident: usize,
}

impl SimMemory {
    /// Creates an empty memory with no resident pages.
    pub fn new() -> Self {
        let mut pages = Vec::new();
        pages.resize_with(NUM_PAGES, || None);
        SimMemory { pages, resident: 0 }
    }

    /// Number of 4 KB pages currently resident (lazily allocated).
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// Indices of the resident 4 KB pages (page `i` spans addresses
    /// `i * 4096 .. (i + 1) * 4096`), in ascending order.
    pub fn resident_page_indices(&self) -> Vec<u32> {
        self.pages
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Raw bytes of the resident page `index` (see
    /// [`SimMemory::resident_page_indices`]), or `None` if the page was
    /// never touched. Used by the warm-state snapshot serializer.
    pub fn page_bytes(&self, index: u32) -> Option<&[u8]> {
        self.pages
            .get(index as usize)
            .and_then(|p| p.as_ref())
            .map(|p| p.as_slice())
    }

    /// Installs a full page image at `index`, allocating it if absent.
    ///
    /// Returns `false` (without touching memory) if `index` is out of
    /// range or `data` is not exactly [`PAGE_BYTES`] long — the snapshot
    /// decoder turns that into a structured error instead of panicking.
    pub fn install_page(&mut self, index: u32, data: &[u8]) -> bool {
        let Some(slot) = self.pages.get_mut(index as usize) else {
            return false;
        };
        let Ok(page) = <&[u8; PAGE_BYTES]>::try_from(data) else {
            return false;
        };
        if slot.is_none() {
            self.resident += 1;
        }
        *slot = Some(Arc::new(*page));
        true
    }

    #[inline]
    fn page_index(addr: Addr) -> usize {
        (addr >> PAGE_SHIFT) as usize
    }

    #[inline]
    fn page(&self, addr: Addr) -> Option<&Page> {
        self.pages[Self::page_index(addr)].as_ref()
    }

    #[inline]
    fn page_mut(&mut self, addr: Addr) -> &mut [u8; PAGE_BYTES] {
        let idx = Self::page_index(addr);
        if self.pages[idx].is_none() {
            self.pages[idx] = Some(Arc::new([0u8; PAGE_BYTES]));
            self.resident += 1;
        }
        // Copy-on-write: un-share the page if a clone still references it.
        let page = self.pages[idx].as_mut().expect("page allocated above");
        Arc::make_mut(page)
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: Addr) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: Addr, value: u8) {
        let p = self.page_mut(addr);
        p[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads a little-endian `u16` (no alignment requirement).
    pub fn read_u16(&self, addr: Addr) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: Addr, value: u16) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Reads a little-endian `u32` (no alignment requirement).
    #[inline]
    pub fn read_u32(&self, addr: Addr) -> u32 {
        // Fast path: the access does not straddle a page boundary.
        if (addr & PAGE_MASK) <= PAGE_MASK - 3 {
            match self.page(addr) {
                Some(p) => {
                    let off = (addr & PAGE_MASK) as usize;
                    let bytes = p[off..off + 4].try_into().expect("4-byte slice");
                    u32::from_le_bytes(bytes)
                }
                None => 0,
            }
        } else {
            u32::from_le_bytes([
                self.read_u8(addr),
                self.read_u8(addr.wrapping_add(1)),
                self.read_u8(addr.wrapping_add(2)),
                self.read_u8(addr.wrapping_add(3)),
            ])
        }
    }

    /// Writes a little-endian `u32`.
    #[inline]
    pub fn write_u32(&mut self, addr: Addr, value: u32) {
        if (addr & PAGE_MASK) <= PAGE_MASK - 3 {
            let p = self.page_mut(addr);
            let off = (addr & PAGE_MASK) as usize;
            p[off..off + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            for (i, b) in value.to_le_bytes().iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), *b);
            }
        }
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        (self.read_u32(addr) as u64) | ((self.read_u32(addr.wrapping_add(4)) as u64) << 32)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        self.write_u32(addr, value as u32);
        self.write_u32(addr.wrapping_add(4), (value >> 32) as u32);
    }

    /// Copies the cache block containing `addr` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != BLOCK_BYTES`.
    pub fn read_block(&self, addr: Addr, buf: &mut [u8]) {
        assert_eq!(buf.len(), BLOCK_BYTES as usize, "block buffer size");
        let base = crate::block_of(addr);
        // A 64-byte block never straddles a 4 KB page.
        match self.page(base) {
            Some(p) => {
                let off = (base & PAGE_MASK) as usize;
                buf.copy_from_slice(&p[off..off + BLOCK_BYTES as usize]);
            }
            None => buf.fill(0),
        }
    }

    /// Reads the 16 pointer-sized little-endian words of the cache block
    /// containing `addr`.
    ///
    /// This is the view of a fetched block that the content-directed
    /// prefetcher scans for candidate virtual addresses.
    pub fn read_block_words(&self, addr: Addr) -> [u32; crate::PTRS_PER_BLOCK] {
        let base = crate::block_of(addr);
        let mut words = [0u32; crate::PTRS_PER_BLOCK];
        if let Some(p) = self.page(base) {
            let off = (base & PAGE_MASK) as usize;
            for (i, w) in words.iter_mut().enumerate() {
                let o = off + i * 4;
                let bytes = p[o..o + 4].try_into().expect("4-byte slice");
                *w = u32::from_le_bytes(bytes);
            }
        }
        words
    }
}

impl Default for SimMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for SimMemory {
    /// Copy-on-write clone: shares every resident page with `self`.
    fn clone(&self) -> Self {
        SimMemory {
            pages: self.pages.clone(),
            resident: self.resident,
        }
    }

    /// Restores `self` to `source`'s contents, reusing `self`'s existing
    /// page-table allocation (the engine's rewind path calls this every
    /// multi-core replay).
    fn clone_from(&mut self, source: &Self) {
        self.pages.clone_from(&source.pages);
        self.resident = source.resident;
    }
}

impl std::fmt::Debug for SimMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimMemory")
            .field("resident_pages", &self.resident)
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let mem = SimMemory::new();
        assert_eq!(mem.read_u8(0), 0);
        assert_eq!(mem.read_u32(0xFFFF_FFF0), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn rw_roundtrip_u8_u16_u32_u64() {
        let mut mem = SimMemory::new();
        mem.write_u8(0x100, 0xAB);
        assert_eq!(mem.read_u8(0x100), 0xAB);
        mem.write_u16(0x200, 0xBEEF);
        assert_eq!(mem.read_u16(0x200), 0xBEEF);
        mem.write_u32(0x300, 0xDEAD_BEEF);
        assert_eq!(mem.read_u32(0x300), 0xDEAD_BEEF);
        mem.write_u64(0x400, 0x0123_4567_89AB_CDEF);
        assert_eq!(mem.read_u64(0x400), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn unaligned_u32_crossing_page_boundary() {
        let mut mem = SimMemory::new();
        let addr = 0x1FFE; // straddles 0x1000..0x2000 page boundary
        mem.write_u32(addr, 0x1122_3344);
        assert_eq!(mem.read_u32(addr), 0x1122_3344);
        assert_eq!(mem.read_u8(0x1FFE), 0x44);
        assert_eq!(mem.read_u8(0x2001), 0x11);
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = SimMemory::new();
        mem.write_u32(0x500, 0x0102_0304);
        assert_eq!(mem.read_u8(0x500), 0x04);
        assert_eq!(mem.read_u8(0x503), 0x01);
    }

    #[test]
    fn read_block_contents() {
        let mut mem = SimMemory::new();
        let base = 0x4000_0040;
        for i in 0..16u32 {
            mem.write_u32(base + i * 4, 0x4000_0000 + i);
        }
        let mut buf = [0u8; 64];
        mem.read_block(base + 20, &mut buf); // any addr in block
        assert_eq!(
            u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            0x4000_0000
        );
        let words = mem.read_block_words(base + 63);
        assert_eq!(words[15], 0x4000_000F);
    }

    #[test]
    fn read_block_untouched_is_zero() {
        let mem = SimMemory::new();
        let words = mem.read_block_words(0x7000_0000);
        assert!(words.iter().all(|&w| w == 0));
    }

    #[test]
    fn clone_is_deep() {
        let mut a = SimMemory::new();
        a.write_u32(0x100, 7);
        let b = a.clone();
        a.write_u32(0x100, 9);
        assert_eq!(b.read_u32(0x100), 7);
        assert_eq!(a.read_u32(0x100), 9);
    }

    #[test]
    fn cow_clone_shares_pages_until_written() {
        let mut a = SimMemory::new();
        a.write_u32(0x100, 7);
        a.write_u32(0x2000, 8);
        let b = a.clone();
        // Pages are physically shared right after the clone.
        assert!(Arc::ptr_eq(
            a.pages[0].as_ref().unwrap(),
            b.pages[0].as_ref().unwrap()
        ));
        // A write un-shares only the touched page.
        let mut c = b.clone();
        c.write_u8(0x101, 9);
        assert!(!Arc::ptr_eq(
            b.pages[0].as_ref().unwrap(),
            c.pages[0].as_ref().unwrap()
        ));
        assert!(Arc::ptr_eq(
            b.pages[2].as_ref().unwrap(),
            c.pages[2].as_ref().unwrap()
        ));
        assert_eq!(b.read_u8(0x101), 0);
        assert_eq!(c.read_u8(0x101), 9);
        assert_eq!(c.read_u32(0x2000), 8);
    }

    #[test]
    fn clone_from_restores_snapshot() {
        let mut snapshot = SimMemory::new();
        snapshot.write_u32(0x100, 7);
        let mut working = snapshot.clone();
        working.write_u32(0x100, 9);
        working.write_u32(0x9000, 1); // extra page beyond the snapshot
        working.clone_from(&snapshot);
        assert_eq!(working.read_u32(0x100), 7);
        assert_eq!(working.read_u32(0x9000), 0);
        assert_eq!(working.resident_pages(), snapshot.resident_pages());
    }

    #[test]
    fn resident_page_accounting() {
        let mut mem = SimMemory::new();
        mem.write_u8(0x0, 1);
        mem.write_u8(0x1, 1); // same page
        assert_eq!(mem.resident_pages(), 1);
        mem.write_u8(0x1000, 1);
        assert_eq!(mem.resident_pages(), 2);
    }
}
