//! A simple heap allocator for the simulated address space.
//!
//! Workload stand-ins allocate their linked-data-structure nodes through
//! [`Heap`], which mimics the behaviour of a real `malloc` closely enough for
//! the effects the paper depends on: consecutive allocations of equal-sized
//! nodes are laid out contiguously (so several nodes share a cache block, as
//! in the paper's Figure 3/5 examples), and freed nodes are recycled through
//! size-class free lists (so long-running workloads fragment their layout the
//! way real programs do — the reason the paper says pointers are "almost
//! always" at a constant offset).

use crate::Addr;

/// Allocation failure: the heap region is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapExhausted {
    /// Size of the allocation that failed, in bytes.
    pub requested: u32,
}

impl std::fmt::Display for HeapExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulated heap exhausted allocating {} bytes",
            self.requested
        )
    }
}

impl std::error::Error for HeapExhausted {}

/// Alignment of every heap allocation, in bytes.
pub const HEAP_ALIGN: u32 = 8;

const NUM_SIZE_CLASSES: usize = 64;

/// A bump allocator with size-class free lists over a region of the simulated
/// address space.
///
/// # Example
///
/// ```
/// use sim_mem::{Heap, layout};
///
/// let mut heap = Heap::new(layout::HEAP_BASE, layout::HEAP_LIMIT);
/// let a = heap.alloc(24).unwrap();
/// let b = heap.alloc(24).unwrap();
/// assert_eq!(b, a + 24); // equal-size allocations are contiguous
/// heap.free(a, 24);
/// let c = heap.alloc(24).unwrap();
/// assert_eq!(c, a); // freed node recycled
/// ```
#[derive(Debug, Clone)]
pub struct Heap {
    base: Addr,
    limit: Addr,
    brk: Addr,
    /// Free lists indexed by size class (size / HEAP_ALIGN, capped).
    free: Vec<Vec<Addr>>,
    allocated: u64,
    live: u64,
}

impl Heap {
    /// Creates a heap spanning `[base, limit]`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not `HEAP_ALIGN`-aligned or `base >= limit`.
    pub fn new(base: Addr, limit: Addr) -> Self {
        assert_eq!(base % HEAP_ALIGN, 0, "heap base must be aligned");
        assert!(base < limit, "heap base must precede limit");
        Heap {
            base,
            limit,
            brk: base,
            free: vec![Vec::new(); NUM_SIZE_CLASSES],
            allocated: 0,
            live: 0,
        }
    }

    /// First address of the heap region.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Current high-water mark (first never-allocated address).
    pub fn brk(&self) -> Addr {
        self.brk
    }

    /// Total bytes handed out over the heap's lifetime.
    pub fn total_allocated(&self) -> u64 {
        self.allocated
    }

    /// Bytes currently live (allocated and not freed).
    pub fn live_bytes(&self) -> u64 {
        self.live
    }

    fn size_class(size: u32) -> Option<usize> {
        let cls = (size / HEAP_ALIGN) as usize;
        (cls < NUM_SIZE_CLASSES).then_some(cls)
    }

    fn round_up(size: u32) -> u32 {
        size.div_ceil(HEAP_ALIGN) * HEAP_ALIGN
    }

    /// Allocates `size` bytes (rounded up to [`HEAP_ALIGN`]).
    ///
    /// Recycles a freed chunk of the same size class when one is available,
    /// otherwise bumps the high-water mark.
    ///
    /// # Errors
    ///
    /// Returns [`HeapExhausted`] if the region cannot fit the allocation.
    pub fn alloc(&mut self, size: u32) -> Result<Addr, HeapExhausted> {
        let size = Self::round_up(size.max(HEAP_ALIGN));
        if let Some(cls) = Self::size_class(size) {
            if let Some(addr) = self.free[cls].pop() {
                self.allocated += u64::from(size);
                self.live += u64::from(size);
                return Ok(addr);
            }
        }
        let addr = self.brk;
        let end = addr
            .checked_add(size)
            .ok_or(HeapExhausted { requested: size })?;
        if end > self.limit {
            return Err(HeapExhausted { requested: size });
        }
        self.brk = end;
        self.allocated += u64::from(size);
        self.live += u64::from(size);
        Ok(addr)
    }

    /// Allocates `size` bytes, skipping `pad` bytes of padding first.
    ///
    /// Used by workloads to perturb node layout (dynamic allocation noise),
    /// exercising the paper's footnote 3: layouts where pointers are *not*
    /// at a perfectly constant offset.
    ///
    /// # Errors
    ///
    /// Returns [`HeapExhausted`] if the region cannot fit the allocation.
    pub fn alloc_padded(&mut self, size: u32, pad: u32) -> Result<Addr, HeapExhausted> {
        if pad > 0 {
            let _ = self.alloc(pad)?;
        }
        self.alloc(size)
    }

    /// Returns `addr` (of a `size`-byte allocation) to the free list.
    ///
    /// The allocator trusts the caller: freeing an address that was never
    /// allocated simply seeds the free list with it.
    pub fn free(&mut self, addr: Addr, size: u32) {
        let size = Self::round_up(size.max(HEAP_ALIGN));
        self.live = self.live.saturating_sub(u64::from(size));
        if let Some(cls) = Self::size_class(size) {
            self.free[cls].push(addr);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::layout;

    fn heap() -> Heap {
        Heap::new(layout::HEAP_BASE, layout::HEAP_LIMIT)
    }

    #[test]
    fn sequential_allocations_are_contiguous() {
        let mut h = heap();
        let a = h.alloc(32).unwrap();
        let b = h.alloc(32).unwrap();
        let c = h.alloc(32).unwrap();
        assert_eq!(b, a + 32);
        assert_eq!(c, b + 32);
    }

    #[test]
    fn allocations_are_aligned() {
        let mut h = heap();
        let a = h.alloc(5).unwrap();
        let b = h.alloc(7).unwrap();
        assert_eq!(a % HEAP_ALIGN, 0);
        assert_eq!(b % HEAP_ALIGN, 0);
        assert_eq!(b - a, 8); // 5 rounds up to 8
    }

    #[test]
    fn free_then_alloc_recycles() {
        let mut h = heap();
        let a = h.alloc(48).unwrap();
        let _b = h.alloc(48).unwrap();
        h.free(a, 48);
        assert_eq!(h.alloc(48).unwrap(), a);
    }

    #[test]
    fn different_size_classes_do_not_mix() {
        let mut h = heap();
        let a = h.alloc(16).unwrap();
        h.free(a, 16);
        let b = h.alloc(32).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut h = Heap::new(layout::HEAP_BASE, layout::HEAP_BASE + 64);
        assert!(h.alloc(32).is_ok());
        assert!(h.alloc(32).is_ok());
        let err = h.alloc(32).unwrap_err();
        assert_eq!(err.requested, 32);
    }

    #[test]
    fn accounting_tracks_live_and_total() {
        let mut h = heap();
        let a = h.alloc(64).unwrap();
        assert_eq!(h.total_allocated(), 64);
        assert_eq!(h.live_bytes(), 64);
        h.free(a, 64);
        assert_eq!(h.live_bytes(), 0);
        assert_eq!(h.total_allocated(), 64);
    }

    #[test]
    fn padded_alloc_skips_space() {
        let mut h = heap();
        let a = h.alloc(16).unwrap();
        let b = h.alloc_padded(16, 8).unwrap();
        assert_eq!(b, a + 16 + 8);
    }
}
