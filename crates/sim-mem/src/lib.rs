//! Simulated 32-bit memory substrate for the ECDP reproduction.
//!
//! The content-directed prefetcher (CDP) of Cooksey et al. — and the
//! bandwidth-efficient ECDP variant built on top of it — work by scanning the
//! *bytes* of fetched cache blocks for values that look like virtual
//! addresses. Reproducing that behaviour requires workloads whose linked data
//! structures actually live in a simulated address space, with real pointer
//! values stored at real offsets. This crate provides that substrate:
//!
//! * [`SimMemory`] — a sparse, page-granular 32-bit byte-addressable memory.
//! * [`Heap`] — a simple first-fit heap allocator carving nodes out of the
//!   simulated address space, with optional allocation "noise" to perturb
//!   layout the way real allocators do.
//! * [`builders`] — helpers that construct the linked data structures the
//!   benchmark stand-ins traverse (lists, binary trees, hash tables,
//!   quadtrees, adjacency graphs).
//!
//! # Example
//!
//! ```
//! use sim_mem::{SimMemory, Heap, layout};
//!
//! let mut mem = SimMemory::new();
//! let mut heap = Heap::new(layout::HEAP_BASE, layout::HEAP_LIMIT);
//! let node = heap.alloc(16).expect("heap exhausted");
//! mem.write_u32(node + 8, 0xdead_beef);
//! assert_eq!(mem.read_u32(node + 8), 0xdead_beef);
//! ```

pub mod builders;
pub mod heap;
pub mod layout;
pub mod memory;

pub use heap::Heap;
pub use memory::SimMemory;

/// A simulated 32-bit virtual address.
///
/// The paper models the x86 ISA, where pointers are 4 bytes; every address in
/// the simulated machine fits in a `u32`. Pointer-sized values read out of
/// cache blocks are also `u32`, which is what the CDP compare-bits check
/// operates on.
pub type Addr = u32;

/// Size of a simulated cache block in bytes.
///
/// The paper's hint-bit-vector example (§3) uses 64-byte blocks with 4-byte
/// pointers, giving 16-bit hint vectors; the FDP comparison (§6.5) also uses
/// 64-byte blocks. We use 64 bytes throughout.
pub const BLOCK_BYTES: u32 = 64;

/// Number of 4-byte pointer slots in one cache block.
pub const PTRS_PER_BLOCK: usize = (BLOCK_BYTES / 4) as usize;

/// Returns the address of the cache block containing `addr`.
#[inline]
pub fn block_of(addr: Addr) -> Addr {
    addr & !(BLOCK_BYTES - 1)
}

/// Returns the byte offset of `addr` within its cache block.
#[inline]
pub fn block_offset(addr: Addr) -> u32 {
    addr & (BLOCK_BYTES - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_masks_low_bits() {
        assert_eq!(block_of(0x1000), 0x1000);
        assert_eq!(block_of(0x103f), 0x1000);
        assert_eq!(block_of(0x1040), 0x1040);
    }

    #[test]
    fn block_offset_is_low_bits() {
        assert_eq!(block_offset(0x1000), 0);
        assert_eq!(block_offset(0x103f), 63);
    }

    #[test]
    fn ptrs_per_block_matches_paper() {
        // 64-byte block, 4-byte pointers => 16 candidate slots, matching the
        // 16-bit hint bit vector of the paper's Figure 6.
        assert_eq!(PTRS_PER_BLOCK, 16);
    }
}
