//! Builders for the linked data structures traversed by the benchmark
//! stand-ins.
//!
//! Each builder allocates nodes from a [`Heap`] and writes real pointer
//! values into [`SimMemory`], so that fetched cache blocks contain the
//! pointer bytes the content-directed prefetcher scans for. Node layouts
//! mirror the paper's examples: the `mst`-style hash node of Figure 5
//! (`key`, data elements, `next`) and the binary tree node of Figure 3
//! (`data`, `left`, `right`).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::heap::HeapExhausted;
use crate::{Addr, Heap, SimMemory};

/// A singly linked list whose node layout is `{ payload[words], next }`.
#[derive(Debug, Clone)]
pub struct LinkedList {
    /// Address of the first node, or 0 for an empty list.
    pub head: Addr,
    /// All node addresses in list order.
    pub nodes: Vec<Addr>,
    /// Byte offset of the `next` pointer within a node.
    pub next_offset: u32,
    /// Node size in bytes.
    pub node_size: u32,
}

/// Builds a linked list of `len` nodes with `payload_words` 4-byte payload
/// words followed by a `next` pointer.
///
/// If `shuffle` is true the nodes are allocated in one order and linked in a
/// random order, destroying spatial locality (the pointer-chasing pattern a
/// stream prefetcher cannot cover).
///
/// # Errors
///
/// Returns [`HeapExhausted`] if the heap cannot fit the list.
pub fn build_list(
    mem: &mut SimMemory,
    heap: &mut Heap,
    len: usize,
    payload_words: u32,
    shuffle: bool,
    rng: &mut StdRng,
) -> Result<LinkedList, HeapExhausted> {
    let node_size = (payload_words + 1) * 4;
    let next_offset = payload_words * 4;
    let mut nodes = Vec::with_capacity(len);
    for _ in 0..len {
        nodes.push(heap.alloc(node_size)?);
    }
    if shuffle {
        nodes.shuffle(rng);
    }
    for (i, &n) in nodes.iter().enumerate() {
        for w in 0..payload_words {
            mem.write_u32(n + w * 4, rng.gen());
        }
        let next = if i + 1 < len { nodes[i + 1] } else { 0 };
        mem.write_u32(n + next_offset, next);
    }
    Ok(LinkedList {
        head: nodes.first().copied().unwrap_or(0),
        nodes,
        next_offset,
        node_size,
    })
}

/// A binary tree with the Figure 3 node layout:
/// `{ data: u32, pad: u32, left: Addr, pad: u32, right: Addr, pad... }`.
#[derive(Debug, Clone)]
pub struct BinaryTree {
    /// Address of the root node, or 0 for an empty tree.
    pub root: Addr,
    /// All node addresses in allocation (BFS) order.
    pub nodes: Vec<Addr>,
    /// Node size in bytes.
    pub node_size: u32,
}

/// Byte offset of the `data` field in a [`BinaryTree`] node.
pub const TREE_DATA_OFFSET: u32 = 0;
/// Byte offset of the `left` child pointer in a [`BinaryTree`] node.
pub const TREE_LEFT_OFFSET: u32 = 8;
/// Byte offset of the `right` child pointer in a [`BinaryTree`] node.
pub const TREE_RIGHT_OFFSET: u32 = 16;
/// Size in bytes of a [`BinaryTree`] node (three used words, 8-byte spaced).
pub const TREE_NODE_SIZE: u32 = 24;

/// Builds a complete binary tree of the given `depth` (a tree of depth 1 is
/// a single node). Nodes are allocated in BFS order, so siblings tend to be
/// contiguous and several nodes share each cache block — the layout of the
/// paper's Figure 3(b).
///
/// # Errors
///
/// Returns [`HeapExhausted`] if the heap cannot fit the tree.
pub fn build_binary_tree(
    mem: &mut SimMemory,
    heap: &mut Heap,
    depth: u32,
    rng: &mut StdRng,
) -> Result<BinaryTree, HeapExhausted> {
    let count = (1usize << depth) - 1;
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        nodes.push(heap.alloc(TREE_NODE_SIZE)?);
    }
    for (i, &n) in nodes.iter().enumerate() {
        mem.write_u32(n + TREE_DATA_OFFSET, rng.gen());
        let l = 2 * i + 1;
        let r = 2 * i + 2;
        mem.write_u32(n + TREE_LEFT_OFFSET, if l < count { nodes[l] } else { 0 });
        mem.write_u32(n + TREE_RIGHT_OFFSET, if r < count { nodes[r] } else { 0 });
    }
    Ok(BinaryTree {
        root: nodes.first().copied().unwrap_or(0),
        nodes,
        node_size: TREE_NODE_SIZE,
    })
}

/// A chained hash table with the Figure 5 node layout:
/// `{ key: u32, data: [u32; data_words], next: Addr }`.
#[derive(Debug, Clone)]
pub struct HashTable {
    /// Address of the bucket-pointer array (one `Addr` per bucket).
    pub buckets: Addr,
    /// Number of buckets.
    pub num_buckets: u32,
    /// Keys inserted, in insertion order.
    pub keys: Vec<u32>,
    /// Number of 4-byte data words between `key` and `next`.
    pub data_words: u32,
    /// Node size in bytes.
    pub node_size: u32,
}

impl HashTable {
    /// Byte offset of the `key` field.
    pub const KEY_OFFSET: u32 = 0;
    /// Byte offset of the first data word.
    pub const DATA_OFFSET: u32 = 4;
    /// Byte offset of the `next` pointer.
    pub fn next_offset(&self) -> u32 {
        4 + self.data_words * 4
    }
    /// Bucket index for `key` (multiplicative hash).
    pub fn bucket_of(&self, key: u32) -> u32 {
        (key.wrapping_mul(2654435761)) % self.num_buckets
    }
    /// Address of the bucket-head slot for `key`.
    pub fn bucket_slot(&self, key: u32) -> Addr {
        self.buckets + self.bucket_of(key) * 4
    }
}

/// Builds a chained hash table of `num_keys` random keys over `num_buckets`
/// buckets, each node carrying `data_words` data words (the harmful pointer
/// groups PG1/PG2 of the paper's Figure 5 when `data_words >= 2`... the data
/// slots hold heap-looking pointers to per-node satellite records).
///
/// # Errors
///
/// Returns [`HeapExhausted`] if the heap cannot fit the table.
pub fn build_hash_table(
    mem: &mut SimMemory,
    heap: &mut Heap,
    num_buckets: u32,
    num_keys: u32,
    data_words: u32,
    rng: &mut StdRng,
) -> Result<HashTable, HeapExhausted> {
    build_hash_table_with_ratio(mem, heap, num_buckets, num_keys, data_words, 1.0, rng)
}

/// [`build_hash_table`] with control over the fraction of data words that
/// actually hold satellite pointers (the rest are written as zero /
/// immediate values). Lower ratios model nodes whose payload is usually
/// inline, keeping the chain's pointer groups above the beneficial bar.
///
/// # Errors
///
/// Returns [`HeapExhausted`] if the heap cannot fit the table.
pub fn build_hash_table_with_ratio(
    mem: &mut SimMemory,
    heap: &mut Heap,
    num_buckets: u32,
    num_keys: u32,
    data_words: u32,
    sat_ratio: f64,
    rng: &mut StdRng,
) -> Result<HashTable, HeapExhausted> {
    let node_size = (2 + data_words) * 4;
    let buckets = heap.alloc(num_buckets * 4)?;
    for b in 0..num_buckets {
        mem.write_u32(buckets + b * 4, 0);
    }
    let mut table = HashTable {
        buckets,
        num_buckets,
        keys: Vec::with_capacity(num_keys as usize),
        data_words,
        node_size,
    };
    // Nodes are allocated in one phase and satellite records in another, as
    // real programs do (build the table, then attach payloads). This keeps
    // satellites out of the node cache blocks — prefetching a node's data
    // pointer really does fetch a block the chain walk never touches.
    let mut nodes = Vec::with_capacity(num_keys as usize);
    for _ in 0..num_keys {
        nodes.push(heap.alloc(node_size)?);
    }
    for node in nodes {
        let key: u32 = rng.gen();
        mem.write_u32(node + HashTable::KEY_OFFSET, key);
        // Data words hold pointers to satellite records: real heap addresses,
        // so CDP sees them as prefetch candidates (the harmful PGs).
        for w in 0..data_words {
            let val = if rng.gen_bool(sat_ratio) {
                heap.alloc(32)?
            } else {
                0
            };
            mem.write_u32(node + HashTable::DATA_OFFSET + w * 4, val);
        }
        // Push-front into the bucket chain.
        let slot = table.bucket_slot(key);
        let old_head = mem.read_u32(slot);
        mem.write_u32(node + table.next_offset(), old_head);
        mem.write_u32(slot, node);
        table.keys.push(key);
    }
    Ok(table)
}

/// A quadtree with node layout `{ value: u32, children: [Addr; 4], pad }`.
#[derive(Debug, Clone)]
pub struct QuadTree {
    /// Address of the root node.
    pub root: Addr,
    /// All node addresses in BFS order.
    pub nodes: Vec<Addr>,
    /// Node size in bytes.
    pub node_size: u32,
}

/// Byte offset of the `value` field in a [`QuadTree`] node.
pub const QUAD_VALUE_OFFSET: u32 = 0;
/// Byte offset of the first child pointer in a [`QuadTree`] node.
pub const QUAD_CHILD_OFFSET: u32 = 4;
/// Size in bytes of a [`QuadTree`] node.
pub const QUAD_NODE_SIZE: u32 = 24;

/// Builds a complete quadtree of the given `depth` (depth 1 is a leaf-only
/// root). All four children of an interior node are visited by the
/// `perimeter`-style traversal, which is why CDP is highly accurate there.
///
/// # Errors
///
/// Returns [`HeapExhausted`] if the heap cannot fit the tree.
pub fn build_quadtree(
    mem: &mut SimMemory,
    heap: &mut Heap,
    depth: u32,
    rng: &mut StdRng,
) -> Result<QuadTree, HeapExhausted> {
    // Number of nodes in a complete 4-ary tree: (4^depth - 1) / 3.
    let count = ((4u64.pow(depth) - 1) / 3) as usize;
    // Each sibling group of four children is allocated contiguously (the
    // construction recursion allocates them together), but the groups
    // themselves land in scattered order — siblings share cache blocks
    // (content-directed scans harvest all four child pointers usefully)
    // while the depth-first traversal presents no streamable address
    // pattern.
    let num_groups = count / 4;
    let mut groups = Vec::with_capacity(num_groups);
    for _ in 0..num_groups {
        groups.push(heap.alloc(4 * QUAD_NODE_SIZE)?);
    }
    groups.shuffle(rng);
    let root = heap.alloc(QUAD_NODE_SIZE)?;
    let mut nodes = Vec::with_capacity(count);
    nodes.push(root);
    for &group in &groups {
        for k in 0..4u32 {
            nodes.push(group + k * QUAD_NODE_SIZE);
        }
    }
    for (i, &n) in nodes.iter().enumerate() {
        mem.write_u32(n + QUAD_VALUE_OFFSET, rng.gen::<u32>() & 0xFFFF);
        for c in 0..4usize {
            let child = 4 * i + c + 1;
            let val = if child < count { nodes[child] } else { 0 };
            mem.write_u32(n + QUAD_CHILD_OFFSET + (c as u32) * 4, val);
        }
    }
    Ok(QuadTree {
        root: nodes[0],
        nodes,
        node_size: QUAD_NODE_SIZE,
    })
}

/// A directed graph stored as per-node adjacency lists of pointers.
///
/// Node layout: `{ value: u32, degree: u32, adj: [Addr; max_degree] }`.
#[derive(Debug, Clone)]
pub struct Graph {
    /// All node addresses.
    pub nodes: Vec<Addr>,
    /// Maximum out-degree (size of the adjacency array).
    pub max_degree: u32,
    /// Node size in bytes.
    pub node_size: u32,
}

impl Graph {
    /// Byte offset of the `value` field.
    pub const VALUE_OFFSET: u32 = 0;
    /// Byte offset of the `degree` field.
    pub const DEGREE_OFFSET: u32 = 4;
    /// Byte offset of the first adjacency pointer.
    pub const ADJ_OFFSET: u32 = 8;
}

/// Builds a random directed graph of `num_nodes` nodes with out-degree
/// uniform in `1..=max_degree`. Used by the `mcf`-style network traversal.
///
/// # Errors
///
/// Returns [`HeapExhausted`] if the heap cannot fit the graph.
pub fn build_graph(
    mem: &mut SimMemory,
    heap: &mut Heap,
    num_nodes: usize,
    max_degree: u32,
    rng: &mut StdRng,
) -> Result<Graph, HeapExhausted> {
    let node_size = 8 + max_degree * 4;
    let mut nodes = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        nodes.push(heap.alloc(node_size)?);
    }
    for &n in &nodes {
        mem.write_u32(n + Graph::VALUE_OFFSET, rng.gen());
        let degree = rng.gen_range(1..=max_degree);
        mem.write_u32(n + Graph::DEGREE_OFFSET, degree);
        for d in 0..max_degree {
            let target = if d < degree {
                nodes[rng.gen_range(0..num_nodes)]
            } else {
                0
            };
            mem.write_u32(n + Graph::ADJ_OFFSET + d * 4, target);
        }
    }
    Ok(Graph {
        nodes,
        max_degree,
        node_size,
    })
}

/// Creates a deterministic RNG for workload construction.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::layout;

    fn setup() -> (SimMemory, Heap, StdRng) {
        (
            SimMemory::new(),
            Heap::new(layout::HEAP_BASE, layout::HEAP_LIMIT),
            seeded_rng(42),
        )
    }

    #[test]
    fn list_is_walkable() {
        let (mut mem, mut heap, mut rng) = setup();
        let list = build_list(&mut mem, &mut heap, 100, 3, false, &mut rng).unwrap();
        let mut cur = list.head;
        let mut count = 0;
        while cur != 0 {
            count += 1;
            cur = mem.read_u32(cur + list.next_offset);
        }
        assert_eq!(count, 100);
    }

    #[test]
    fn shuffled_list_visits_all_nodes() {
        let (mut mem, mut heap, mut rng) = setup();
        let list = build_list(&mut mem, &mut heap, 50, 1, true, &mut rng).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut cur = list.head;
        while cur != 0 {
            assert!(seen.insert(cur), "cycle in list");
            cur = mem.read_u32(cur + list.next_offset);
        }
        assert_eq!(seen.len(), 50);
    }

    #[test]
    fn tree_structure_is_complete() {
        let (mut mem, mut heap, mut rng) = setup();
        let tree = build_binary_tree(&mut mem, &mut heap, 5, &mut rng).unwrap();
        assert_eq!(tree.nodes.len(), 31);
        // Count nodes by recursive walk.
        fn count(mem: &SimMemory, node: Addr) -> usize {
            if node == 0 {
                return 0;
            }
            1 + count(mem, mem.read_u32(node + TREE_LEFT_OFFSET))
                + count(mem, mem.read_u32(node + TREE_RIGHT_OFFSET))
        }
        assert_eq!(count(&mem, tree.root), 31);
    }

    #[test]
    fn tree_nodes_share_cache_blocks() {
        let (mut mem, mut heap, mut rng) = setup();
        let tree = build_binary_tree(&mut mem, &mut heap, 4, &mut rng).unwrap();
        // 24-byte nodes: at least two nodes per 64-byte block somewhere.
        let b0 = crate::block_of(tree.nodes[0]);
        let b1 = crate::block_of(tree.nodes[1]);
        assert_eq!(b0, b1);
    }

    #[test]
    fn hash_table_lookup_finds_every_key() {
        let (mut mem, mut heap, mut rng) = setup();
        let table = build_hash_table(&mut mem, &mut heap, 64, 500, 2, &mut rng).unwrap();
        for &key in &table.keys {
            let mut node = mem.read_u32(table.bucket_slot(key));
            let mut found = false;
            while node != 0 {
                if mem.read_u32(node + HashTable::KEY_OFFSET) == key {
                    found = true;
                    break;
                }
                node = mem.read_u32(node + table.next_offset());
            }
            assert!(found, "key {key:#x} missing from chain");
        }
    }

    #[test]
    fn hash_table_data_words_are_heap_pointers() {
        let (mut mem, mut heap, mut rng) = setup();
        let table = build_hash_table(&mut mem, &mut heap, 16, 50, 2, &mut rng).unwrap();
        let node = mem.read_u32(table.buckets); // some bucket may be empty
        let mut any = node;
        for b in 0..table.num_buckets {
            any = mem.read_u32(table.buckets + b * 4);
            if any != 0 {
                break;
            }
        }
        assert_ne!(any, 0);
        let d0 = mem.read_u32(any + HashTable::DATA_OFFSET);
        assert!(
            layout::in_heap(d0),
            "data word should be a satellite pointer"
        );
    }

    #[test]
    fn quadtree_children_link_correctly() {
        let (mut mem, mut heap, mut rng) = setup();
        let qt = build_quadtree(&mut mem, &mut heap, 3, &mut rng).unwrap();
        assert_eq!(qt.nodes.len(), 21); // 1 + 4 + 16
        let c0 = mem.read_u32(qt.root + QUAD_CHILD_OFFSET);
        assert_eq!(c0, qt.nodes[1]);
        // Leaves have null children.
        let leaf = qt.nodes[20];
        for c in 0..4 {
            assert_eq!(mem.read_u32(leaf + QUAD_CHILD_OFFSET + c * 4), 0);
        }
    }

    #[test]
    fn graph_adjacency_within_bounds() {
        let (mut mem, mut heap, mut rng) = setup();
        let g = build_graph(&mut mem, &mut heap, 200, 4, &mut rng).unwrap();
        let set: std::collections::HashSet<_> = g.nodes.iter().copied().collect();
        for &n in &g.nodes {
            let degree = mem.read_u32(n + Graph::DEGREE_OFFSET);
            assert!((1..=4).contains(&degree));
            for d in 0..degree {
                let t = mem.read_u32(n + Graph::ADJ_OFFSET + d * 4);
                assert!(set.contains(&t), "adjacency must point at a node");
            }
        }
    }
}
