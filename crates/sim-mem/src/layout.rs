//! Address-space layout of the simulated machine.
//!
//! The CDP virtual-address-matching predictor relies on the observation that
//! most heap pointers share their high-order bits with the address of the
//! cache block they are stored in (the paper's *compare bits*, 8 in the
//! evaluated configuration). We therefore place the heap in a region whose
//! top byte is constant (`0x40`), so that pointers into the heap match blocks
//! in the heap, while global and stack addresses have distinct top bytes.

use crate::Addr;

/// Base of the global/static data region (top byte `0x08`).
pub const GLOBAL_BASE: Addr = 0x0800_0000;
/// Exclusive upper bound of the global region.
pub const GLOBAL_LIMIT: Addr = 0x08FF_FFFF;

/// Base of the heap region (top byte `0x40`).
///
/// All linked-data-structure nodes are allocated here, so intra-heap pointers
/// always share the top 8 bits with heap cache-block addresses and are
/// recognised by the CDP compare-bits predictor.
pub const HEAP_BASE: Addr = 0x4000_0000;
/// Exclusive upper bound of the heap region (16 MB region, one compare-byte).
pub const HEAP_LIMIT: Addr = 0x40FF_FFFF;

/// Base of the downward-growing stack region (top byte `0x7F`).
pub const STACK_BASE: Addr = 0x7FFF_F000;

/// Number of high-order bits compared by the CDP pointer predictor.
///
/// Matches the configuration of §5: "Our CDP implementation uses 8 bits (out
/// of the 32 bits of an address) for the *number of compare bits* parameter."
pub const DEFAULT_COMPARE_BITS: u32 = 8;

/// Returns `true` if `addr` lies inside the simulated heap region.
#[inline]
pub fn in_heap(addr: Addr) -> bool {
    (HEAP_BASE..=HEAP_LIMIT).contains(&addr)
}

/// Returns `true` if `addr` lies inside the global/static region.
#[inline]
pub fn in_global(addr: Addr) -> bool {
    (GLOBAL_BASE..=GLOBAL_LIMIT).contains(&addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_pointers_share_compare_bits() {
        let a = HEAP_BASE + 0x1234;
        let b = HEAP_LIMIT - 0x40;
        let shift = 32 - DEFAULT_COMPARE_BITS;
        assert_eq!(a >> shift, b >> shift);
    }

    #[test]
    fn regions_do_not_overlap() {
        let (global_limit, heap_base) = (GLOBAL_LIMIT, HEAP_BASE);
        let (heap_limit, stack_base) = (HEAP_LIMIT, STACK_BASE);
        assert!(global_limit < heap_base);
        assert!(heap_limit < stack_base);
    }

    #[test]
    fn in_heap_bounds() {
        assert!(in_heap(HEAP_BASE));
        assert!(in_heap(HEAP_LIMIT));
        assert!(!in_heap(HEAP_BASE - 1));
        assert!(!in_heap(0));
    }
}
