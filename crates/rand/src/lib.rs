//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the workspace
//! `rand` dependency points here. Only the call surface the workloads and
//! builders actually exercise is provided: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! The generator is SplitMix64 — deterministic, seed-stable and of ample
//! quality for synthetic workload generation. Streams differ from the
//! real `rand::rngs::StdRng` (ChaCha12), which only shifts which concrete
//! synthetic inputs the workloads produce; all golden results in this
//! repository were generated against this implementation.

pub mod rngs;
pub mod seq;

/// Core random-number source: 64 random bits per step.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding constructors (API-compatible with `rand::SeedableRng` for the
/// forms used here).
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array in real `rand`).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from all bit patterns (the role of
/// `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % width;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (xa, xb, xc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(3..=5);
            assert!((3..=5).contains(&w));
            let s: i32 = rng.gen_range(-16i32..16);
            assert!((-16..16).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn choose_from_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
