//! Slice helpers (the `rand::seq::SliceRandom` subset).

use crate::{RngCore, SampleRange};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_one(&mut *rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_one(&mut *rng)])
        }
    }
}
