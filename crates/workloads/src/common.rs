//! Shared scaffolding for workload construction.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_core::TraceBuilder;
use sim_mem::{layout, Heap, SimMemory};

use crate::InputSet;

/// Construction context for a workload: a trace builder over fresh memory,
/// a heap, and a deterministic RNG derived from the workload seed and input
/// set.
pub struct Ctx {
    /// Trace builder (functional execution + recording).
    pub tb: TraceBuilder,
    /// Heap allocator over the simulated heap region.
    pub heap: Heap,
    /// Deterministic RNG (differs between `Train` and `Ref`).
    pub rng: StdRng,
}

impl Ctx {
    /// Creates a context. `seed` identifies the workload; the input set
    /// perturbs it so training and reference runs see different data.
    pub fn new(seed: u64, input: InputSet) -> Self {
        let salt = match input {
            InputSet::Test => 0x5eed_0003,
            InputSet::Train => 0x5eed_0001,
            InputSet::Ref => 0x5eed_0002,
        };
        Ctx {
            tb: TraceBuilder::new(SimMemory::new()),
            heap: Heap::new(layout::HEAP_BASE, layout::HEAP_LIMIT),
            rng: StdRng::seed_from_u64(seed ^ salt),
        }
    }

    /// Scales a *structure* dimension (heap size, tree depth, table
    /// buckets) by the input set. Structures are built during functional
    /// setup — they cost no simulated cycles — so the smoke-test input
    /// reuses the train sizes and keeps the workload in the same
    /// cache-behaviour regime.
    pub fn scale(&self, input: InputSet, train: usize, reference: usize) -> usize {
        match input {
            InputSet::Test | InputSet::Train => train,
            InputSet::Ref => reference,
        }
    }

    /// Scales a *traced iteration* dimension by the input set. These
    /// dimensions set the trace length and therefore simulation time, so
    /// the smoke-test input gets its own (much smaller) value.
    pub fn iters(&self, input: InputSet, test: usize, train: usize, reference: usize) -> usize {
        match input {
            InputSet::Test => test,
            InputSet::Train => train,
            InputSet::Ref => reference,
        }
    }
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_and_ref_rngs_differ() {
        use rand::Rng;
        let mut a = Ctx::new(7, InputSet::Train);
        let mut b = Ctx::new(7, InputSet::Ref);
        let xa: u64 = a.rng.gen();
        let xb: u64 = b.rng.gen();
        assert_ne!(xa, xb);
    }

    #[test]
    fn same_inputs_are_deterministic() {
        use rand::Rng;
        let mut a = Ctx::new(7, InputSet::Ref);
        let mut b = Ctx::new(7, InputSet::Ref);
        let xa: u64 = a.rng.gen();
        let xb: u64 = b.rng.gen();
        assert_eq!(xa, xb);
    }

    #[test]
    fn scale_selects_by_input() {
        let c = Ctx::new(1, InputSet::Train);
        assert_eq!(c.scale(InputSet::Train, 10, 100), 10);
        assert_eq!(c.scale(InputSet::Ref, 10, 100), 100);
    }
}
