//! Stand-ins for the Olden pointer benchmarks used in the paper: `bisort`,
//! `health`, `mst`, `perimeter` and `voronoi`.
//!
//! These five cover the paper's spectrum of CDP behaviour: `perimeter`
//! (83% CDP accuracy — every child pointer is traversed), `health` (long
//! list chases where CDP prefetching is hugely profitable), `voronoi`
//! (about half the scanned pointers useful), and the two pathological
//! cases the paper analyses in depth: `bisort` (subtree swaps invalidate
//! prefetched subtrees, §2.3) and `mst` (hash-chain nodes whose data-field
//! pointers are almost never dereferenced, §3 Figure 5).

use rand::Rng;
use sim_core::{Addr, Trace};
use sim_mem::builders::{
    self, HashTable, QUAD_CHILD_OFFSET, QUAD_VALUE_OFFSET, TREE_DATA_OFFSET, TREE_LEFT_OFFSET,
    TREE_RIGHT_OFFSET,
};

use crate::common::Ctx;
use crate::{InputSet, Workload};

/// `bisort`: bitonic sort over a binary tree with frequent subtree swaps.
///
/// The traversal descends random root-to-leaf paths; at visited nodes it
/// swaps the children of the current node with those of a recently visited
/// node, so pointers prefetched from a block often belong to subtrees the
/// program will never enter — the CDP failure mode of §2.3.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bisort;

/// PCs of `bisort`'s static loads.
pub mod bisort_pc {
    /// Load of a node's sort key.
    pub const KEY: u32 = 0x1000;
    /// Load of a node's left child pointer.
    pub const LEFT: u32 = 0x1004;
    /// Load of a node's right child pointer.
    pub const RIGHT: u32 = 0x1008;
}

impl Workload for Bisort {
    fn describe(&self) -> &'static str {
        "binary-tree bitonic sort with frequent subtree swaps (CDP-hostile)"
    }

    fn name(&self) -> &'static str {
        "bisort"
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0xB150, input);
        let depth = c.scale(input, 16, 17) as u32;
        let descents = c.iters(input, 600, 4_000, 26_000);

        let mut tree = None;
        let heap = &mut c.heap;
        let rng = &mut c.rng;
        c.tb.setup(|mem| {
            tree = Some(
                builders::build_binary_tree(mem, heap, depth, rng)
                    .expect("workload heap exhausted"),
            );
        });
        let tree = tree.expect("built on the first outer iteration");
        let root = tree.root;

        // Random root-to-leaf descents with subtree swaps: at half the
        // visited nodes, the children are exchanged with those of another
        // (random) node — the bitonic merge's swap — and the walk continues
        // into the swapped-in subtree. Pointers CDP harvested from the
        // node's block at fill time now name subtrees the program will not
        // enter, reproducing the §2.3 failure mode.
        let num_nodes = tree.nodes.len();
        for _ in 0..descents {
            let mut cur = root;
            let mut dep = None;
            let mut hops = 0;
            while cur != 0 && hops < 24 {
                let (key, kid) = c.tb.load(bisort_pc::KEY, cur + TREE_DATA_OFFSET, dep);
                c.tb.compute(10);
                let (l, lid) =
                    c.tb.load(bisort_pc::LEFT, cur + TREE_LEFT_OFFSET, Some(kid));
                let (r, rid) =
                    c.tb.load(bisort_pc::RIGHT, cur + TREE_RIGHT_OFFSET, Some(kid));
                let swap = c.rng.gen_bool(0.15);
                let (next, nid) = if swap {
                    // Swap in another node's subtrees (modelled as wiring
                    // this node's children to two random nodes, which is
                    // what an accumulated sequence of subtree swaps looks
                    // like from this node's point of view).
                    let other = tree.nodes[c.rng.gen_range(0..num_nodes)];
                    let (ol, olid) = c.tb.load(bisort_pc::LEFT, other + TREE_LEFT_OFFSET, None);
                    let (or, orid) = c.tb.load(bisort_pc::RIGHT, other + TREE_RIGHT_OFFSET, None);
                    c.tb.store(0x1010, cur + TREE_LEFT_OFFSET, ol, Some(olid));
                    c.tb.store(0x1014, cur + TREE_RIGHT_OFFSET, or, Some(orid));
                    c.tb.store(0x1018, other + TREE_LEFT_OFFSET, l, Some(lid));
                    c.tb.store(0x101C, other + TREE_RIGHT_OFFSET, r, Some(rid));
                    if key % 10 < 7 {
                        (ol, olid)
                    } else {
                        (or, orid)
                    }
                } else if key % 10 < 7 {
                    // The bitonic merge descends left-heavy in this phase,
                    // so the left-child pointer group is beneficial while
                    // the right one stays below the 50% usefulness bar.
                    (l, lid)
                } else {
                    (r, rid)
                };
                cur = next;
                dep = Some(nid);
                hops += 1;
            }
            c.tb.compute(8);
        }
        c.tb.finish()
    }
}

/// `health`: a hierarchy of villages, each with a linked list of patients
/// that is walked in full every simulation step. Long regular pointer
/// chases make LDS prefetching extremely profitable here (the paper notes
/// the benchmark skews averages and reports results with and without it).
#[derive(Debug, Clone, Copy, Default)]
pub struct Health;

/// PCs of `health`'s static loads.
pub mod health_pc {
    /// Load of a patient's data field.
    pub const DATA: u32 = 0x2000;
    /// Load of a patient's `next` pointer.
    pub const NEXT: u32 = 0x2004;
    /// Load of a village's patient-list head.
    pub const HEAD: u32 = 0x2008;
    /// Rare dereference of a patient's treatment record.
    pub const RECORD: u32 = 0x200C;
}

impl Workload for Health {
    fn describe(&self) -> &'static str {
        "village hierarchy with long scrambled patient lists (CDP's best case)"
    }

    fn name(&self) -> &'static str {
        "health"
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x4EA1, input);
        let villages = c.iters(input, 64, 192, 256);
        let patients_per = c.scale(input, 350, 420);
        let steps = c.iters(input, 1, 2, 2);

        // Each village: a head slot plus a patient list. Patient node:
        // {record_ptr, data, severity, next} = 16 bytes, so four nodes share
        // a cache block. Nodes of one village are *clustered* (allocated
        // together at initialisation) but the list order within the cluster
        // is scrambled by the simulation's insertions/removals — the regime
        // where a stream prefetcher finds no monotonic miss pattern but
        // content-directed prefetching harvests four next-pointers per
        // fetched block and sprints ahead of the walk. The `record` pointer
        // names a satellite treatment record that the walk rarely touches:
        // a harmful pointer group for unfiltered CDP.
        let mut heads: Vec<Addr> = Vec::with_capacity(villages);
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                use rand::seq::SliceRandom;
                let mut all_lists: Vec<Vec<Addr>> = Vec::with_capacity(villages);
                for _ in 0..villages {
                    heads.push(heap.alloc(8).expect("workload heap exhausted"));
                    let mut nodes: Vec<Addr> = (0..patients_per)
                        .map(|_| heap.alloc(16).expect("workload heap exhausted"))
                        .collect();
                    nodes.shuffle(rng);
                    all_lists.push(nodes);
                }
                // Satellite records live in their own region, allocated in a
                // second phase as the real program would.
                for (v, nodes) in all_lists.iter().enumerate() {
                    for (i, &n) in nodes.iter().enumerate() {
                        // Only half the patients carry a treatment record;
                        // the chain's pointer groups stay majority-useful
                        // while the record group stays harmful.
                        let record = if rng.gen_bool(0.5) {
                            heap.alloc(24).expect("workload heap exhausted")
                        } else {
                            0
                        };
                        mem.write_u32(n, record);
                        mem.write_u32(n + 4, rng.gen());
                        mem.write_u32(n + 8, rng.gen::<u32>() & 0xFFFF);
                        let next = if i + 1 < nodes.len() { nodes[i + 1] } else { 0 };
                        mem.write_u32(n + 12, next);
                    }
                    mem.write_u32(heads[v], nodes.first().copied().unwrap_or(0));
                }
            });
        }

        let next_offset = 12;
        for _ in 0..steps {
            for &head_slot in &heads {
                let (mut cur, mut dep) = {
                    let (v, id) = c.tb.load(health_pc::HEAD, head_slot, None);
                    (v, Some(id))
                };
                let mut visited = 0u32;
                while cur != 0 {
                    let (_, did) = c.tb.load(health_pc::DATA, cur + 4, dep);
                    c.tb.compute(4);
                    visited += 1;
                    if visited.is_multiple_of(97) {
                        // Rare treatment-record access (the satellite).
                        let (rec, rid) = c.tb.load(health_pc::RECORD, cur, Some(did));
                        if rec != 0 {
                            let _ = c.tb.load(health_pc::RECORD, rec, Some(rid));
                        }
                    }
                    let (next, nid) = c.tb.load(health_pc::NEXT, cur + next_offset, Some(did));
                    cur = next;
                    dep = Some(nid);
                }
                c.tb.compute(12);
            }
        }
        c.tb.finish()
    }
}

/// `mst`: the paper's Figure 5 example. A chained hash table whose nodes
/// are `{key, data1, data2, next}`; lookups walk the chain comparing keys.
/// The `data` words are pointers to satellite records that are only touched
/// on a key match — so `PG(key-load, data offsets)` are harmful and
/// `PG(key-load, next offsets)` are beneficial, exactly the case ECDP's
/// compiler hints are designed to separate.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mst;

/// PCs of `mst`'s static loads.
pub mod mst_pc {
    /// Load of the bucket head pointer.
    pub const BUCKET: u32 = 0x3000;
    /// Load of a node's key (`ent->Key != Key` in Figure 5).
    pub const KEY: u32 = 0x3004;
    /// Load of a node's `next` pointer.
    pub const NEXT: u32 = 0x3008;
    /// Load of a data pointer after a key match.
    pub const DATA: u32 = 0x300C;
    /// Dereference of the satellite record.
    pub const SAT: u32 = 0x3010;
}

impl Workload for Mst {
    fn describe(&self) -> &'static str {
        "hash-table chain probes over {key, d1, d2, next} nodes (Figure 5)"
    }

    fn name(&self) -> &'static str {
        "mst"
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x357A, input);
        // The test input keeps the *ref-sized* table: mst's CDP
        // degradation (Figure 5) is a reuse/pollution effect that only
        // appears once the table strains the L2, so the smoke input
        // re-walks the full ref structure with fewer lookups instead of
        // shrinking the structure into the cold-miss regime.
        let buckets = c.iters(input, 4096, 2048, 4096) as u32;
        let keys = c.iters(input, 45_000, 30_000, 45_000) as u32;
        let lookups = c.iters(input, 10_000, 6_000, 22_000);

        let mut table = None;
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                // Figure 5's node layout {key, d1, d2, next}; only some nodes
                // carry live satellite records (the rest hold immediate
                // values), which keeps the next-pointer groups above the
                // beneficial bar while the data groups stay harmful.
                table = Some(
                    builders::build_hash_table_with_ratio(mem, heap, buckets, keys, 2, 0.35, rng)
                        .expect("workload heap exhausted"),
                );
            });
        }
        let table = table.expect("built on the first outer iteration");
        let next_off = table.next_offset();

        for _ in 0..lookups {
            // Most lookups are membership probes for keys that are absent
            // (as in the real HashLookup): the chain is walked to the end,
            // no data record is touched, and the data-pointer groups stay
            // as useless as Figure 5 describes.
            let key = if c.rng.gen_bool(0.2) {
                table.keys[c.rng.gen_range(0..table.keys.len())]
            } else {
                c.rng.gen()
            };
            let (mut node, mut dep) = {
                let (v, id) = c.tb.load(mst_pc::BUCKET, table.bucket_slot(key), None);
                (v, Some(id))
            };
            while node != 0 {
                let (k, kid) = c.tb.load(mst_pc::KEY, node + HashTable::KEY_OFFSET, dep);
                c.tb.compute(8);
                if k == key {
                    // Key match: touch the satellite record.
                    let (d, did) =
                        c.tb.load(mst_pc::DATA, node + HashTable::DATA_OFFSET, Some(kid));
                    if d != 0 {
                        let _ = c.tb.load(mst_pc::SAT, d, Some(did));
                    }
                    break;
                }
                let (next, nid) = c.tb.load(mst_pc::NEXT, node + next_off, Some(kid));
                node = next;
                dep = Some(nid);
            }
            c.tb.compute(24);
        }
        c.tb.finish()
    }
}

/// `perimeter`: full recursive traversal of a quadtree — all four child
/// pointers of every visited node are dereferenced, which is why the
/// original CDP is already 83% accurate on it (paper Table 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct Perimeter;

/// PCs of `perimeter`'s static loads.
pub mod perimeter_pc {
    /// Load of a node's value.
    pub const VALUE: u32 = 0x4000;
    /// Load of a child pointer (one PC per child slot).
    pub const CHILD: [u32; 4] = [0x4004, 0x4008, 0x400C, 0x4010];
}

impl Workload for Perimeter {
    fn describe(&self) -> &'static str {
        "full quadtree recursion; all four child pointers used"
    }

    fn name(&self) -> &'static str {
        "perimeter"
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x9E81, input);
        let depth = c.iters(input, 7, 8, 9) as u32;
        let passes = c.scale(input, 1, 1);

        let mut tree = None;
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                tree = Some(
                    builders::build_quadtree(mem, heap, depth, rng)
                        .expect("workload heap exhausted"),
                );
            });
        }
        let tree = tree.expect("built on the first outer iteration");

        for _ in 0..passes {
            // Iterative DFS carrying the dependence of the pointer load
            // that produced each node address.
            let mut stack: Vec<(Addr, Option<sim_core::trace::LoadId>)> = vec![(tree.root, None)];
            while let Some((node, dep)) = stack.pop() {
                let (_, vid) =
                    c.tb.load(perimeter_pc::VALUE, node + QUAD_VALUE_OFFSET, dep);
                c.tb.compute(3);
                for (i, &pc) in perimeter_pc::CHILD.iter().enumerate() {
                    let (child, cid) =
                        c.tb.load(pc, node + QUAD_CHILD_OFFSET + (i as u32) * 4, Some(vid));
                    if child != 0 {
                        stack.push((child, Some(cid)));
                    }
                }
            }
            c.tb.compute(20);
        }
        c.tb.finish()
    }
}

/// `voronoi`: walks a doubly-connected edge list. Each edge holds four
/// neighbour pointers (`onext`, `oprev`, `sym`, `dual`); a walk follows one
/// of the first two per step and occasionally jumps through `sym`, so
/// roughly half the scanned pointers are eventually useful (Table 1: 47%).
#[derive(Debug, Clone, Copy, Default)]
pub struct Voronoi;

/// PCs of `voronoi`'s static loads.
pub mod voronoi_pc {
    /// Load of an edge's coordinate data.
    pub const COORD: u32 = 0x5000;
    /// Load of the `onext` pointer.
    pub const ONEXT: u32 = 0x5004;
    /// Load of the `oprev` pointer.
    pub const OPREV: u32 = 0x5008;
    /// Load of the `sym` pointer.
    pub const SYM: u32 = 0x500C;
}

impl Workload for Voronoi {
    fn describe(&self) -> &'static str {
        "DCEL edge walks over onext/oprev/sym pointers"
    }

    fn name(&self) -> &'static str {
        "voronoi"
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x0707, input);
        let edges = c.scale(input, 110_000, 170_000);
        let steps = c.iters(input, 7_500, 30_000, 110_000);

        // Edge: {x, y, onext, oprev, sym, pad} = 24 bytes.
        let mut nodes: Vec<Addr> = Vec::with_capacity(edges);
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                for _ in 0..edges {
                    nodes.push(heap.alloc(24).expect("workload heap exhausted"));
                }
                // Connect the edges in a random ring (a DCEL built by a
                // divide-and-conquer algorithm has no allocation-order
                // locality) plus random `sym` shortcuts.
                use rand::seq::SliceRandom;
                let mut order: Vec<usize> = (0..nodes.len()).collect();
                order.shuffle(rng);
                for (k, &i) in order.iter().enumerate() {
                    let e = nodes[i];
                    mem.write_u32(e, rng.gen());
                    mem.write_u32(e + 4, rng.gen());
                    let onext = nodes[order[(k + 1) % order.len()]];
                    let oprev = nodes[order[(k + order.len() - 1) % order.len()]];
                    let sym = nodes[rng.gen_range(0..nodes.len())];
                    mem.write_u32(e + 8, onext);
                    mem.write_u32(e + 12, oprev);
                    mem.write_u32(e + 16, sym);
                }
            });
        }

        let mut cur = nodes[0];
        let mut dep = None;
        for _ in 0..steps {
            let (_, xid) = c.tb.load(voronoi_pc::COORD, cur, dep);
            c.tb.compute(64);
            // Geometric predicates inspect the symmetric edge's origin about
            // a third of the time before deciding where to walk.
            if c.rng.gen_bool(0.35) {
                let (sym, sid) = c.tb.load(voronoi_pc::SYM, cur + 16, Some(xid));
                if sym != 0 {
                    let _ = c.tb.load(voronoi_pc::COORD, sym, Some(sid));
                }
                c.tb.compute(12);
            }
            let roll = c.rng.gen_range(0..10);
            let (next, nid) = if roll < 5 {
                c.tb.load(voronoi_pc::ONEXT, cur + 8, Some(xid))
            } else if roll < 8 {
                c.tb.load(voronoi_pc::OPREV, cur + 12, Some(xid))
            } else {
                c.tb.load(voronoi_pc::SYM, cur + 16, Some(xid))
            };
            if next != 0 {
                cur = next;
                dep = Some(nid);
            }
        }
        c.tb.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lds_fraction(t: &Trace) -> f64 {
        let mem = t.memory_ops() as f64;
        let lds = t.ops.iter().filter(|o| o.lds).count() as f64;
        lds / mem
    }

    #[test]
    fn bisort_generates_pointer_chases() {
        let t = Bisort.generate(InputSet::Train);
        assert!(t.memory_ops() > 10_000);
        assert!(lds_fraction(&t) > 0.5, "bisort is pointer dominated");
    }

    #[test]
    fn health_walks_full_lists() {
        let t = Health.generate(InputSet::Train);
        // 192 villages x 350 patients x 2 loads x 2 steps plus heads.
        assert!(t.memory_ops() > 200_000);
        assert!(lds_fraction(&t) > 0.8);
    }

    #[test]
    fn mst_lookups_touch_chains() {
        let t = Mst.generate(InputSet::Train);
        assert!(t.memory_ops() > 10_000);
        // Satellite loads exist but are rare relative to key/next loads.
        let sat = t.ops.iter().filter(|o| o.pc == mst_pc::SAT).count();
        let key = t.ops.iter().filter(|o| o.pc == mst_pc::KEY).count();
        assert!(sat > 0);
        assert!(key > 3 * sat, "keys checked far more often than matched");
    }

    #[test]
    fn perimeter_visits_every_node_each_pass() {
        let t = Perimeter.generate(InputSet::Train);
        let value_loads = t.ops.iter().filter(|o| o.pc == perimeter_pc::VALUE).count();
        // Depth-8 quadtree: (4^8 - 1) / 3 = 21845 nodes, 1 pass.
        assert_eq!(value_loads, 21845);
    }

    #[test]
    fn voronoi_walks_edges() {
        let t = Voronoi.generate(InputSet::Train);
        assert!(t.memory_ops() >= 2 * 30_000);
    }

    #[test]
    fn traces_are_deterministic() {
        let a = Mst.generate(InputSet::Train);
        let b = Mst.generate(InputSet::Train);
        assert_eq!(a.ops.len(), b.ops.len());
        assert_eq!(a.ops[100], b.ops[100]);
    }

    #[test]
    fn train_and_ref_differ() {
        let a = Bisort.generate(InputSet::Train);
        let b = Bisort.generate(InputSet::Ref);
        assert!(b.memory_ops() > a.memory_ops());
    }
}
