//! Stand-in for `pfast` (parallel fast alignment search tool), the
//! bioinformatics workload of the paper's §5: seed-and-extend alignment of
//! short reads against a reference genome index.
//!
//! The access pattern: hash each read's k-mer seed into an index table,
//! walk the bucket's candidate-hit chain (pointer chase), and for promising
//! candidates stream a short window of the reference sequence to extend the
//! alignment. The chain walks are LDS misses the stream prefetcher cannot
//! cover; the extension windows are short streams.

use rand::Rng;
use sim_core::Trace;
use sim_mem::builders::{self, HashTable};

use crate::common::Ctx;
use crate::{InputSet, Workload};

/// PCs of `pfast`'s static loads.
pub mod pfast_pc {
    /// Seed-index bucket load.
    pub const BUCKET: u32 = 0xF000;
    /// Candidate-hit key load.
    pub const KEY: u32 = 0xF004;
    /// Candidate `next` pointer load.
    pub const NEXT: u32 = 0xF008;
    /// Candidate position-record dereference.
    pub const POS: u32 = 0xF00C;
    /// Reference-sequence extension load (streaming).
    pub const REF_SEQ: u32 = 0xF010;
}

/// The `pfast` stand-in. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pfast;

impl Workload for Pfast {
    fn describe(&self) -> &'static str {
        "seed-and-extend alignment: candidate chains plus reference windows"
    }

    fn name(&self) -> &'static str {
        "pfast"
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0xFA57, input);
        let buckets = c.scale(input, 2048, 4096) as u32;
        let kmers = c.scale(input, 35_000, 45_000) as u32;
        let reads = c.iters(input, 2_000, 8_000, 30_000);
        let genome_words = c.scale(input, 100_000, 250_000) as u32;

        let mut table = None;
        let mut genome = 0;
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                table = Some(
                    builders::build_hash_table_with_ratio(mem, heap, buckets, kmers, 1, 0.4, rng)
                        .expect("workload heap exhausted"),
                );
                genome = heap
                    .alloc(genome_words * 4)
                    .expect("workload heap exhausted");
                for i in 0..genome_words {
                    mem.write_u32(genome + i * 4, rng.gen());
                }
            });
        }
        let table = table.expect("built on the first outer iteration");
        let next_off = table.next_offset();

        for _ in 0..reads {
            // Look the read's seed up: walk the candidate chain.
            let key = table.keys[c.rng.gen_range(0..table.keys.len())];
            let (mut node, mut dep) = {
                let (v, id) = c.tb.load(pfast_pc::BUCKET, table.bucket_slot(key), None);
                (v, Some(id))
            };
            let mut extended = false;
            while node != 0 {
                let (k, kid) = c.tb.load(pfast_pc::KEY, node + HashTable::KEY_OFFSET, dep);
                c.tb.compute(8);
                if k == key && !extended {
                    // Promising candidate: dereference its position record
                    // and extend along the reference (short stream).
                    let (pos, pid) =
                        c.tb.load(pfast_pc::POS, node + HashTable::DATA_OFFSET, Some(kid));
                    if pos != 0 {
                        let (_, _) = c.tb.load(pfast_pc::POS, pos, Some(pid));
                    }
                    let start = (k % (genome_words - 64)) & !3;
                    for w in 0..16u32 {
                        let _ = c.tb.load(pfast_pc::REF_SEQ, genome + (start + w) * 4, None);
                        c.tb.compute(2);
                    }
                    extended = true;
                }
                let (next, nid) = c.tb.load(pfast_pc::NEXT, node + next_off, Some(kid));
                node = next;
                dep = Some(nid);
            }
            c.tb.compute(30);
        }
        c.tb.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pfast_mixes_chains_and_extension() {
        let t = Pfast.generate(InputSet::Train);
        let chains = t.ops.iter().filter(|o| o.pc == pfast_pc::NEXT).count();
        let ext = t.ops.iter().filter(|o| o.pc == pfast_pc::REF_SEQ).count();
        assert!(chains > 5_000, "chain walks: {chains}");
        assert!(ext > 5_000, "extensions: {ext}");
    }

    #[test]
    fn every_read_walks_its_full_chain() {
        // `extended` limits extension to one per read, but the chain is
        // always walked to the end (candidates may repeat keys).
        let t = Pfast.generate(InputSet::Train);
        let buckets = t.ops.iter().filter(|o| o.pc == pfast_pc::BUCKET).count();
        assert_eq!(buckets, 8_000);
    }
}
