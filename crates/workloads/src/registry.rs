//! Open workload registry: one lookup/enumeration path for built-in
//! kernels and loader-produced specs.
//!
//! The registry replaces the closed `pointer_suite()` / `streaming_suite()`
//! / `by_name()` trio. Built-ins register at first use under their paper
//! suite tags ([`SUITE_POINTER`], [`SUITE_STREAMING`]); files loaded at
//! runtime via [`register_file`] join under [`SUITE_LOADED`] with a
//! provenance content hash, so manifests, the result store and `--resume`
//! can prove two runs used the same bytes. Three file kinds are accepted,
//! dispatched by extension:
//!
//! * `.wl` — workload DSL (may declare several workloads per file);
//! * `.trace` — hand-written text trace (resident);
//! * `.xtrc` — binary external trace, replayed *streaming* — these
//!   entries carry a [`StreamSource`] instead of a generator and must be
//!   run through [`sim_core::Machine::run_streamed`].

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard};

use sim_core::{ExternalTrace, Trace};

use crate::loader;
use crate::{bio, olden, olden_extra, spec_fp, spec_int, streaming};
use crate::{InputSet, Workload};

/// Suite tag of the paper's 15 pointer-intensive workloads (Table 1 order).
pub const SUITE_POINTER: &str = "pointer";
/// Suite tag of the 12 streaming/compute workloads (§6.7 and multi-core mixes).
pub const SUITE_STREAMING: &str = "streaming";
/// Suite tag of workloads registered from files at runtime.
pub const SUITE_LOADED: &str = "loaded";

/// An external binary trace registered as a workload: replayed by
/// streaming from the file, never generated or fully resident.
#[derive(Debug)]
pub struct StreamSource {
    /// Registry name (sanitized file stem).
    pub name: &'static str,
    /// File the trace streams from.
    pub path: PathBuf,
    /// FNV-1a hash of the file bytes at registration time.
    pub content_hash: u64,
    /// Number of op records.
    pub op_count: usize,
    /// Total instruction count.
    pub instructions: u64,
}

impl StreamSource {
    /// Re-opens the trace for a replay, re-validating the framing and
    /// checking the bytes still match the registered provenance hash.
    ///
    /// # Errors
    ///
    /// A description of the failure (missing/malformed/changed file).
    pub fn open(&self) -> Result<ExternalTrace, String> {
        let xt =
            ExternalTrace::open(&self.path).map_err(|e| format!("{}: {e}", self.path.display()))?;
        if xt.content_hash() != self.content_hash {
            return Err(format!(
                "{}: file changed since registration (content hash {:#018x} != {:#018x})",
                self.path.display(),
                xt.content_hash(),
                self.content_hash
            ));
        }
        Ok(xt)
    }
}

/// A registered workload: either a trace generator (built-in kernel, DSL
/// spec, text trace) or a streamed external trace.
#[derive(Clone)]
pub enum WorkloadHandle {
    /// Generates its trace by functional execution.
    Synthetic {
        /// The generator.
        workload: Arc<dyn Workload + Send + Sync>,
        /// Content hash of the source file, for loaded workloads.
        hash: Option<u64>,
    },
    /// Streams its ops from an external `.xtrc` file.
    Streamed(Arc<StreamSource>),
}

impl WorkloadHandle {
    /// Registry name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadHandle::Synthetic { workload, .. } => workload.name(),
            WorkloadHandle::Streamed(s) => s.name,
        }
    }

    /// One-line description.
    pub fn describe(&self) -> &'static str {
        match self {
            WorkloadHandle::Synthetic { workload, .. } => workload.describe(),
            WorkloadHandle::Streamed(_) => "external memory-access trace (streamed)",
        }
    }

    /// Pointer-intensity classification (false for streamed traces, whose
    /// structure is unknown).
    pub fn pointer_intensive(&self) -> bool {
        match self {
            WorkloadHandle::Synthetic { workload, .. } => workload.pointer_intensive(),
            WorkloadHandle::Streamed(_) => false,
        }
    }

    /// Provenance content hash — `Some` only for workloads loaded from
    /// files.
    pub fn provenance_hash(&self) -> Option<u64> {
        match self {
            WorkloadHandle::Synthetic { hash, .. } => *hash,
            WorkloadHandle::Streamed(s) => Some(s.content_hash),
        }
    }

    /// True for streamed external traces (no generator; replay with
    /// [`sim_core::Machine::run_streamed`]).
    pub fn is_streamed(&self) -> bool {
        matches!(self, WorkloadHandle::Streamed(_))
    }

    /// The stream source of a streamed handle.
    pub fn stream_source(&self) -> Option<&StreamSource> {
        match self {
            WorkloadHandle::Synthetic { .. } => None,
            WorkloadHandle::Streamed(s) => Some(s),
        }
    }

    /// Generates the trace of a synthetic workload.
    ///
    /// # Panics
    ///
    /// Panics for streamed handles — check [`WorkloadHandle::is_streamed`]
    /// first and use the streaming replay path instead.
    pub fn generate(&self, input: InputSet) -> Trace {
        match self {
            WorkloadHandle::Synthetic { workload, .. } => workload.generate(input),
            WorkloadHandle::Streamed(s) => panic!(
                "workload `{}` is a streamed external trace and cannot be generated; \
                 replay it with Machine::run_streamed",
                s.name
            ),
        }
    }
}

impl std::fmt::Debug for WorkloadHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadHandle")
            .field("name", &self.name())
            .field("streamed", &self.is_streamed())
            .finish()
    }
}

/// Adapter presenting a [`WorkloadHandle`] through the [`Workload`] trait
/// (the deprecated suite functions return these).
#[derive(Debug)]
pub struct HandleWorkload(pub WorkloadHandle);

impl Workload for HandleWorkload {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn pointer_intensive(&self) -> bool {
        self.0.pointer_intensive()
    }

    fn describe(&self) -> &'static str {
        self.0.describe()
    }

    fn generate(&self, input: InputSet) -> Trace {
        self.0.generate(input)
    }
}

struct Entry {
    suite: &'static str,
    handle: WorkloadHandle,
}

/// The workload registry. Most callers use the module-level functions,
/// which operate on the process-global instance.
pub struct Registry {
    entries: Vec<Entry>,
}

impl Registry {
    /// A registry pre-populated with the built-in suites, in paper order.
    pub fn with_builtins() -> Self {
        fn synth(w: impl Workload + Send + Sync + 'static) -> WorkloadHandle {
            WorkloadHandle::Synthetic {
                workload: Arc::new(w),
                hash: None,
            }
        }
        let pointer: Vec<WorkloadHandle> = vec![
            synth(spec_int::Perlbench),
            synth(spec_int::Gcc),
            synth(spec_int::Mcf),
            synth(spec_int::Astar),
            synth(spec_int::Xalancbmk),
            synth(spec_int::Omnetpp),
            synth(spec_int::Parser),
            synth(spec_fp::Art),
            synth(spec_fp::Ammp),
            synth(olden::Bisort),
            synth(olden::Health),
            synth(olden::Mst),
            synth(olden::Perimeter),
            synth(olden::Voronoi),
            synth(bio::Pfast),
        ];
        let streaming: Vec<WorkloadHandle> = vec![
            synth(streaming::Libquantum),
            synth(streaming::Bwaves),
            synth(streaming::GemsFdtd),
            synth(streaming::H264ref),
            synth(streaming::Hmmer),
            synth(streaming::Lbm),
            synth(streaming::Milc),
            synth(streaming::Sjeng),
            synth(olden_extra::Treeadd),
            synth(olden_extra::Em3d),
            synth(olden_extra::Tsp),
            synth(olden_extra::Power),
        ];
        let mut entries = Vec::new();
        for handle in pointer {
            entries.push(Entry {
                suite: SUITE_POINTER,
                handle,
            });
        }
        for handle in streaming {
            entries.push(Entry {
                suite: SUITE_STREAMING,
                handle,
            });
        }
        Registry { entries }
    }

    /// Looks a workload up by name.
    pub fn lookup(&self, name: &str) -> Option<WorkloadHandle> {
        self.entries
            .iter()
            .find(|e| e.handle.name() == name)
            .map(|e| e.handle.clone())
    }

    /// Looks a workload up by provenance content hash.
    pub fn lookup_hash(&self, hash: u64) -> Option<WorkloadHandle> {
        self.entries
            .iter()
            .find(|e| e.handle.provenance_hash() == Some(hash))
            .map(|e| e.handle.clone())
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.handle.name()).collect()
    }

    /// All workloads of a suite, in registration order.
    pub fn suite(&self, tag: &str) -> Vec<WorkloadHandle> {
        self.entries
            .iter()
            .filter(|e| e.suite == tag)
            .map(|e| e.handle.clone())
            .collect()
    }

    /// Registers a handle under a suite tag.
    ///
    /// Re-registering the same name with the same provenance hash is
    /// idempotent; a colliding name with different content is an error.
    ///
    /// # Errors
    ///
    /// A description of the name collision.
    pub fn register(&mut self, suite: &'static str, handle: WorkloadHandle) -> Result<(), String> {
        if let Some(existing) = self
            .entries
            .iter()
            .find(|e| e.handle.name() == handle.name())
        {
            let (old, new) = (existing.handle.provenance_hash(), handle.provenance_hash());
            if old.is_some() && old == new {
                return Ok(());
            }
            return Err(if old.is_none() {
                format!(
                    "workload name `{}` already names a built-in workload",
                    handle.name()
                )
            } else {
                format!(
                    "workload name `{}` is already registered with different content",
                    handle.name()
                )
            });
        }
        self.entries.push(Entry { suite, handle });
        Ok(())
    }

    /// The closest registered name to `name`, if any is close enough to
    /// be a plausible typo (edit distance ≤ 2, or ≤ 3 for names of 8+
    /// characters).
    pub fn suggest(&self, name: &str) -> Option<&'static str> {
        let budget = if name.len() >= 8 { 3 } else { 2 };
        self.entries
            .iter()
            .map(|e| e.handle.name())
            .map(|n| (edit_distance(name, n), n))
            .filter(|&(d, _)| d <= budget)
            .min_by_key(|&(d, _)| d)
            .map(|(_, n)| n)
    }
}

/// Optimal-string-alignment distance: Levenshtein plus adjacent
/// transpositions at cost 1, so `mts` is one step from `mst`.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut rows: Vec<Vec<usize>> = vec![(0..=b.len()).collect()];
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = rows[i][j] + usize::from(ca != cb);
            let mut d = sub.min(rows[i][j + 1] + 1).min(row[j] + 1);
            if i > 0 && j > 0 && ca == b[j - 1] && a[i - 1] == cb {
                d = d.min(rows[i - 1][j - 1] + 1);
            }
            row.push(d);
        }
        rows.push(row);
    }
    rows[a.len()][b.len()]
}

fn global() -> &'static RwLock<Registry> {
    static REGISTRY: OnceLock<RwLock<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Registry::with_builtins()))
}

fn read() -> RwLockReadGuard<'static, Registry> {
    global().read().expect("workload registry poisoned")
}

/// Looks a workload up by name in the global registry.
pub fn lookup(name: &str) -> Option<WorkloadHandle> {
    read().lookup(name)
}

/// Looks a workload up by provenance content hash in the global registry.
pub fn lookup_hash(hash: u64) -> Option<WorkloadHandle> {
    read().lookup_hash(hash)
}

/// All names in the global registry, in registration order.
pub fn names() -> Vec<&'static str> {
    read().names()
}

/// All workloads of a suite in the global registry.
pub fn suite(tag: &str) -> Vec<WorkloadHandle> {
    read().suite(tag)
}

/// Did-you-mean suggestion from the global registry.
pub fn suggest(name: &str) -> Option<&'static str> {
    read().suggest(name)
}

/// FNV-1a over a byte slice (same function the external-trace reader
/// uses, so `.wl`/`.trace` and `.xtrc` hashes are comparable).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A hand-written text trace registered as a workload: every input set
/// replays the same fixed trace.
struct TextTraceWorkload {
    name: &'static str,
    trace: Trace,
}

impl Workload for TextTraceWorkload {
    fn name(&self) -> &'static str {
        self.name
    }

    fn pointer_intensive(&self) -> bool {
        false
    }

    fn describe(&self) -> &'static str {
        "hand-written text trace"
    }

    fn generate(&self, _input: InputSet) -> Trace {
        Trace {
            initial_memory: self.trace.initial_memory.clone(),
            ops: self.trace.ops.clone(),
            instructions: self.trace.instructions,
        }
    }
}

fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

/// Registry name derived from a file stem: lowercased, with anything
/// outside `[a-z0-9_-]` replaced by `_`.
fn sanitized_stem(path: &Path) -> Result<String, String> {
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or_else(|| format!("{}: cannot derive a workload name", path.display()))?;
    let name: String = stem
        .to_lowercase()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if name.is_empty() {
        return Err(format!("{}: cannot derive a workload name", path.display()));
    }
    Ok(name)
}

/// Loads a workload file into the global registry and returns the names
/// it registered. Dispatches on extension: `.wl` (DSL, possibly several
/// workloads), `.trace` (text trace) or `.xtrc` (streamed binary trace).
/// Re-registering identical content is idempotent.
///
/// # Errors
///
/// I/O failures, parse/validate errors (with line/column for the text
/// formats), unsupported extensions and name collisions — all as
/// ready-to-print strings prefixed with the file path.
pub fn register_file(path: impl AsRef<Path>) -> Result<Vec<String>, String> {
    let path = path.as_ref();
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let mut registered = Vec::new();
    match ext {
        "wl" => {
            let src = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let hash = fnv1a(src.as_bytes());
            let specs = loader::load_specs(&src).map_err(|e| format!("{}: {e}", path.display()))?;
            let mut reg = global().write().expect("workload registry poisoned");
            for w in specs {
                let name = w.name().to_string();
                reg.register(
                    SUITE_LOADED,
                    WorkloadHandle::Synthetic {
                        workload: Arc::new(w),
                        hash: Some(hash),
                    },
                )
                .map_err(|e| format!("{}: {e}", path.display()))?;
                registered.push(name);
            }
        }
        "trace" => {
            let src = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let hash = fnv1a(src.as_bytes());
            let trace =
                loader::parse_trace(&src).map_err(|e| format!("{}: {e}", path.display()))?;
            let name = leak(sanitized_stem(path)?);
            global()
                .write()
                .expect("workload registry poisoned")
                .register(
                    SUITE_LOADED,
                    WorkloadHandle::Synthetic {
                        workload: Arc::new(TextTraceWorkload { name, trace }),
                        hash: Some(hash),
                    },
                )
                .map_err(|e| format!("{}: {e}", path.display()))?;
            registered.push(name.to_string());
        }
        "xtrc" => {
            let xt = ExternalTrace::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
            let name = leak(sanitized_stem(path)?);
            let source = StreamSource {
                name,
                path: path.to_path_buf(),
                content_hash: xt.content_hash(),
                op_count: xt.op_count(),
                instructions: xt.instructions(),
            };
            global()
                .write()
                .expect("workload registry poisoned")
                .register(SUITE_LOADED, WorkloadHandle::Streamed(Arc::new(source)))
                .map_err(|e| format!("{}: {e}", path.display()))?;
            registered.push(name.to_string());
        }
        other => {
            return Err(format!(
                "{}: unsupported workload file extension `{other}` \
                 (expected .wl, .trace or .xtrc)",
                path.display()
            ))
        }
    }
    Ok(registered)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn builtin_suites_keep_paper_counts_and_order() {
        let r = Registry::with_builtins();
        let pointer = r.suite(SUITE_POINTER);
        let streaming = r.suite(SUITE_STREAMING);
        assert_eq!(pointer.len(), 15);
        assert_eq!(streaming.len(), 12);
        assert_eq!(pointer[0].name(), "perlbench");
        assert_eq!(pointer[14].name(), "pfast");
        assert_eq!(streaming[0].name(), "libquantum");
        assert!(pointer.iter().all(|h| h.pointer_intensive()));
        assert!(streaming.iter().all(|h| !h.pointer_intensive()));
        assert!(pointer.iter().all(|h| h.provenance_hash().is_none()));
    }

    #[test]
    fn lookup_and_names_cover_both_suites() {
        let r = Registry::with_builtins();
        assert!(r.lookup("mst").is_some());
        assert!(r.lookup("libquantum").is_some());
        assert!(r.lookup("nonexistent").is_none());
        assert_eq!(r.names().len(), 27);
    }

    #[test]
    fn register_rejects_builtin_collision_but_is_idempotent_for_same_hash() {
        let mut r = Registry::with_builtins();
        let mk = |hash| {
            WorkloadHandle::Streamed(Arc::new(StreamSource {
                name: "custom",
                path: PathBuf::from("/tmp/custom.xtrc"),
                content_hash: hash,
                op_count: 1,
                instructions: 1,
            }))
        };
        let builtin_clash = WorkloadHandle::Streamed(Arc::new(StreamSource {
            name: "mst",
            path: PathBuf::from("/tmp/mst.xtrc"),
            content_hash: 1,
            op_count: 1,
            instructions: 1,
        }));
        assert!(r.register(SUITE_LOADED, builtin_clash).is_err());
        r.register(SUITE_LOADED, mk(7)).unwrap();
        r.register(SUITE_LOADED, mk(7)).unwrap();
        assert!(r.register(SUITE_LOADED, mk(8)).is_err());
        assert_eq!(r.suite(SUITE_LOADED).len(), 1);
        assert_eq!(r.lookup_hash(7).unwrap().name(), "custom");
    }

    #[test]
    fn suggest_finds_close_names() {
        let r = Registry::with_builtins();
        assert_eq!(r.suggest("mts"), Some("mst"));
        assert_eq!(r.suggest("libquantm"), Some("libquantum"));
        assert_eq!(r.suggest("zzzzzzzz"), None);
    }

    #[test]
    fn streamed_handles_panic_on_generate() {
        let h = WorkloadHandle::Streamed(Arc::new(StreamSource {
            name: "s",
            path: PathBuf::from("/nope"),
            content_hash: 0,
            op_count: 0,
            instructions: 0,
        }));
        assert!(h.is_streamed());
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.generate(InputSet::Test)));
        assert!(err.is_err());
    }
}
