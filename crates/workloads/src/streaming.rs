//! Non-pointer-intensive workload stand-ins for §6.7 (the remaining SPEC
//! benchmarks) and the multi-core mixes: streaming, strided and
//! compute-bound kernels where LDS prefetching should neither help nor
//! hurt.

use rand::Rng;
use sim_core::{Addr, Trace};

use crate::common::Ctx;
use crate::{InputSet, Workload};

fn alloc_array(c: &mut Ctx, words: u32) -> Addr {
    let heap = &mut c.heap;
    let rng = &mut c.rng;
    let mut base = 0;
    c.tb.setup(|mem| {
        base = heap.alloc(words * 4).expect("workload heap exhausted");
        for i in 0..words {
            mem.write_u32(base + i * 4, rng.gen());
        }
    });
    base
}

/// `libquantum`: long unit-stride sweeps over a quantum-register array.
#[derive(Debug, Clone, Copy, Default)]
pub struct Libquantum;

impl Workload for Libquantum {
    fn describe(&self) -> &'static str {
        "long unit-stride sweeps"
    }

    fn name(&self) -> &'static str {
        "libquantum"
    }

    fn pointer_intensive(&self) -> bool {
        false
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x11B0, input);
        let words = c.iters(input, 75_000, 300_000, 700_000) as u32;
        let passes = c.scale(input, 1, 1);
        let base = alloc_array(&mut c, words);
        for _ in 0..passes {
            for i in 0..words {
                let (v, id) = c.tb.load(0x1_0000, base + i * 4, None);
                c.tb.compute(2);
                if v & 0xFF == 0 {
                    c.tb.store(0x1_0004, base + i * 4, v ^ 1, Some(id));
                }
            }
        }
        c.tb.finish()
    }
}

/// `bwaves`: multi-array stencil sweeps (three input streams, one output).
#[derive(Debug, Clone, Copy, Default)]
pub struct Bwaves;

impl Workload for Bwaves {
    fn describe(&self) -> &'static str {
        "multi-array stencil streams"
    }

    fn name(&self) -> &'static str {
        "bwaves"
    }

    fn pointer_intensive(&self) -> bool {
        false
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0xB3A5, input);
        let words = c.iters(input, 30_000, 120_000, 250_000) as u32;
        let a = alloc_array(&mut c, words);
        let b = alloc_array(&mut c, words);
        let d = alloc_array(&mut c, words);
        for i in 1..words - 1 {
            let (x, _) = c.tb.load(0x2_0000, a + i * 4, None);
            let (y, _) = c.tb.load(0x2_0004, b + (i - 1) * 4, None);
            c.tb.compute(6);
            c.tb.store(0x2_0008, d + i * 4, x.wrapping_add(y), None);
        }
        c.tb.finish()
    }
}

/// `GemsFDTD`: field updates streaming over large 3D grids.
#[derive(Debug, Clone, Copy, Default)]
pub struct GemsFdtd;

impl Workload for GemsFdtd {
    fn describe(&self) -> &'static str {
        "field-update sweeps over large grids"
    }

    fn name(&self) -> &'static str {
        "GemsFDTD"
    }

    fn pointer_intensive(&self) -> bool {
        false
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x6E35, input);
        let words = c.iters(input, 40_000, 150_000, 300_000) as u32;
        let e = alloc_array(&mut c, words);
        let h = alloc_array(&mut c, words);
        let plane = 1024u32;
        for i in plane..words - plane {
            let (ex, _) = c.tb.load(0x3_0000, e + i * 4, None);
            let (hz, _) = c.tb.load(0x3_0004, h + (i - plane) * 4, None);
            c.tb.compute(8);
            c.tb.store(0x3_0008, e + i * 4, ex.wrapping_sub(hz), None);
        }
        c.tb.finish()
    }
}

/// `h264ref`: motion estimation — strided block reads with heavy compute.
#[derive(Debug, Clone, Copy, Default)]
pub struct H264ref;

impl Workload for H264ref {
    fn describe(&self) -> &'static str {
        "strided motion-estimation block reads"
    }

    fn name(&self) -> &'static str {
        "h264ref"
    }

    fn pointer_intensive(&self) -> bool {
        false
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x4264, input);
        let width = 512u32;
        let frames = c.iters(input, 15, 60, 120) as u32;
        let frame_words = width * 64;
        let cur = alloc_array(&mut c, frame_words);
        let reff = alloc_array(&mut c, frame_words);
        for f in 0..frames {
            let mby = (f * 7) % 48;
            for mbx in (0..width).step_by(16) {
                for row in 0..8u32 {
                    let off = ((mby + row) * width / 8 + mbx) % frame_words;
                    let _ = c.tb.load(0x4_0000, cur + off * 4, None);
                    let _ =
                        c.tb.load(0x4_0004, reff + ((off + 13) % frame_words) * 4, None);
                    c.tb.compute(20);
                }
            }
        }
        c.tb.finish()
    }
}

/// `hmmer`: dynamic-programming rows — sequential reads of the previous
/// row, sequential writes of the current one, lots of compute.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hmmer;

impl Workload for Hmmer {
    fn describe(&self) -> &'static str {
        "dynamic-programming row streaming with heavy compute"
    }

    fn name(&self) -> &'static str {
        "hmmer"
    }

    fn pointer_intensive(&self) -> bool {
        false
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x4333, input);
        let row_words = 4096u32;
        let rows = c.iters(input, 10, 40, 90) as u32;
        let a = alloc_array(&mut c, row_words * 2);
        for r in 0..rows {
            let (prev, cur) = if r % 2 == 0 {
                (a, a + row_words * 4)
            } else {
                (a + row_words * 4, a)
            };
            for i in 0..row_words {
                let (v, _) = c.tb.load(0x5_0000, prev + i * 4, None);
                c.tb.compute(10);
                c.tb.store(0x5_0004, cur + i * 4, v.wrapping_mul(3), None);
            }
        }
        c.tb.finish()
    }
}

/// `lbm`: lattice-Boltzmann — multiple interleaved streams per cell update.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lbm;

impl Workload for Lbm {
    fn describe(&self) -> &'static str {
        "interleaved lattice streams"
    }

    fn name(&self) -> &'static str {
        "lbm"
    }

    fn pointer_intensive(&self) -> bool {
        false
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x1B30, input);
        let cells = c.iters(input, 15_000, 60_000, 120_000) as u32;
        let src = alloc_array(&mut c, cells * 2);
        let dst = alloc_array(&mut c, cells * 2);
        for i in 0..cells {
            let (v0, _) = c.tb.load(0x6_0000, src + i * 8, None);
            let (v1, _) = c.tb.load(0x6_0004, src + i * 8 + 4, None);
            c.tb.compute(12);
            c.tb.store(0x6_0008, dst + i * 8, v0.wrapping_add(v1), None);
        }
        c.tb.finish()
    }
}

/// `milc`: strided SU(3) matrix accesses over a large lattice.
#[derive(Debug, Clone, Copy, Default)]
pub struct Milc;

impl Workload for Milc {
    fn describe(&self) -> &'static str {
        "strided SU(3) site accesses"
    }

    fn name(&self) -> &'static str {
        "milc"
    }

    fn pointer_intensive(&self) -> bool {
        false
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x3317, input);
        let sites = c.iters(input, 8_000, 30_000, 60_000) as u32;
        let site_words = 18u32;
        let lattice = alloc_array(&mut c, sites * site_words);
        for s in 0..sites {
            for w in (0..site_words).step_by(3) {
                let _ =
                    c.tb.load(0x7_0000, lattice + (s * site_words + w) * 4, None);
            }
            c.tb.compute(24);
        }
        c.tb.finish()
    }
}

/// `sjeng`: game-tree search — cache-resident tables and heavy compute;
/// nearly no off-chip traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sjeng;

impl Workload for Sjeng {
    fn describe(&self) -> &'static str {
        "cache-resident tables, compute bound"
    }

    fn name(&self) -> &'static str {
        "sjeng"
    }

    fn pointer_intensive(&self) -> bool {
        false
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x53E6, input);
        let table_words = 8_192u32; // 32 KB: fits in the L1
        let moves = c.iters(input, 10_000, 40_000, 90_000);
        let table = alloc_array(&mut c, table_words);
        for _ in 0..moves {
            let slot = c.rng.gen_range(0..table_words);
            let (v, id) = c.tb.load(0x8_0000, table + slot * 4, None);
            c.tb.compute(30);
            if v & 0x7 == 0 {
                c.tb.store(0x8_0004, table + slot * 4, v.rotate_left(3), Some(id));
            }
        }
        c.tb.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_streaming_workloads_generate() {
        for w in crate::registry::suite(crate::registry::SUITE_STREAMING) {
            let t = w.generate(InputSet::Train);
            assert!(t.memory_ops() > 10_000, "{}", w.name());
            assert!(!w.pointer_intensive());
        }
    }

    #[test]
    fn streaming_traces_have_no_lds_accesses() {
        let t = Libquantum.generate(InputSet::Train);
        let lds = t.ops.iter().filter(|o| o.lds).count();
        // Stores with value deps count as lds in the builder; sweeps are
        // overwhelmingly non-LDS.
        assert!((lds as f64) < 0.02 * t.ops.len() as f64);
    }

    #[test]
    fn sjeng_is_cache_resident() {
        let t = Sjeng.generate(InputSet::Train);
        // 32 KB table: the whole working set fits in L1.
        let distinct: std::collections::HashSet<_> = t
            .ops
            .iter()
            .filter(|o| o.addr != 0)
            .map(|o| sim_mem::block_of(o.addr))
            .collect();
        assert!(distinct.len() <= 8_192 * 4 / 64 + 2);
    }
}
