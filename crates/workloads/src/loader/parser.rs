//! Recursive-descent parser and canonical printer for the workload DSL.
//!
//! Grammar (semicolon-terminated statements, `#` comments):
//!
//! ```text
//! file      := workload*
//! workload  := 'workload' NAME '{' stmt* '}'
//! stmt      := 'seed' INT ';' | node | chain | traverse
//! node      := 'node' NAME '{' ('size' INT ';'
//!                              | ('ptr'|'field') NAME '@' INT ';')* '}'
//! chain     := 'chain' NAME ':' NODE '{' ('count' INT ';'
//!                              | 'layout' layout ';')* '}'
//! layout    := 'sequential' | 'shuffled' | 'padded' INT
//! traverse  := 'traverse' CHAIN '{' ('order' ('forward'|'scan') ';'
//!                              | 'repeat' INT ';'
//!                              | 'visit' '{' visit* '}')* '}'
//! visit     := 'load' FIELD ';' | 'compute' INT ';'
//! ```
//!
//! [`print_file`] emits the canonical form: `parse(print(parse(s)))`
//! prints identically to `parse(s)`, which is the round-trip property the
//! proptest suite pins.

use super::lexer::{Tok, Token};
use super::LoadError;

/// A parsed `.wl` file: one or more workload declarations.
#[derive(Debug, Clone)]
pub struct SpecFile {
    /// Declarations in source order.
    pub workloads: Vec<WorkloadSpec>,
}

/// One `workload NAME { ... }` declaration.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Declared name (registry key).
    pub name: String,
    /// Position of the name token.
    pub line: u32,
    /// Column of the name token.
    pub col: u32,
    /// RNG seed (default 0) feeding shuffled layouts and input-set salts.
    pub seed: u64,
    /// Node type declarations, in source order.
    pub nodes: Vec<NodeSpec>,
    /// Allocation chains, in source order.
    pub chains: Vec<ChainSpec>,
    /// Traversals, in source order (this is trace order).
    pub traversals: Vec<TraverseSpec>,
}

/// A node type: byte size plus named fields at fixed offsets.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Type name.
    pub name: String,
    /// Position of the name token.
    pub line: u32,
    /// Column of the name token.
    pub col: u32,
    /// Node size in bytes.
    pub size: u32,
    /// Fields in declaration order; the first `ptr` field is the link.
    pub fields: Vec<FieldSpec>,
}

/// One field of a node type.
#[derive(Debug, Clone)]
pub struct FieldSpec {
    /// Field name.
    pub name: String,
    /// Position of the name token.
    pub line: u32,
    /// Column of the name token.
    pub col: u32,
    /// True for `ptr` fields (hold node addresses), false for `field`.
    pub is_ptr: bool,
    /// Byte offset within the node (4-byte aligned).
    pub offset: u32,
}

/// Memory layout / fragmentation policy of a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Nodes allocated and linked in order — the prefetch-friendly case.
    Sequential,
    /// Allocated in order, linked in a seeded random permutation — the
    /// adversarial pointer-chase case.
    Shuffled,
    /// Allocated in order with `N` pad bytes kept between nodes —
    /// fragmented heaps.
    Padded(u32),
}

/// A `chain NAME: NODE { ... }` allocation declaration.
#[derive(Debug, Clone)]
pub struct ChainSpec {
    /// Chain name (referenced by traversals).
    pub name: String,
    /// Position of the name token.
    pub line: u32,
    /// Column of the name token.
    pub col: u32,
    /// Node type name.
    pub node: String,
    /// Number of nodes.
    pub count: u32,
    /// Allocation layout (default [`Layout::Sequential`]).
    pub layout: Layout,
}

/// Traversal order over a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Pointer chase through the link field (dependent LDS loads).
    Forward,
    /// Allocation-order scan (independent loads, no pointer deps).
    Scan,
}

/// A `traverse CHAIN { ... }` declaration.
#[derive(Debug, Clone)]
pub struct TraverseSpec {
    /// Chain being traversed.
    pub chain: String,
    /// Position of the chain-name token.
    pub line: u32,
    /// Column of the chain-name token.
    pub col: u32,
    /// Traversal order (default [`Order::Forward`]).
    pub order: Order,
    /// Repetitions on the `Ref` input (scaled down for `Train`/`Test`).
    pub repeat: u32,
    /// Per-node visit statements.
    pub visit: Vec<VisitStmt>,
}

/// One statement of a `visit { ... }` block, executed per node.
#[derive(Debug, Clone)]
pub enum VisitStmt {
    /// Load a named field of the current node.
    Load {
        /// Field name.
        field: String,
        /// Position of the field-name token.
        line: u32,
        /// Column of the field-name token.
        col: u32,
    },
    /// `count` ALU instructions of work.
    Compute {
        /// Instruction count.
        count: u32,
    },
}

struct P<'a> {
    toks: &'a [Token],
    i: usize,
}

impl<'a> P<'a> {
    fn here(&self) -> (u32, u32) {
        self.toks
            .get(self.i)
            .or_else(|| self.toks.last())
            .map_or((1, 1), |t| (t.line, t.col))
    }

    fn err(&self, msg: impl Into<String>) -> LoadError {
        let (line, col) = self.here();
        LoadError::new(line, col, msg)
    }

    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.i).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.i);
        self.i += 1;
        t
    }

    fn expect(&mut self, want: &Tok, ctx: &str) -> Result<(), LoadError> {
        match self.next() {
            Some(t) if t.tok == *want => Ok(()),
            Some(t) => Err(LoadError::new(
                t.line,
                t.col,
                format!("expected {want} {ctx}, found {}", t.tok),
            )),
            None => Err(self.err(format!("expected {want} {ctx}, found end of file"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, u32, u32), LoadError> {
        match self.next() {
            Some(Token {
                tok: Tok::Ident(s),
                line,
                col,
            }) => Ok((s.clone(), *line, *col)),
            Some(t) => Err(LoadError::new(
                t.line,
                t.col,
                format!("expected {what}, found {}", t.tok),
            )),
            None => Err(self.err(format!("expected {what}, found end of file"))),
        }
    }

    fn int(&mut self, what: &str) -> Result<(u64, u32, u32), LoadError> {
        match self.next() {
            Some(Token {
                tok: Tok::Int(v),
                line,
                col,
            }) => Ok((*v, *line, *col)),
            Some(t) => Err(LoadError::new(
                t.line,
                t.col,
                format!("expected {what}, found {}", t.tok),
            )),
            None => Err(self.err(format!("expected {what}, found end of file"))),
        }
    }

    fn int_u32(&mut self, what: &str) -> Result<(u32, u32, u32), LoadError> {
        let (v, line, col) = self.int(what)?;
        let v = u32::try_from(v).map_err(|_| {
            LoadError::new(line, col, format!("{what} `{v}` does not fit in 32 bits"))
        })?;
        Ok((v, line, col))
    }
}

/// Parses a token stream into a [`SpecFile`].
///
/// # Errors
///
/// Syntax errors (structural validation is a separate pass — see
/// [`super::compile::validate`]).
pub fn parse(toks: &[Token]) -> Result<SpecFile, LoadError> {
    let mut p = P { toks, i: 0 };
    let mut workloads = Vec::new();
    while p.peek().is_some() {
        workloads.push(parse_workload(&mut p)?);
    }
    Ok(SpecFile { workloads })
}

fn parse_workload(p: &mut P) -> Result<WorkloadSpec, LoadError> {
    let (kw, line, col) = p.ident("`workload`")?;
    if kw != "workload" {
        return Err(LoadError::new(
            line,
            col,
            format!("expected `workload`, found `{kw}`"),
        ));
    }
    let (name, nline, ncol) = p.ident("a workload name")?;
    p.expect(&Tok::LBrace, "after the workload name")?;
    let mut spec = WorkloadSpec {
        name,
        line: nline,
        col: ncol,
        seed: 0,
        nodes: Vec::new(),
        chains: Vec::new(),
        traversals: Vec::new(),
    };
    let mut seed_seen = false;
    loop {
        match p.peek() {
            Some(Tok::RBrace) => {
                p.next();
                break;
            }
            Some(Tok::Ident(_)) => {
                let (stmt, sline, scol) = p.ident("a statement")?;
                match stmt.as_str() {
                    "seed" => {
                        if seed_seen {
                            return Err(LoadError::new(sline, scol, "duplicate `seed` statement"));
                        }
                        seed_seen = true;
                        spec.seed = p.int("a seed value")?.0;
                        p.expect(&Tok::Semi, "after the seed value")?;
                    }
                    "node" => spec.nodes.push(parse_node(p)?),
                    "chain" => spec.chains.push(parse_chain(p)?),
                    "traverse" => spec.traversals.push(parse_traverse(p)?),
                    other => {
                        return Err(LoadError::new(
                            sline,
                            scol,
                            format!(
                                "unknown workload statement `{other}` \
                                 (expected `seed`, `node`, `chain` or `traverse`)"
                            ),
                        ))
                    }
                }
            }
            _ => return Err(p.err("expected a statement or `}` in the workload body")),
        }
    }
    Ok(spec)
}

fn parse_node(p: &mut P) -> Result<NodeSpec, LoadError> {
    let (name, line, col) = p.ident("a node type name")?;
    p.expect(&Tok::LBrace, "after the node name")?;
    let mut size: Option<u32> = None;
    let mut fields = Vec::new();
    loop {
        match p.peek() {
            Some(Tok::RBrace) => {
                p.next();
                break;
            }
            Some(Tok::Ident(_)) => {
                let (stmt, sline, scol) = p.ident("a node statement")?;
                match stmt.as_str() {
                    "size" => {
                        if size.is_some() {
                            return Err(LoadError::new(sline, scol, "duplicate `size` statement"));
                        }
                        size = Some(p.int_u32("a node size")?.0);
                        p.expect(&Tok::Semi, "after the node size")?;
                    }
                    kind @ ("ptr" | "field") => {
                        let (fname, fline, fcol) = p.ident("a field name")?;
                        p.expect(&Tok::At, "after the field name")?;
                        let (offset, _, _) = p.int_u32("a field offset")?;
                        p.expect(&Tok::Semi, "after the field offset")?;
                        fields.push(FieldSpec {
                            name: fname,
                            line: fline,
                            col: fcol,
                            is_ptr: kind == "ptr",
                            offset,
                        });
                    }
                    other => {
                        return Err(LoadError::new(
                            sline,
                            scol,
                            format!(
                                "unknown node statement `{other}` \
                                 (expected `size`, `ptr` or `field`)"
                            ),
                        ))
                    }
                }
            }
            _ => return Err(p.err("expected a statement or `}` in the node body")),
        }
    }
    let size = size.ok_or_else(|| {
        LoadError::new(
            line,
            col,
            format!("node `{name}` is missing a `size` statement"),
        )
    })?;
    Ok(NodeSpec {
        name,
        line,
        col,
        size,
        fields,
    })
}

fn parse_chain(p: &mut P) -> Result<ChainSpec, LoadError> {
    let (name, line, col) = p.ident("a chain name")?;
    p.expect(&Tok::Colon, "after the chain name")?;
    let (node, _, _) = p.ident("a node type name")?;
    p.expect(&Tok::LBrace, "after the node type")?;
    let mut count: Option<u32> = None;
    let mut layout: Option<Layout> = None;
    loop {
        match p.peek() {
            Some(Tok::RBrace) => {
                p.next();
                break;
            }
            Some(Tok::Ident(_)) => {
                let (stmt, sline, scol) = p.ident("a chain statement")?;
                match stmt.as_str() {
                    "count" => {
                        if count.is_some() {
                            return Err(LoadError::new(sline, scol, "duplicate `count` statement"));
                        }
                        count = Some(p.int_u32("a node count")?.0);
                        p.expect(&Tok::Semi, "after the node count")?;
                    }
                    "layout" => {
                        if layout.is_some() {
                            return Err(LoadError::new(
                                sline,
                                scol,
                                "duplicate `layout` statement",
                            ));
                        }
                        let (kind, kline, kcol) = p.ident("a layout kind")?;
                        layout = Some(match kind.as_str() {
                            "sequential" => Layout::Sequential,
                            "shuffled" => Layout::Shuffled,
                            "padded" => Layout::Padded(p.int_u32("a pad size")?.0),
                            other => {
                                return Err(LoadError::new(
                                    kline,
                                    kcol,
                                    format!(
                                        "unknown layout `{other}` \
                                         (expected `sequential`, `shuffled` or `padded N`)"
                                    ),
                                ))
                            }
                        });
                        p.expect(&Tok::Semi, "after the layout")?;
                    }
                    other => {
                        return Err(LoadError::new(
                            sline,
                            scol,
                            format!(
                                "unknown chain statement `{other}` \
                                 (expected `count` or `layout`)"
                            ),
                        ))
                    }
                }
            }
            _ => return Err(p.err("expected a statement or `}` in the chain body")),
        }
    }
    let count = count.ok_or_else(|| {
        LoadError::new(
            line,
            col,
            format!("chain `{name}` is missing a `count` statement"),
        )
    })?;
    Ok(ChainSpec {
        name,
        line,
        col,
        node,
        count,
        layout: layout.unwrap_or(Layout::Sequential),
    })
}

fn parse_traverse(p: &mut P) -> Result<TraverseSpec, LoadError> {
    let (chain, line, col) = p.ident("a chain name")?;
    p.expect(&Tok::LBrace, "after the chain name")?;
    let mut order: Option<Order> = None;
    let mut repeat: Option<u32> = None;
    let mut visit: Option<Vec<VisitStmt>> = None;
    loop {
        match p.peek() {
            Some(Tok::RBrace) => {
                p.next();
                break;
            }
            Some(Tok::Ident(_)) => {
                let (stmt, sline, scol) = p.ident("a traverse statement")?;
                match stmt.as_str() {
                    "order" => {
                        if order.is_some() {
                            return Err(LoadError::new(sline, scol, "duplicate `order` statement"));
                        }
                        let (kind, kline, kcol) = p.ident("a traversal order")?;
                        order = Some(match kind.as_str() {
                            "forward" => Order::Forward,
                            "scan" => Order::Scan,
                            other => {
                                return Err(LoadError::new(
                                    kline,
                                    kcol,
                                    format!(
                                        "unknown order `{other}` (expected `forward` or `scan`)"
                                    ),
                                ))
                            }
                        });
                        p.expect(&Tok::Semi, "after the order")?;
                    }
                    "repeat" => {
                        if repeat.is_some() {
                            return Err(LoadError::new(
                                sline,
                                scol,
                                "duplicate `repeat` statement",
                            ));
                        }
                        repeat = Some(p.int_u32("a repeat count")?.0);
                        p.expect(&Tok::Semi, "after the repeat count")?;
                    }
                    "visit" => {
                        if visit.is_some() {
                            return Err(LoadError::new(sline, scol, "duplicate `visit` block"));
                        }
                        visit = Some(parse_visit(p)?);
                    }
                    other => {
                        return Err(LoadError::new(
                            sline,
                            scol,
                            format!(
                                "unknown traverse statement `{other}` \
                                 (expected `order`, `repeat` or `visit`)"
                            ),
                        ))
                    }
                }
            }
            _ => return Err(p.err("expected a statement or `}` in the traverse body")),
        }
    }
    Ok(TraverseSpec {
        chain,
        line,
        col,
        order: order.unwrap_or(Order::Forward),
        repeat: repeat.unwrap_or(1),
        visit: visit.unwrap_or_default(),
    })
}

fn parse_visit(p: &mut P) -> Result<Vec<VisitStmt>, LoadError> {
    p.expect(&Tok::LBrace, "after `visit`")?;
    let mut out = Vec::new();
    loop {
        match p.peek() {
            Some(Tok::RBrace) => {
                p.next();
                break;
            }
            Some(Tok::Ident(_)) => {
                let (stmt, sline, scol) = p.ident("a visit statement")?;
                match stmt.as_str() {
                    "load" => {
                        let (field, fline, fcol) = p.ident("a field name")?;
                        p.expect(&Tok::Semi, "after the field name")?;
                        out.push(VisitStmt::Load {
                            field,
                            line: fline,
                            col: fcol,
                        });
                    }
                    "compute" => {
                        let (count, _, _) = p.int_u32("an instruction count")?;
                        p.expect(&Tok::Semi, "after the instruction count")?;
                        out.push(VisitStmt::Compute { count });
                    }
                    other => {
                        return Err(LoadError::new(
                            sline,
                            scol,
                            format!(
                                "unknown visit statement `{other}` \
                                 (expected `load` or `compute`)"
                            ),
                        ))
                    }
                }
            }
            _ => return Err(p.err("expected a statement or `}` in the visit block")),
        }
    }
    Ok(out)
}

/// Prints a workload in canonical form (fixed statement order and
/// formatting, decimal integers).
pub fn print_spec(spec: &WorkloadSpec) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "workload {} {{", spec.name);
    let _ = writeln!(s, "    seed {};", spec.seed);
    for n in &spec.nodes {
        let _ = write!(s, "    node {} {{ size {};", n.name, n.size);
        for f in &n.fields {
            let kw = if f.is_ptr { "ptr" } else { "field" };
            let _ = write!(s, " {kw} {} @ {};", f.name, f.offset);
        }
        let _ = writeln!(s, " }}");
    }
    for c in &spec.chains {
        let _ = write!(s, "    chain {}: {} {{ count {};", c.name, c.node, c.count);
        match c.layout {
            Layout::Sequential => {
                let _ = write!(s, " layout sequential;");
            }
            Layout::Shuffled => {
                let _ = write!(s, " layout shuffled;");
            }
            Layout::Padded(p) => {
                let _ = write!(s, " layout padded {p};");
            }
        }
        let _ = writeln!(s, " }}");
    }
    for t in &spec.traversals {
        let order = match t.order {
            Order::Forward => "forward",
            Order::Scan => "scan",
        };
        let _ = write!(
            s,
            "    traverse {} {{ order {order}; repeat {}; visit {{",
            t.chain, t.repeat
        );
        for v in &t.visit {
            match v {
                VisitStmt::Load { field, .. } => {
                    let _ = write!(s, " load {field};");
                }
                VisitStmt::Compute { count } => {
                    let _ = write!(s, " compute {count};");
                }
            }
        }
        let _ = writeln!(s, " }} }}");
    }
    s.push_str("}\n");
    s
}

/// Prints a whole file in canonical form.
pub fn print_file(file: &SpecFile) -> String {
    file.workloads
        .iter()
        .map(print_spec)
        .collect::<Vec<_>>()
        .join("\n")
}
