//! Tokenizer for the workload DSL.
//!
//! The DSL has five punctuation tokens (`{` `}` `;` `:` `@`), identifiers
//! and integers (decimal or `0x` hexadecimal). Keywords are contextual —
//! the parser decides which identifiers mean what — so node and field
//! names may reuse words like `size`. `#` starts a comment running to end
//! of line.

use super::LoadError;

/// A token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or contextual keyword.
    Ident(String),
    /// Integer literal (decimal or `0x` hex).
    Int(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `@`
    At,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::At => f.write_str("`@`"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind and payload.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

/// Tokenizes `src`.
///
/// # Errors
///
/// [`LoadError`] on the first unexpected character or malformed number.
pub fn lex(src: &str) -> Result<Vec<Token>, LoadError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let (mut line, mut col) = (1u32, 1u32);
    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            _ if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '#' => {
                while chars.peek().is_some_and(|&c| c != '\n') {
                    chars.next();
                }
            }
            '{' | '}' | ';' | ':' | '@' => {
                chars.next();
                col += 1;
                out.push(Token {
                    tok: match c {
                        '{' => Tok::LBrace,
                        '}' => Tok::RBrace,
                        ';' => Tok::Semi,
                        ':' => Tok::Colon,
                        _ => Tok::At,
                    },
                    line: tline,
                    col: tcol,
                });
            }
            _ if c.is_ascii_digit() || c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(&w) = chars.peek() {
                    if !(w.is_ascii_alphanumeric() || w == '_') {
                        break;
                    }
                    text.push(w);
                    chars.next();
                    col += 1;
                }
                let tok = if c.is_ascii_digit() {
                    let digits = text.replace('_', "");
                    let parsed = if let Some(hex) = digits
                        .strip_prefix("0x")
                        .or_else(|| digits.strip_prefix("0X"))
                    {
                        u64::from_str_radix(hex, 16)
                    } else {
                        digits.parse::<u64>()
                    };
                    Tok::Int(parsed.map_err(|_| {
                        LoadError::new(tline, tcol, format!("malformed integer literal `{text}`"))
                    })?)
                } else {
                    Tok::Ident(text)
                };
                out.push(Token {
                    tok,
                    line: tline,
                    col: tcol,
                });
            }
            other => {
                return Err(LoadError::new(
                    tline,
                    tcol,
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn lexes_punctuation_idents_and_ints() {
        let toks = lex("node N { size 24; ptr next @ 0x10; }").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert_eq!(kinds[0], &Tok::Ident("node".to_string()));
        assert_eq!(kinds[4], &Tok::Int(24));
        assert!(kinds.contains(&&Tok::At));
        assert_eq!(kinds.last().unwrap(), &&Tok::RBrace);
        assert!(toks.iter().any(|t| t.tok == Tok::Int(0x10)));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn comments_run_to_end_of_line() {
        let toks = lex("a # b c d\ne").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].tok, Tok::Ident("e".to_string()));
    }

    #[test]
    fn bad_character_reports_position() {
        let err = lex("seed 1;\n  $oops").unwrap_err();
        assert_eq!((err.line, err.col), (2, 3));
        assert!(err.msg.contains('$'), "{}", err.msg);
    }

    #[test]
    fn malformed_number_is_an_error() {
        let err = lex("size 12abc;").unwrap_err();
        assert!(err.msg.contains("12abc"), "{}", err.msg);
        let err = lex("size 0x;").unwrap_err();
        assert!(err.msg.contains("0x"), "{}", err.msg);
    }
}
