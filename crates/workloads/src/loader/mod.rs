//! Loader pipeline for bring-your-own workloads.
//!
//! Two file formats feed the simulator from outside the built-in suite:
//!
//! * `.wl` — a small workload-description DSL declaring allocation graphs
//!   (node layouts, pointer fields, fragmentation policy) and traversal
//!   orders, compiled into the same [`crate::Workload`] →
//!   [`sim_core::Trace`] contract the built-ins use
//!   ([`lexer`] → [`parser`] → [`compile`]);
//! * `.trace` — a line-oriented text form of a raw op stream for
//!   hand-written tests ([`trace_text`]); the binary streaming sibling
//!   (`.xtrc`) lives in [`sim_core::stream`].
//!
//! Every stage reports failures as a [`LoadError`] carrying the line and
//! column of the offending construct; the CLI maps those to exit 2.

pub mod compile;
pub mod lexer;
pub mod parser;
pub mod trace_text;

pub use compile::DslWorkload;
pub use parser::{print_file, print_spec, SpecFile, WorkloadSpec};
pub use trace_text::parse_trace;

/// A parse or validation failure, located in the source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadError {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// What went wrong, naming the field or construct.
    pub msg: String,
}

impl LoadError {
    pub(crate) fn new(line: u32, col: u32, msg: impl Into<String>) -> Self {
        LoadError {
            line,
            col,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}, column {}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for LoadError {}

/// Lexes, parses and validates a `.wl` source string.
///
/// # Errors
///
/// The first [`LoadError`] encountered, with line/column position.
pub fn parse_file(src: &str) -> Result<SpecFile, LoadError> {
    let toks = lexer::lex(src)?;
    let file = parser::parse(&toks)?;
    compile::validate(&file)?;
    Ok(file)
}

/// Parses a `.wl` source string into ready-to-run workloads.
///
/// # Errors
///
/// The first [`LoadError`] encountered, with line/column position.
pub fn load_specs(src: &str) -> Result<Vec<DslWorkload>, LoadError> {
    let file = parse_file(src)?;
    Ok(file.workloads.into_iter().map(DslWorkload::new).collect())
}
