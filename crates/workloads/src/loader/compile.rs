//! Structural validation and trace compilation for parsed DSL specs.

use rand::seq::SliceRandom;
use sim_core::Trace;
use sim_mem::{layout, Addr};

use super::parser::{
    ChainSpec, Layout, NodeSpec, Order, SpecFile, TraverseSpec, VisitStmt, WorkloadSpec,
};
use super::LoadError;
use crate::common::Ctx;
use crate::{InputSet, Workload};

/// Heap alignment applied per allocation (mirrors `sim_mem::Heap`).
const ALLOC_ALIGN: u32 = 8;
/// PC region for DSL-generated instructions, clear of the built-in
/// workloads' PC ranges.
const PC_BASE: u32 = 0x0010_0000;
/// PC stride between traversals.
const PC_TRAVERSAL_STRIDE: u32 = 0x100;
/// PC of a traversal's pointer-advance load (top of its PC block, so
/// visit statements at `+4*s` never collide with it).
const PC_ADVANCE: u32 = 0xFC;
/// Statement limit keeping visit PCs below [`PC_ADVANCE`].
const MAX_VISIT_STMTS: usize = 62;

fn align_up(v: u32, align: u32) -> u64 {
    (u64::from(v) + u64::from(align) - 1) & !u64::from(align - 1)
}

/// Validates a parsed file: reference resolution, layout constraints and
/// heap capacity. On success every spec in the file is compilable.
///
/// # Errors
///
/// The first violation, positioned at the offending construct.
pub fn validate(file: &SpecFile) -> Result<(), LoadError> {
    let mut names: Vec<&str> = Vec::new();
    for spec in &file.workloads {
        if names.contains(&spec.name.as_str()) {
            return Err(LoadError::new(
                spec.line,
                spec.col,
                format!("duplicate workload name `{}`", spec.name),
            ));
        }
        names.push(&spec.name);
        validate_workload(spec)?;
    }
    Ok(())
}

fn validate_workload(spec: &WorkloadSpec) -> Result<(), LoadError> {
    for (i, node) in spec.nodes.iter().enumerate() {
        if spec.nodes[..i].iter().any(|n| n.name == node.name) {
            return Err(LoadError::new(
                node.line,
                node.col,
                format!("duplicate node type `{}`", node.name),
            ));
        }
        validate_node(node)?;
    }
    let mut heap_bytes: u64 = 0;
    let heap_capacity = u64::from(layout::HEAP_LIMIT - layout::HEAP_BASE) + 1;
    for (i, chain) in spec.chains.iter().enumerate() {
        if spec.chains[..i].iter().any(|c| c.name == chain.name) {
            return Err(LoadError::new(
                chain.line,
                chain.col,
                format!("duplicate chain `{}`", chain.name),
            ));
        }
        let node = find_node(spec, &chain.node).ok_or_else(|| {
            LoadError::new(
                chain.line,
                chain.col,
                format!(
                    "chain `{}` references unknown node type `{}`",
                    chain.name, chain.node
                ),
            )
        })?;
        if !node.fields.iter().any(|f| f.is_ptr) {
            return Err(LoadError::new(
                chain.line,
                chain.col,
                format!(
                    "chain `{}` needs a node type with at least one `ptr` field, \
                     but `{}` declares none",
                    chain.name, chain.node
                ),
            ));
        }
        if chain.count == 0 {
            return Err(LoadError::new(
                chain.line,
                chain.col,
                format!("chain `{}`: field `count` must be at least 1", chain.name),
            ));
        }
        let pad = match chain.layout {
            Layout::Padded(p) => {
                if p == 0 || p > 65536 {
                    return Err(LoadError::new(
                        chain.line,
                        chain.col,
                        format!(
                            "chain `{}`: padded layout size {p} is out of range (1..=65536)",
                            chain.name
                        ),
                    ));
                }
                p
            }
            _ => 0,
        };
        let per_node = align_up(node.size, ALLOC_ALIGN) + align_up(pad, ALLOC_ALIGN);
        heap_bytes += per_node * u64::from(chain.count);
        if heap_bytes > heap_capacity {
            return Err(LoadError::new(
                chain.line,
                chain.col,
                format!(
                    "chain `{}`: allocations exceed the {heap_capacity}-byte simulated heap \
                     ({heap_bytes} bytes requested so far)",
                    chain.name
                ),
            ));
        }
    }
    if spec.traversals.is_empty() {
        return Err(LoadError::new(
            spec.line,
            spec.col,
            format!(
                "workload `{}` declares no `traverse` block, so its trace would be empty",
                spec.name
            ),
        ));
    }
    for t in &spec.traversals {
        validate_traverse(spec, t)?;
    }
    Ok(())
}

fn validate_node(node: &NodeSpec) -> Result<(), LoadError> {
    if node.size < 4 || node.size > 65536 {
        return Err(LoadError::new(
            node.line,
            node.col,
            format!(
                "node `{}`: field `size` is {}, expected 4..=65536",
                node.name, node.size
            ),
        ));
    }
    for (i, f) in node.fields.iter().enumerate() {
        if node.fields[..i].iter().any(|g| g.name == f.name) {
            return Err(LoadError::new(
                f.line,
                f.col,
                format!("duplicate field `{}` in node `{}`", f.name, node.name),
            ));
        }
        if f.offset % 4 != 0 {
            return Err(LoadError::new(
                f.line,
                f.col,
                format!(
                    "field `{}` of node `{}`: offset {} is not 4-byte aligned",
                    f.name, node.name, f.offset
                ),
            ));
        }
        if f.offset + 4 > node.size {
            return Err(LoadError::new(
                f.line,
                f.col,
                format!(
                    "field `{}` of node `{}`: offset {} does not fit in the {}-byte node",
                    f.name, node.name, f.offset, node.size
                ),
            ));
        }
    }
    Ok(())
}

fn validate_traverse(spec: &WorkloadSpec, t: &TraverseSpec) -> Result<(), LoadError> {
    let chain = spec
        .chains
        .iter()
        .find(|c| c.name == t.chain)
        .ok_or_else(|| {
            LoadError::new(
                t.line,
                t.col,
                format!("traverse references unknown chain `{}`", t.chain),
            )
        })?;
    let node = find_node(spec, &chain.node).expect("chain already validated");
    if t.repeat == 0 {
        return Err(LoadError::new(
            t.line,
            t.col,
            "field `repeat` must be at least 1".to_string(),
        ));
    }
    if t.visit.is_empty() {
        return Err(LoadError::new(
            t.line,
            t.col,
            format!(
                "traverse of `{}` has an empty `visit` block; visit at least one field",
                t.chain
            ),
        ));
    }
    if t.visit.len() > MAX_VISIT_STMTS {
        return Err(LoadError::new(
            t.line,
            t.col,
            format!(
                "`visit` block has {} statements, max {MAX_VISIT_STMTS}",
                t.visit.len()
            ),
        ));
    }
    for v in &t.visit {
        match v {
            VisitStmt::Load { field, line, col } => {
                if !node.fields.iter().any(|f| &f.name == field) {
                    return Err(LoadError::new(
                        *line,
                        *col,
                        format!(
                            "visit loads unknown field `{field}` of node `{}`",
                            node.name
                        ),
                    ));
                }
            }
            VisitStmt::Compute { count } => {
                if *count == 0 {
                    return Err(LoadError::new(
                        t.line,
                        t.col,
                        "field `compute` must be at least 1".to_string(),
                    ));
                }
            }
        }
    }
    Ok(())
}

fn find_node<'a>(spec: &'a WorkloadSpec, name: &str) -> Option<&'a NodeSpec> {
    spec.nodes.iter().find(|n| n.name == name)
}

/// A workload compiled from a validated DSL spec.
///
/// The name is leaked to `&'static str` once at construction so DSL
/// workloads satisfy the same [`Workload`] contract as the built-ins;
/// registration is process-global and bounded by the number of loaded
/// files, so the leak is a constant.
pub struct DslWorkload {
    name: &'static str,
    spec: WorkloadSpec,
}

impl DslWorkload {
    /// Wraps a spec that already passed [`validate`].
    pub fn new(spec: WorkloadSpec) -> Self {
        let name: &'static str = Box::leak(spec.name.clone().into_boxed_str());
        DslWorkload { name, spec }
    }

    /// The validated spec (for printing / provenance).
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }
}

impl std::fmt::Debug for DslWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DslWorkload")
            .field("name", &self.name)
            .finish()
    }
}

impl Workload for DslWorkload {
    fn name(&self) -> &'static str {
        self.name
    }

    fn pointer_intensive(&self) -> bool {
        self.spec
            .traversals
            .iter()
            .any(|t| t.order == Order::Forward)
    }

    fn describe(&self) -> &'static str {
        "workload compiled from a .wl spec"
    }

    fn generate(&self, input: InputSet) -> Trace {
        compile(&self.spec, input)
    }
}

struct BuiltChain<'a> {
    name: &'a str,
    node: &'a NodeSpec,
    /// Node addresses in allocation order.
    alloc: Vec<Addr>,
    /// Permutation of `alloc` indices giving the link order.
    link_seq: Vec<usize>,
}

/// Compiles a validated spec into a trace for the given input set.
///
/// Deterministic: the same spec and input always produce the same trace.
/// `Train` runs half the declared repeats (its RNG salt also differs, so
/// shuffled layouts differ between profiling and measurement, matching
/// the paper's train-vs-ref input discipline); `Test` runs one.
fn compile(spec: &WorkloadSpec, input: InputSet) -> Trace {
    let mut ctx = Ctx::new(spec.seed, input);
    let mut chains: Vec<BuiltChain> = Vec::with_capacity(spec.chains.len());
    for chain in &spec.chains {
        chains.push(build_chain(spec, chain, &mut ctx));
    }
    for (ti, t) in spec.traversals.iter().enumerate() {
        let built = chains
            .iter()
            .find(|c| c.name == t.chain)
            .expect("validated chain reference");
        let reps = match input {
            InputSet::Test => 1,
            InputSet::Train => (t.repeat / 2).max(1),
            InputSet::Ref => t.repeat,
        };
        let pc = PC_BASE + ti as u32 * PC_TRAVERSAL_STRIDE;
        for _ in 0..reps {
            match t.order {
                Order::Forward => chase(built, t, pc, &mut ctx),
                Order::Scan => scan(built, t, pc, &mut ctx),
            }
        }
    }
    ctx.tb.finish()
}

fn build_chain<'a>(spec: &'a WorkloadSpec, chain: &'a ChainSpec, ctx: &mut Ctx) -> BuiltChain<'a> {
    let node = find_node(spec, &chain.node).expect("validated node reference");
    let mut alloc = Vec::with_capacity(chain.count as usize);
    for _ in 0..chain.count {
        // Padded layouts keep a fragmentation gap before every node.
        let a = match chain.layout {
            Layout::Padded(pad) => ctx.heap.alloc_padded(node.size, pad),
            _ => ctx.heap.alloc(node.size),
        }
        .expect("heap capacity validated");
        alloc.push(a);
    }
    let mut link_seq: Vec<usize> = (0..alloc.len()).collect();
    if chain.layout == Layout::Shuffled {
        link_seq.shuffle(&mut ctx.rng);
    }
    let link_off = node
        .fields
        .iter()
        .find(|f| f.is_ptr)
        .expect("validated ptr field")
        .offset;
    ctx.tb.setup(|m| {
        for (pos, &ai) in link_seq.iter().enumerate() {
            let next = link_seq.get(pos + 1).map_or(0, |&ni| alloc[ni]);
            for (fi, f) in node.fields.iter().enumerate() {
                let v = if f.is_ptr {
                    if f.offset == link_off {
                        next
                    } else {
                        0
                    }
                } else {
                    // Deterministic data pattern: varies per node and per
                    // field so block contents are not degenerate.
                    (ai as u32).wrapping_mul(0x9E37_79B9) ^ fi as u32
                };
                m.write_u32(alloc[ai] + f.offset, v);
            }
        }
    });
    BuiltChain {
        name: &chain.name,
        node,
        alloc,
        link_seq,
    }
}

/// Pointer chase in link order: each advance load depends on the
/// previous one, and every access in the chase is an LDS access.
fn chase(built: &BuiltChain, t: &TraverseSpec, pc: u32, ctx: &mut Ctx) {
    let link_off = built
        .node
        .fields
        .iter()
        .find(|f| f.is_ptr)
        .expect("validated ptr field")
        .offset;
    let field_off = |name: &str| {
        built
            .node
            .fields
            .iter()
            .find(|f| f.name == name)
            .expect("validated field reference")
            .offset
    };
    ctx.tb.lds_begin();
    let mut cur = built.alloc[built.link_seq[0]];
    let mut dep = None;
    while cur != 0 {
        for (s, v) in t.visit.iter().enumerate() {
            match v {
                VisitStmt::Load { field, .. } => {
                    let _ = ctx.tb.load(pc + s as u32 * 4, cur + field_off(field), dep);
                }
                VisitStmt::Compute { count } => ctx.tb.compute(*count),
            }
        }
        let (next, id) = ctx.tb.load(pc + PC_ADVANCE, cur + link_off, dep);
        cur = next;
        dep = Some(id);
    }
    ctx.tb.lds_end();
}

/// Allocation-order scan: independent (non-LDS) loads, no pointer deps.
fn scan(built: &BuiltChain, t: &TraverseSpec, pc: u32, ctx: &mut Ctx) {
    let field_off = |name: &str| {
        built
            .node
            .fields
            .iter()
            .find(|f| f.name == name)
            .expect("validated field reference")
            .offset
    };
    for &a in &built.alloc {
        for (s, v) in t.visit.iter().enumerate() {
            match v {
                VisitStmt::Load { field, .. } => {
                    let _ = ctx.tb.load(pc + s as u32 * 4, a + field_off(field), None);
                }
                VisitStmt::Compute { count } => ctx.tb.compute(*count),
            }
        }
    }
}
