//! Text form of an external memory-access trace, for hand-written tests.
//!
//! One directive per line; `#` starts a comment. Integers are decimal or
//! `0x` hex:
//!
//! ```text
//! mem ADDR VALUE          # u32 write to the initial memory image
//! load PC ADDR [dep=K]    # 4-byte load; K = index of an earlier load
//! store PC ADDR VALUE [dep=K]
//! compute N               # N ALU instructions
//! ```
//!
//! `mem` directives must precede the first timed op (they build the
//! initial image). `dep=K` counts *loads*, 0-based, in file order — the
//! pointer-chase dependence edge. The result is a resident
//! [`sim_core::Trace`], byte-for-byte equivalent to recording the same
//! ops through [`sim_core::TraceBuilder`]; convert to the streaming
//! binary framing with [`sim_core::write_external`].

use sim_core::{LoadId, Trace, TraceBuilder};
use sim_mem::SimMemory;

use super::LoadError;

/// Splits a line into whitespace-separated tokens with 1-based columns,
/// dropping any `#` comment.
fn tokens_with_cols(raw: &str) -> Vec<(&str, u32)> {
    let body = raw.split('#').next().unwrap_or("");
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (i, c) in body.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = start.take() {
                out.push((&body[s..i], s as u32 + 1));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push((&body[s..], s as u32 + 1));
    }
    out
}

fn parse_u32(tok: &str) -> Option<u32> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else {
        tok.parse().ok()
    }
}

struct LineCtx {
    line: u32,
}

impl LineCtx {
    fn int(&self, toks: &[(&str, u32)], i: usize, what: &str) -> Result<u32, LoadError> {
        let (tok, col) = toks
            .get(i)
            .ok_or_else(|| LoadError::new(self.line, 1, format!("missing {what} operand")))?;
        parse_u32(tok).ok_or_else(|| {
            LoadError::new(
                self.line,
                *col,
                format!("malformed {what} `{tok}` (expected a decimal or 0x integer)"),
            )
        })
    }

    fn dep(
        &self,
        toks: &[(&str, u32)],
        i: usize,
        loads: &[LoadId],
    ) -> Result<Option<LoadId>, LoadError> {
        let Some((tok, col)) = toks.get(i) else {
            return Ok(None);
        };
        let k = tok
            .strip_prefix("dep=")
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or_else(|| {
                LoadError::new(
                    self.line,
                    *col,
                    format!("malformed operand `{tok}` (expected `dep=K`)"),
                )
            })?;
        if k >= loads.len() {
            return Err(LoadError::new(
                self.line,
                *col,
                format!(
                    "field `dep` names load {k}, but only {} loads precede this line",
                    loads.len()
                ),
            ));
        }
        Ok(Some(loads[k]))
    }

    fn exact(&self, toks: &[(&str, u32)], want: usize, usage: &str) -> Result<(), LoadError> {
        if toks.len() > want {
            let (tok, col) = toks[want];
            return Err(LoadError::new(
                self.line,
                col,
                format!("unexpected operand `{tok}` (usage: {usage})"),
            ));
        }
        Ok(())
    }
}

/// Parses the text trace form into a resident [`Trace`].
///
/// # Errors
///
/// [`LoadError`] with the line/column of the first malformed directive.
pub fn parse_trace(src: &str) -> Result<Trace, LoadError> {
    let mut tb = TraceBuilder::new(SimMemory::new());
    let mut loads: Vec<LoadId> = Vec::new();
    for (ln, raw) in src.lines().enumerate() {
        let cx = LineCtx {
            line: ln as u32 + 1,
        };
        let toks = tokens_with_cols(raw);
        let Some(&(dir, dcol)) = toks.first() else {
            continue;
        };
        match dir {
            "mem" => {
                if !tb.is_empty() {
                    return Err(LoadError::new(
                        cx.line,
                        dcol,
                        "`mem` directive after the first timed op; memory image \
                         lines must come first",
                    ));
                }
                let addr = cx.int(&toks, 1, "address")?;
                let value = cx.int(&toks, 2, "value")?;
                cx.exact(&toks, 3, "mem ADDR VALUE")?;
                tb.setup(|m| m.write_u32(addr, value));
            }
            "load" => {
                let pc = cx.int(&toks, 1, "pc")?;
                let addr = cx.int(&toks, 2, "address")?;
                let dep = cx.dep(&toks, 3, &loads)?;
                cx.exact(&toks, 4, "load PC ADDR [dep=K]")?;
                let (_, id) = tb.load(pc, addr, dep);
                loads.push(id);
            }
            "store" => {
                let pc = cx.int(&toks, 1, "pc")?;
                let addr = cx.int(&toks, 2, "address")?;
                let value = cx.int(&toks, 3, "value")?;
                let dep = cx.dep(&toks, 4, &loads)?;
                cx.exact(&toks, 5, "store PC ADDR VALUE [dep=K]")?;
                tb.store(pc, addr, value, dep);
            }
            "compute" => {
                let n = cx.int(&toks, 1, "instruction count")?;
                cx.exact(&toks, 2, "compute N")?;
                if n == 0 {
                    return Err(LoadError::new(
                        cx.line,
                        dcol,
                        "field `compute` must be at least 1",
                    ));
                }
                tb.compute(n);
            }
            other => {
                return Err(LoadError::new(
                    cx.line,
                    dcol,
                    format!(
                        "unknown directive `{other}` \
                         (expected `mem`, `load`, `store` or `compute`)"
                    ),
                ))
            }
        }
    }
    Ok(tb.finish())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use sim_core::{OpKind, NO_DEP};

    #[test]
    fn parses_a_two_node_chase() {
        let trace = parse_trace(
            "# two-node list\n\
             mem 0x40000000 0x40001000\n\
             mem 0x40001000 0\n\
             load 0x100 0x40000000\n\
             load 0x100 0x40001000 dep=0\n\
             compute 5\n",
        )
        .unwrap();
        assert_eq!(trace.ops.len(), 3);
        assert_eq!(trace.instructions, 7);
        assert_eq!(trace.ops[1].dep, 0);
        assert!(trace.ops[1].lds);
        assert_eq!(trace.ops[0].dep, NO_DEP);
        assert_eq!(trace.ops[2].kind, OpKind::Compute);
        assert_eq!(trace.initial_memory.read_u32(0x4000_0000), 0x4000_1000);
    }

    #[test]
    fn dep_out_of_range_reports_position() {
        let err = parse_trace("load 1 0x40000000\nload 1 0x40000000 dep=3\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 19);
        assert!(err.msg.contains("dep"), "{}", err.msg);
    }

    #[test]
    fn mem_after_ops_is_rejected() {
        let err = parse_trace("load 1 8\nmem 8 1\n").unwrap_err();
        assert_eq!((err.line, err.col), (2, 1));
        assert!(err.msg.contains("mem"), "{}", err.msg);
    }

    #[test]
    fn unknown_directive_is_rejected() {
        let err = parse_trace("  fetch 1 2\n").unwrap_err();
        assert_eq!((err.line, err.col), (1, 3));
        assert!(err.msg.contains("fetch"), "{}", err.msg);
    }

    #[test]
    fn malformed_int_names_the_operand() {
        let err = parse_trace("load pc_here 8\n").unwrap_err();
        assert_eq!((err.line, err.col), (1, 6));
        assert!(err.msg.contains("pc"), "{}", err.msg);
    }
}
