//! Stand-ins for the remaining Olden benchmarks — `treeadd`, `em3d`, `tsp`
//! and `power` — which the paper's §6.7 groups with the
//! non-pointer-intensive applications: they either fit in cache, stream
//! well, or bury their pointer misses under compute, so ideal LDS
//! prefetching gains them less than the paper's 10% intensity bar.

use rand::Rng;
use sim_core::{Addr, Trace};
use sim_mem::builders::{self, TREE_DATA_OFFSET, TREE_LEFT_OFFSET, TREE_RIGHT_OFFSET};

use crate::common::Ctx;
use crate::{InputSet, Workload};

/// `treeadd`: a single recursive sum over a balanced binary tree. The tree
/// is allocated breadth-first and visited depth-first, leaving enough
/// spatial structure that prefetching covers it well — and the whole
/// traversal touches each node exactly once, bounding any possible gain.
#[derive(Debug, Clone, Copy, Default)]
pub struct Treeadd;

/// PCs of `treeadd`'s static loads.
pub mod treeadd_pc {
    /// Node value load.
    pub const VALUE: u32 = 0x1_1000;
    /// Child pointer loads.
    pub const LEFT: u32 = 0x1_1004;
    /// Right child pointer load.
    pub const RIGHT: u32 = 0x1_1008;
}

impl Workload for Treeadd {
    fn describe(&self) -> &'static str {
        "single depth-first sum over a binary tree"
    }

    fn name(&self) -> &'static str {
        "treeadd"
    }

    fn pointer_intensive(&self) -> bool {
        false
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x7ADD, input);
        let depth = c.iters(input, 13, 15, 16) as u32;
        let mut tree = None;
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                tree = Some(
                    builders::build_binary_tree(mem, heap, depth, rng)
                        .expect("workload heap exhausted"),
                );
            });
        }
        let tree = tree.expect("built on the first outer iteration");

        // Iterative post-order sum.
        let mut stack: Vec<(Addr, Option<sim_core::trace::LoadId>)> = vec![(tree.root, None)];
        while let Some((node, dep)) = stack.pop() {
            let (_, vid) = c.tb.load(treeadd_pc::VALUE, node + TREE_DATA_OFFSET, dep);
            c.tb.compute(3);
            let (l, lid) =
                c.tb.load(treeadd_pc::LEFT, node + TREE_LEFT_OFFSET, Some(vid));
            let (r, rid) =
                c.tb.load(treeadd_pc::RIGHT, node + TREE_RIGHT_OFFSET, Some(vid));
            if l != 0 {
                stack.push((l, Some(lid)));
            }
            if r != 0 {
                stack.push((r, Some(rid)));
            }
        }
        c.tb.finish()
    }
}

/// `em3d`: electromagnetic wave propagation on a bipartite graph. Each node
/// streams through a small dependency array of node pointers and
/// accumulates their values — pointer traffic with high node reuse.
#[derive(Debug, Clone, Copy, Default)]
pub struct Em3d;

/// PCs of `em3d`'s static loads.
pub mod em3d_pc {
    /// Dependency-array slot load.
    pub const DEP: u32 = 0x1_2000;
    /// Dependent node value load.
    pub const NODE: u32 = 0x1_2004;
}

impl Workload for Em3d {
    fn describe(&self) -> &'static str {
        "bipartite dependency-graph relaxation with high reuse"
    }

    fn name(&self) -> &'static str {
        "em3d"
    }

    fn pointer_intensive(&self) -> bool {
        false
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0xE3D0, input);
        let nodes = c.scale(input, 3_000, 6_000);
        let degree = 8u32;
        let iters = c.iters(input, 1, 4, 6);

        // Node: {value, deps_ptr} = 8B; deps array of `degree` pointers.
        let mut hnodes: Vec<Addr> = Vec::new();
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                hnodes = (0..nodes)
                    .map(|_| heap.alloc(8).expect("workload heap exhausted"))
                    .collect();
                for &n in &hnodes {
                    let deps = heap.alloc(degree * 4).expect("workload heap exhausted");
                    mem.write_u32(n, rng.gen::<u32>() & 0xFFFF);
                    mem.write_u32(n + 4, deps);
                    for d in 0..degree {
                        mem.write_u32(deps + d * 4, hnodes[rng.gen_range(0..hnodes.len())]);
                    }
                }
            });
        }

        for _ in 0..iters {
            for &n in &hnodes {
                let (deps, did) = c.tb.load(em3d_pc::DEP, n + 4, None);
                for d in 0..degree {
                    let (target, tid) = c.tb.load(em3d_pc::DEP, deps + d * 4, Some(did));
                    if target != 0 {
                        let _ = c.tb.load(em3d_pc::NODE, target, Some(tid));
                    }
                    c.tb.compute(4);
                }
                c.tb.compute(6);
            }
        }
        c.tb.finish()
    }
}

/// `tsp`: a closest-point tour heuristic — mostly floating-point compute
/// over a modest list of cities, touching memory lightly.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tsp;

impl Workload for Tsp {
    fn describe(&self) -> &'static str {
        "closest-point tour: mostly compute"
    }

    fn name(&self) -> &'static str {
        "tsp"
    }

    fn pointer_intensive(&self) -> bool {
        false
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x7590, input);
        let cities = c.scale(input, 2_000, 4_000) as u32;
        let rounds = c.iters(input, 3, 12, 20);
        let mut coords = 0;
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                coords = heap.alloc(cities * 8).expect("workload heap exhausted");
                for i in 0..cities * 2 {
                    mem.write_u32(coords + i * 4, rng.gen::<u32>() & 0xFFFF);
                }
            });
        }
        for r in 0..rounds as u32 {
            for i in 0..cities {
                let _ = c.tb.load(0x1_3000, coords + ((i + r) % cities) * 8, None);
                c.tb.compute(24);
            }
        }
        c.tb.finish()
    }
}

/// `power`: the power-system optimisation benchmark — a fixed hierarchy of
/// small structures traversed repeatedly with heavy per-node compute; the
/// working set caches completely.
#[derive(Debug, Clone, Copy, Default)]
pub struct Power;

impl Workload for Power {
    fn describe(&self) -> &'static str {
        "cache-resident hierarchy with heavy per-node compute"
    }

    fn name(&self) -> &'static str {
        "power"
    }

    fn pointer_intensive(&self) -> bool {
        false
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x9043, input);
        let laterals = c.scale(input, 400, 800);
        let branches = 8u32;
        let iters = c.iters(input, 2, 6, 10);
        let mut heads: Vec<Addr> = Vec::new();
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                for _ in 0..laterals {
                    let list = builders::build_list(mem, heap, branches as usize, 3, false, rng)
                        .expect("workload heap exhausted");
                    heads.push(list.head);
                }
            });
        }
        for _ in 0..iters {
            for &head in &heads {
                let mut cur = head;
                let mut dep = None;
                while cur != 0 {
                    let (_, vid) = c.tb.load(0x1_4000, cur, dep);
                    c.tb.compute(40);
                    let (next, nid) = c.tb.load(0x1_4004, cur + 12, Some(vid));
                    cur = next;
                    dep = Some(nid);
                }
            }
        }
        c.tb.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extras_generate_and_are_non_intensive() {
        for w in [
            Box::new(Treeadd) as Box<dyn Workload>,
            Box::new(Em3d),
            Box::new(Tsp),
            Box::new(Power),
        ] {
            let t = w.generate(InputSet::Train);
            assert!(t.memory_ops() > 10_000, "{}", w.name());
            assert!(!w.pointer_intensive());
        }
    }

    #[test]
    fn treeadd_visits_every_node_once() {
        let t = Treeadd.generate(InputSet::Train);
        let values = t.ops.iter().filter(|o| o.pc == treeadd_pc::VALUE).count();
        assert_eq!(values, (1 << 15) - 1);
    }

    #[test]
    fn power_is_compute_dominated() {
        let t = Power.generate(InputSet::Train);
        assert!(t.instructions > 10 * t.memory_ops() as u64);
    }
}
