//! Stand-ins for the pointer-relevant SPEC FP benchmarks: `art` and `ammp`.

use rand::Rng;
use sim_core::{Addr, Trace};

use crate::common::Ctx;
use crate::{InputSet, Workload};

/// `art`: neural-network image recognition. Dominated by streaming sweeps
/// over weight matrices (the stream prefetcher's home turf) with a small
/// pointer-indexed winner list — so CDP finds pointers rarely and its few
/// prefetches are mostly useless (Table 1: 1.9%).
#[derive(Debug, Clone, Copy, Default)]
pub struct Art;

/// PCs of `art`'s static loads.
pub mod art_pc {
    /// Weight-matrix streaming load.
    pub const WEIGHT: u32 = 0xD000;
    /// F1-layer streaming load.
    pub const F1: u32 = 0xD004;
    /// Winner-list node load.
    pub const WINNER: u32 = 0xD008;
    /// Winner `next` pointer load.
    pub const WINNER_NEXT: u32 = 0xD00C;
}

impl Workload for Art {
    fn describe(&self) -> &'static str {
        "weight-matrix streaming with a tiny winner list"
    }

    fn name(&self) -> &'static str {
        "art"
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0xA127, input);
        let neurons = c.scale(input, 600, 1_000) as u32;
        let features = 512u32;
        let passes = c.scale(input, 1, 2);

        let mut weights = 0;
        let mut f1 = 0;
        let mut winner_head = 0;
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                weights = heap
                    .alloc(neurons * features * 4)
                    .expect("workload heap exhausted");
                f1 = heap.alloc(features * 4).expect("workload heap exhausted");
                for i in 0..neurons * features {
                    mem.write_u32(weights + i * 4, rng.gen());
                }
                // Small winner list: {score, next} nodes.
                let list = sim_mem::builders::build_list(mem, heap, 64, 1, true, rng)
                    .expect("workload heap exhausted");
                winner_head = list.head;
            });
        }

        for _ in 0..passes {
            for n in 0..neurons {
                // Dot product sweep: weights row x f1 vector.
                for fidx in (0..features).step_by(2) {
                    let row = weights + (n * features + fidx) * 4;
                    let _ = c.tb.load(art_pc::WEIGHT, row, None);
                    let _ = c.tb.load(art_pc::F1, f1 + fidx * 4, None);
                    c.tb.compute(3);
                }
                // Winner bookkeeping: short pointer walk.
                if n % 16 == 0 {
                    let mut cur = winner_head;
                    let mut dep = None;
                    let mut hops = 0;
                    while cur != 0 && hops < 8 {
                        let (_, sid) = c.tb.load(art_pc::WINNER, cur, dep);
                        let (next, nid) = c.tb.load(art_pc::WINNER_NEXT, cur + 4, Some(sid));
                        cur = next;
                        dep = Some(nid);
                        hops += 1;
                    }
                }
            }
        }
        c.tb.finish()
    }
}

/// `ammp`: molecular dynamics. Walks a linked list of atoms; each atom
/// points at a neighbour array that is streamed through. A mid-accuracy
/// CDP case (Table 1: 22%): the `next` and neighbour-array pointers are
/// useful, the remaining scanned words are coordinates.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ammp;

/// PCs of `ammp`'s static loads.
pub mod ammp_pc {
    /// Atom coordinate loads.
    pub const COORD: u32 = 0xE000;
    /// Atom neighbour-array pointer load.
    pub const NLIST_PTR: u32 = 0xE004;
    /// Neighbour-array streaming load.
    pub const NLIST: u32 = 0xE008;
    /// Atom `next` pointer load.
    pub const NEXT: u32 = 0xE00C;
}

impl Workload for Ammp {
    fn describe(&self) -> &'static str {
        "64-byte atom chain with per-atom neighbour-array streaming"
    }

    fn name(&self) -> &'static str {
        "ammp"
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0xA339, input);
        let atoms = c.scale(input, 30_000, 70_000);
        let neighbours = 12u32;
        let steps = c.iters(input, 1, 2, 2);

        // Atom: coordinates, velocities and forces fill a 64-byte record
        // (real `ammp` atoms are far larger still), with the neighbour-list
        // pointer at offset 48 and the `next` pointer at offset 56. One
        // atom per cache block means a scanned block yields exactly the two
        // chain pointers — no breadth explosion, a clean depth-wise sprint.
        let mut head = 0;
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                let mut nodes: Vec<Addr> = Vec::with_capacity(atoms);
                for _ in 0..atoms {
                    nodes.push(heap.alloc(64).expect("workload heap exhausted"));
                }
                use rand::seq::SliceRandom;
                nodes.shuffle(rng);
                for (i, &a) in nodes.iter().enumerate() {
                    for w in 0..12 {
                        // Coordinates/forces: bounded magnitudes that never
                        // look like heap pointers to the compare-bits check.
                        mem.write_u32(a + w * 4, rng.gen::<u32>() & 0x00FF_FFFF);
                    }
                    let nlist = heap.alloc(neighbours * 4).expect("workload heap exhausted");
                    for k in 0..neighbours {
                        mem.write_u32(nlist + k * 4, rng.gen::<u32>() & 0x00FF_FFFF);
                    }
                    mem.write_u32(a + 48, nlist);
                    let next = if i + 1 < nodes.len() { nodes[i + 1] } else { 0 };
                    mem.write_u32(a + 56, next);
                }
                head = nodes[0];
            });
        }

        for _ in 0..steps {
            let mut cur = head;
            let mut dep = None;
            while cur != 0 {
                let (_, xid) = c.tb.load(ammp_pc::COORD, cur, dep);
                let _ = c.tb.load(ammp_pc::COORD, cur + 16, Some(xid));
                c.tb.compute(40);
                let (nlist, nlid) = c.tb.load(ammp_pc::NLIST_PTR, cur + 48, Some(xid));
                if nlist != 0 {
                    for k in (0..neighbours).step_by(3) {
                        let _ = c.tb.load(ammp_pc::NLIST, nlist + k * 4, Some(nlid));
                        c.tb.compute(10);
                    }
                }
                let (next, nid) = c.tb.load(ammp_pc::NEXT, cur + 56, Some(xid));
                cur = next;
                dep = Some(nid);
            }
        }
        c.tb.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn art_is_stream_dominated() {
        let t = Art.generate(InputSet::Train);
        let streamed = t
            .ops
            .iter()
            .filter(|o| o.pc == art_pc::WEIGHT || o.pc == art_pc::F1)
            .count();
        let pointered = t
            .ops
            .iter()
            .filter(|o| o.pc == art_pc::WINNER || o.pc == art_pc::WINNER_NEXT)
            .count();
        assert!(streamed > 20 * pointered.max(1), "art must stream");
    }

    #[test]
    fn ammp_walks_all_atoms() {
        let t = Ammp.generate(InputSet::Train);
        let nexts = t.ops.iter().filter(|o| o.pc == ammp_pc::NEXT).count();
        assert_eq!(nexts, 30_000 * 2, "every atom visited each step");
    }

    #[test]
    fn ammp_has_neighbour_streaming() {
        let t = Ammp.generate(InputSet::Train);
        let nl = t.ops.iter().filter(|o| o.pc == ammp_pc::NLIST).count();
        assert!(nl > 100_000);
    }
}
