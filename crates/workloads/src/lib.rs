//! Benchmark stand-ins for the paper's workload suite.
//!
//! The paper evaluates on 15 pointer-intensive applications from SPEC
//! CPU2006/CPU2000, Olden and bioinformatics (`pfast`), plus the remaining
//! non-pointer-intensive SPEC/Olden programs. The original binaries and
//! inputs are not reproducible here, so each workload is a *synthetic
//! stand-in* that replicates the access-pattern structure its namesake is
//! known for — the property that actually drives CDP/ECDP behaviour:
//!
//! * which linked data structures exist (lists, trees, hash chains,
//!   quadtrees, graphs) and their node layouts (where the pointers sit);
//! * which pointer fields the traversal actually dereferences (the
//!   beneficial pointer groups) versus which it loads past (the harmful
//!   ones);
//! * how much streaming/array traffic accompanies the pointer chasing.
//!
//! Every workload implements [`Workload`] and produces a [`sim_core::Trace`]
//! by *executing functionally* against simulated memory, so fetched cache
//! blocks contain real pointer bytes for the content-directed prefetcher to
//! scan. Each has a `Train` and a `Ref` input set (different sizes and
//! seeds) supporting the paper's §6.1.6 profiling-input experiment.
//!
//! Beyond the built-ins, the [`registry`] serves *loaded* workloads —
//! DSL specs, text traces and streamed binary traces brought in through
//! [`registry::register_file`] (see [`loader`]).
//!
//! # Example
//!
//! ```
//! use workloads::{registry, InputSet};
//!
//! let mst = registry::lookup("mst").expect("mst is in the suite");
//! let trace = mst.generate(InputSet::Train);
//! assert!(trace.memory_ops() > 1000);
//! ```

pub mod bio;
pub mod common;
pub mod loader;
pub mod olden;
pub mod olden_extra;
pub mod registry;
pub mod spec_fp;
pub mod spec_int;
pub mod streaming;

pub use registry::{StreamSource, WorkloadHandle};

use sim_core::Trace;

/// Which input set to generate (paper §5: profiling uses `Train`, timed
/// runs use `Ref`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSet {
    /// Smoke-test input: train-sized data structures with far fewer
    /// traced iterations, so the end-to-end tests finish in seconds in
    /// debug builds while staying in the same cache-behaviour regime.
    Test,
    /// Smaller input with a different seed — the profiling input.
    Train,
    /// The measured input.
    Ref,
}

/// A benchmark stand-in that can generate an executable trace.
pub trait Workload {
    /// Benchmark name (matches the paper's tables, e.g. `"mst"`).
    fn name(&self) -> &'static str;

    /// True for the pointer-intensive suite (the paper's main 15); false
    /// for the §6.7 streaming/compute workloads.
    fn pointer_intensive(&self) -> bool {
        true
    }

    /// One-line description of the access pattern being modelled.
    fn describe(&self) -> &'static str {
        "benchmark stand-in"
    }

    /// Runs the workload functionally and records its trace.
    fn generate(&self, input: InputSet) -> Trace;
}

fn boxed(handle: WorkloadHandle) -> Box<dyn Workload> {
    Box::new(registry::HandleWorkload(handle))
}

/// The 15 pointer-intensive workloads of the paper's main evaluation, in
/// the order of Table 1.
#[deprecated(note = "use workloads::registry::suite(registry::SUITE_POINTER)")]
pub fn pointer_suite() -> Vec<Box<dyn Workload>> {
    registry::suite(registry::SUITE_POINTER)
        .into_iter()
        .map(boxed)
        .collect()
}

/// The non-pointer-intensive workloads used for §6.7 and the multi-core
/// mixes.
#[deprecated(note = "use workloads::registry::suite(registry::SUITE_STREAMING)")]
pub fn streaming_suite() -> Vec<Box<dyn Workload>> {
    registry::suite(registry::SUITE_STREAMING)
        .into_iter()
        .map(boxed)
        .collect()
}

/// Looks a workload up by name across everything registered (built-in
/// suites and loaded files).
#[deprecated(note = "use workloads::registry::lookup")]
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    registry::lookup(name).map(boxed)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, deprecated)]
mod tests {
    use super::*;

    #[test]
    fn deprecated_suites_still_serve_paper_counts() {
        assert_eq!(pointer_suite().len(), 15);
        // 8 SPEC streaming/compute stand-ins + 4 remaining Olden programs.
        assert_eq!(streaming_suite().len(), 12);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = registry::names();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn by_name_finds_both_suites() {
        assert!(by_name("mst").is_some());
        assert!(by_name("libquantum").is_some());
        assert!(by_name("nonexistent").is_none());
        assert!(by_name("mst").unwrap().pointer_intensive());
        assert!(!by_name("libquantum").unwrap().pointer_intensive());
    }
}
