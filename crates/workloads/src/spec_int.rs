//! Stand-ins for the pointer-intensive SPEC CPU2006/2000 integer
//! benchmarks: `perlbench`, `gcc`, `mcf`, `astar`, `xalancbmk`, `omnetpp`
//! and `parser`.
//!
//! Each reproduces the access-pattern skeleton of its namesake: `gcc` mixes
//! high-coverage streaming over IR arrays with short instruction-list
//! chases; `mcf` walks a network-simplex graph picking one arc of many by
//! cost (very low CDP accuracy); `xalancbmk` descends a wide DOM tree along
//! random paths (the lowest CDP accuracy of Table 1); `omnetpp` pops a
//! pointer heap and follows event-to-gate links; `parser` walks a
//! dictionary trie; `perlbench` does hash lookups over string buckets with
//! interpreter-style dispatch in between; `astar` expands grid nodes with
//! eight neighbour pointers, dereferencing the heuristic-chosen few.

use rand::Rng;
use sim_core::{Addr, Trace};
use sim_mem::builders::{self, Graph, HashTable};

use crate::common::Ctx;
use crate::{InputSet, Workload};

/// `perlbench`: hash-table symbol lookups with interpreter dispatch.
#[derive(Debug, Clone, Copy, Default)]
pub struct Perlbench;

/// PCs of `perlbench`'s static loads.
pub mod perl_pc {
    /// Bucket head load.
    pub const BUCKET: u32 = 0x6000;
    /// Node key load.
    pub const KEY: u32 = 0x6004;
    /// Node `next` load.
    pub const NEXT: u32 = 0x6008;
    /// Value-body dereference after a hit.
    pub const VALUE: u32 = 0x600C;
    /// Opcode-table (array) load.
    pub const OPTAB: u32 = 0x6010;
}

impl Workload for Perlbench {
    fn describe(&self) -> &'static str {
        "symbol-table hash lookups between interpreter dispatch bursts"
    }

    fn name(&self) -> &'static str {
        "perlbench"
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x9E51, input);
        let buckets = c.scale(input, 2048, 8192) as u32;
        let keys = c.scale(input, 35_000, 45_000) as u32;
        let ops = c.iters(input, 1_500, 6_000, 40_000);

        let mut table = None;
        let mut optab = 0;
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                table = Some(
                    builders::build_hash_table_with_ratio(mem, heap, buckets, keys, 1, 0.4, rng)
                        .expect("workload heap exhausted"),
                );
                optab = heap.alloc(4096).expect("workload heap exhausted");
                for i in 0..1024 {
                    mem.write_u32(optab + i * 4, rng.gen());
                }
            });
        }
        let table = table.expect("built on the first outer iteration");
        let next_off = table.next_offset();

        for _ in 0..ops {
            // Interpreter dispatch: a few opcode-table reads (streaming).
            let slot = c.rng.gen_range(0..1024u32);
            let _ = c.tb.load(perl_pc::OPTAB, optab + slot * 4, None);
            c.tb.compute(24);

            // Symbol lookup: mostly keys that exist (short chains, hit
            // usually found mid-chain, so `next` prefetches pay off often).
            let key = table.keys[c.rng.gen_range(0..table.keys.len())];
            let (mut node, mut dep) = {
                let (v, id) = c.tb.load(perl_pc::BUCKET, table.bucket_slot(key), None);
                (v, Some(id))
            };
            while node != 0 {
                let (k, kid) = c.tb.load(perl_pc::KEY, node + HashTable::KEY_OFFSET, dep);
                c.tb.compute(8);
                if k == key {
                    let (v, vid) =
                        c.tb.load(perl_pc::VALUE, node + HashTable::DATA_OFFSET, Some(kid));
                    if v != 0 {
                        let _ = c.tb.load(perl_pc::VALUE, v, Some(vid));
                    }
                    break;
                }
                let (n, nid) = c.tb.load(perl_pc::NEXT, node + next_off, Some(kid));
                node = n;
                dep = Some(nid);
            }
        }
        c.tb.finish()
    }
}

/// `gcc`: streaming passes over IR arrays (high stream-prefetcher
/// coverage, 57% in the paper) punctuated by short basic-block instruction
/// chains whose operand pointers are rarely dereferenced.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gcc;

/// PCs of `gcc`'s static loads.
pub mod gcc_pc {
    /// Sequential IR-array scan load.
    pub const IR_SCAN: u32 = 0x7000;
    /// Instruction-node opcode load.
    pub const INSN: u32 = 0x7004;
    /// Instruction `next` pointer load.
    pub const NEXT: u32 = 0x7008;
    /// Operand dereference (rare).
    pub const OPERAND: u32 = 0x700C;
}

impl Workload for Gcc {
    fn describe(&self) -> &'static str {
        "IR-array streaming interleaved with scrambled instruction chains"
    }

    fn name(&self) -> &'static str {
        "gcc"
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x6CC0, input);
        let ir_words = c.scale(input, 180_000, 250_000) as u32;
        let blocks = c.iters(input, 500, 2_000, 3_500);
        let insns_per_block = 12;

        // Instruction node: {opcode, op1, op2, next} = 16 bytes. Operand
        // pointers name value nodes in a large (1.9 MB) region but are
        // dereferenced rarely — harmful pointer groups. Instruction chains
        // are scrambled in memory (optimisation passes reorder them), so
        // the stream prefetcher covers only the IR-array sweeps.
        let mut ir = 0;
        let mut block_heads: Vec<Addr> = Vec::with_capacity(blocks);
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                use rand::seq::SliceRandom;
                ir = heap.alloc(ir_words * 4).expect("workload heap exhausted");
                for i in 0..ir_words {
                    mem.write_u32(ir + i * 4, rng.gen::<u32>() & 0xFFFF);
                }
                let mut values = Vec::with_capacity(120_000);
                for _ in 0..120_000u32 {
                    values.push(heap.alloc(16).expect("workload heap exhausted"));
                }
                let total = blocks * insns_per_block;
                let mut insns: Vec<Addr> = (0..total)
                    .map(|_| heap.alloc(16).expect("workload heap exhausted"))
                    .collect();
                insns.shuffle(rng);
                for (b, chunk) in insns.chunks(insns_per_block).enumerate() {
                    for (k, &insn) in chunk.iter().enumerate() {
                        mem.write_u32(insn, rng.gen::<u32>() & 0xFF);
                        // Most operands are immediates/registers; only ~30%
                        // of instructions reference a value node in memory.
                        let op1 = if rng.gen_bool(0.3) {
                            values[rng.gen_range(0..values.len())]
                        } else {
                            0
                        };
                        let op2 = if rng.gen_bool(0.15) {
                            values[rng.gen_range(0..values.len())]
                        } else {
                            0
                        };
                        mem.write_u32(insn + 4, op1);
                        mem.write_u32(insn + 8, op2);
                        let next = if k + 1 < chunk.len() { chunk[k + 1] } else { 0 };
                        mem.write_u32(insn + 12, next);
                    }
                    let _ = b;
                    block_heads.push(chunk[0]);
                }
            });
        }

        // Pass 1 interleaved: stream over the IR array, then process a
        // basic block's instruction list.
        let chunk = ir_words as usize / blocks.max(1);
        for (b, &head) in block_heads.iter().enumerate() {
            let start = (b * chunk) as u32;
            for w in 0..chunk as u32 {
                let _ = c.tb.load(gcc_pc::IR_SCAN, ir + (start + w) * 4, None);
                if w % 4 == 0 {
                    c.tb.compute(5);
                }
            }
            let mut insn = head;
            let mut dep = None;
            while insn != 0 {
                let (op, oid) = c.tb.load(gcc_pc::INSN, insn, dep);
                c.tb.compute(4);
                if op & 0x1F == 0 {
                    // 1-in-32 operand dereference.
                    // Rare operand dereference.
                    let (p, pid) = c.tb.load(gcc_pc::OPERAND, insn + 4, Some(oid));
                    if p != 0 {
                        let _ = c.tb.load(gcc_pc::OPERAND, p, Some(pid));
                    }
                }
                let (n, nid) = c.tb.load(gcc_pc::NEXT, insn + 12, Some(oid));
                insn = n;
                dep = Some(nid);
            }
        }
        c.tb.finish()
    }
}

/// `mcf`: network-simplex over a flow graph. Each node embeds eight arc
/// pointers but the pivot step dereferences only the cheapest one, so the
/// vast majority of scanned pointers are useless (Table 1: 1.4% CDP
/// accuracy) and the stream prefetcher finds nothing to stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mcf;

/// PCs of `mcf`'s static loads.
pub mod mcf_pc {
    /// Node cost/value load.
    pub const COST: u32 = 0x8000;
    /// Node degree load.
    pub const DEGREE: u32 = 0x8004;
    /// Arc pointer load (the one chosen arc).
    pub const ARC: u32 = 0x8008;
}

impl Workload for Mcf {
    fn describe(&self) -> &'static str {
        "network-simplex pivots choosing one arc of eight"
    }

    fn name(&self) -> &'static str {
        "mcf"
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x0C0F, input);
        let nodes = c.scale(input, 75_000, 140_000);
        let steps = c.iters(input, 10_000, 40_000, 120_000);

        let mut graph = None;
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                graph = Some(
                    builders::build_graph(mem, heap, nodes, 8, rng)
                        .expect("workload heap exhausted"),
                );
            });
        }
        let graph = graph.expect("built on the first outer iteration");

        let mut cur = graph.nodes[0];
        let mut dep = None;
        for _ in 0..steps {
            let (_, cid) = c.tb.load(mcf_pc::COST, cur + Graph::VALUE_OFFSET, dep);
            let (deg, did) =
                c.tb.load(mcf_pc::DEGREE, cur + Graph::DEGREE_OFFSET, Some(cid));
            c.tb.compute(160);
            let deg = deg.clamp(1, graph.max_degree);
            // Pivot: the cheapest arc (slot 0, where the simplex keeps its
            // basis arc) is taken often; otherwise a data-dependent arc out
            // of eight — one beneficial pointer group, seven harmful ones.
            let pick = if c.rng.gen_bool(0.6) {
                0
            } else {
                c.rng.gen_range(0..deg)
            };
            let (next, nid) =
                c.tb.load(mcf_pc::ARC, cur + Graph::ADJ_OFFSET + pick * 4, Some(did));
            if next != 0 {
                cur = next;
                dep = Some(nid);
            } else {
                cur = graph.nodes[c.rng.gen_range(0..graph.nodes.len())];
                dep = None;
            }
        }
        c.tb.finish()
    }
}

/// `astar`: grid pathfinding. Node expansion reads the full node but only
/// dereferences the one or two neighbours the heuristic selects, plus an
/// open-list chase.
#[derive(Debug, Clone, Copy, Default)]
pub struct Astar;

/// PCs of `astar`'s static loads.
pub mod astar_pc {
    /// Node f-score load.
    pub const SCORE: u32 = 0x9000;
    /// Neighbour pointer load.
    pub const NEIGHBOR: u32 = 0x9004;
    /// Open-list `next` load.
    pub const OPEN_NEXT: u32 = 0x9008;
}

impl Workload for Astar {
    fn describe(&self) -> &'static str {
        "graph expansion along heuristic-favoured neighbour slots"
    }

    fn name(&self) -> &'static str {
        "astar"
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0xA57A, input);
        let nodes = c.scale(input, 70_000, 120_000);
        let expansions = c.iters(input, 4_500, 18_000, 80_000);

        let mut graph = None;
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                graph = Some(
                    builders::build_graph(mem, heap, nodes, 8, rng)
                        .expect("workload heap exhausted"),
                );
            });
        }
        let graph = graph.expect("built on the first outer iteration");

        let mut cur = graph.nodes[0];
        let mut dep = None;
        let mut open: Vec<(Addr, Option<sim_core::trace::LoadId>)> = Vec::new();
        for _ in 0..expansions {
            let (_, sid) = c.tb.load(astar_pc::SCORE, cur + Graph::VALUE_OFFSET, dep);
            c.tb.compute(120);
            // Expand: dereference the two heuristic-selected neighbours.
            // The heuristic points "toward the goal" most of the time, so
            // the first neighbour slots form beneficial pointer groups.
            let first = if c.rng.gen_bool(0.7) {
                0
            } else {
                c.rng.gen_range(0..8)
            };
            let second = if c.rng.gen_bool(0.5) {
                1
            } else {
                c.rng.gen_range(0..8)
            };
            let (n1, n1id) = c.tb.load(
                astar_pc::NEIGHBOR,
                cur + Graph::ADJ_OFFSET + first * 4,
                Some(sid),
            );
            let (n2, n2id) = c.tb.load(
                astar_pc::NEIGHBOR,
                cur + Graph::ADJ_OFFSET + second * 4,
                Some(sid),
            );
            if n2 != 0 {
                open.push((n2, Some(n2id)));
                if open.len() > 64 {
                    open.remove(0);
                }
            }
            if n1 != 0 {
                cur = n1;
                dep = Some(n1id);
            } else if let Some((n, d)) = open.pop() {
                cur = n;
                dep = d;
            } else {
                cur = graph.nodes[c.rng.gen_range(0..graph.nodes.len())];
                dep = None;
            }
        }
        c.tb.finish()
    }
}

/// `xalancbmk`: XSLT over a DOM. Wide nodes (first-child, next-sibling,
/// parent, attributes, text) but queries descend essentially random paths,
/// so almost no scanned pointer is used — the worst CDP accuracy in
/// Table 1 (0.9%).
#[derive(Debug, Clone, Copy, Default)]
pub struct Xalancbmk;

/// PCs of `xalancbmk`'s static loads.
pub mod xalanc_pc {
    /// Node tag load.
    pub const TAG: u32 = 0xA000;
    /// Child-pointer load.
    pub const CHILD: u32 = 0xA004;
    /// Attribute dereference.
    pub const ATTR: u32 = 0xA008;
}

impl Workload for Xalancbmk {
    fn describe(&self) -> &'static str {
        "random root-to-leaf descents of a wide DOM tree"
    }

    fn name(&self) -> &'static str {
        "xalancbmk"
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x8A11, input);
        let fanout = 8u32;
        let depth = c.scale(input, 5, 5) as u32;
        let queries = c.iters(input, 3_000, 12_000, 55_000);

        // DOM node: {tag, attrs_ptr, children[8]} = 40 bytes.
        let node_size = 8 + fanout * 4;
        let mut levels: Vec<Vec<Addr>> = Vec::new();
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                let mut prev: Vec<Addr> =
                    vec![heap.alloc(node_size).expect("workload heap exhausted")];
                levels.push(prev.clone());
                for _ in 1..=depth {
                    let mut level = Vec::new();
                    for &parent in &prev {
                        for k in 0..fanout {
                            let child = heap.alloc(node_size).expect("workload heap exhausted");
                            mem.write_u32(child, rng.gen::<u32>() & 0xFFF);
                            let attr = heap.alloc(16).expect("workload heap exhausted");
                            mem.write_u32(child + 4, attr);
                            mem.write_u32(parent + 8 + k * 4, child);
                            level.push(child);
                        }
                    }
                    levels.push(level.clone());
                    prev = level;
                }
            });
        }
        let root = levels[0][0];

        for _ in 0..queries {
            let mut cur = root;
            let mut dep = None;
            // depth + 1 hops so the (large) leaf level is actually read.
            for _ in 0..=depth {
                let (tag, tid) = c.tb.load(xalanc_pc::TAG, cur, dep);
                c.tb.compute(20);
                if tag & 0x3F == 0 {
                    let (a, aid) = c.tb.load(xalanc_pc::ATTR, cur + 4, Some(tid));
                    if a != 0 {
                        let _ = c.tb.load(xalanc_pc::ATTR, a, Some(aid));
                    }
                }
                let pick = c.rng.gen_range(0..fanout);
                let (child, cid) = c.tb.load(xalanc_pc::CHILD, cur + 8 + pick * 4, Some(tid));
                if child == 0 {
                    break;
                }
                cur = child;
                dep = Some(cid);
            }
        }
        c.tb.finish()
    }
}

/// `omnetpp`: discrete-event simulation. Pops events from a pointer heap
/// (array-resident, stream-friendly) and follows each event's module/gate
/// links (pointer part, moderately useful).
#[derive(Debug, Clone, Copy, Default)]
pub struct Omnetpp;

/// PCs of `omnetpp`'s static loads.
pub mod omnet_pc {
    /// Heap-array slot load.
    pub const HEAP_SLOT: u32 = 0xB000;
    /// Event timestamp load.
    pub const EVENT: u32 = 0xB004;
    /// Event target-gate pointer load.
    pub const GATE: u32 = 0xB008;
    /// Gate-to-module link load.
    pub const MODULE: u32 = 0xB00C;
}

impl Workload for Omnetpp {
    fn describe(&self) -> &'static str {
        "near-ordered event-queue pops dereferencing gate/module links"
    }

    fn name(&self) -> &'static str {
        "omnetpp"
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x0E77, input);
        let events = c.scale(input, 60_000, 120_000) as u32;
        let pops = c.iters(input, 5_000, 20_000, 90_000);

        // Event: {time, gate_ptr, payload, next_ev} = 16B. Gate: {id,
        // module_ptr, peer_gate} = 16B.
        let mut heap_arr = 0;
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                let mut gates = Vec::new();
                for _ in 0..4096 {
                    let g = heap.alloc(16).expect("workload heap exhausted");
                    let module = heap.alloc(32).expect("workload heap exhausted");
                    mem.write_u32(g, rng.gen());
                    mem.write_u32(g + 4, module);
                    gates.push(g);
                }
                heap_arr = heap.alloc(events * 4).expect("workload heap exhausted");
                for i in 0..events {
                    // Event: {time, gate_ptr, payload...} = 32 bytes, with
                    // bounded timestamps/payloads that never pass the
                    // compare-bits pointer test.
                    let ev = heap.alloc(32).expect("workload heap exhausted");
                    mem.write_u32(ev, rng.gen::<u32>() & 0x00FF_FFFF);
                    mem.write_u32(ev + 4, gates[rng.gen_range(0..gates.len())]);
                    for w in 2..8 {
                        mem.write_u32(ev + w * 4, rng.gen::<u32>() & 0x00FF_FFFF);
                    }
                    mem.write_u32(heap_arr + i * 4, ev);
                }
            });
        }

        let mut idx = 0u32;
        for _ in 0..pops {
            // Events are consumed in near-timestamp order, which the event
            // heap keeps roughly in array order; occasionally a newly
            // scheduled event jumps the queue.
            idx = if c.rng.gen_bool(0.1) {
                c.rng.gen_range(0..events)
            } else {
                (idx + 1) % events
            };
            let (ev, eid) = c.tb.load(omnet_pc::HEAP_SLOT, heap_arr + idx * 4, None);
            if ev == 0 {
                continue;
            }
            let (_, tid) = c.tb.load(omnet_pc::EVENT, ev, Some(eid));
            c.tb.compute(24);
            let (gate, gid) = c.tb.load(omnet_pc::GATE, ev + 4, Some(tid));
            if gate != 0 {
                let (module, mid) = c.tb.load(omnet_pc::MODULE, gate + 4, Some(gid));
                if module != 0 {
                    let _ = c.tb.load(omnet_pc::MODULE, module, Some(mid));
                }
            }
            c.tb.compute(16);
        }
        c.tb.finish()
    }
}

/// `parser`: dictionary trie walks. Each node has four child slots; word
/// lookups follow data-dependent children, so a modest fraction of scanned
/// pointers get used (Table 1: 13%).
#[derive(Debug, Clone, Copy, Default)]
pub struct Parser;

/// PCs of `parser`'s static loads.
pub mod parser_pc {
    /// Trie-node flags load.
    pub const FLAGS: u32 = 0xC000;
    /// Child-pointer load.
    pub const CHILD: u32 = 0xC004;
}

impl Workload for Parser {
    fn describe(&self) -> &'static str {
        "uniform descents of a full 8-ary dictionary trie"
    }

    fn name(&self) -> &'static str {
        "parser"
    }

    fn generate(&self, input: InputSet) -> Trace {
        let mut c = Ctx::new(0x9A25, input);
        let fanout = 8u32;
        let depth = c.scale(input, 5, 5) as u32;
        let words = c.iters(input, 4_000, 15_000, 70_000);

        // Trie node: {flags, pad, children[8]} = 40 bytes. The dictionary is
        // a full 8-ary trie of depth 5 (~37k nodes, 1.5 MB): upper levels
        // cache, the leaf levels miss. Lookups pick children uniformly, so
        // each child slot is used an eighth of the time — all pointer
        // groups are below the 50% bar, like the paper's 13% CDP accuracy.
        let node_size = 8 + fanout * 4;
        let mut root = 0;
        {
            let heap = &mut c.heap;
            let rng = &mut c.rng;
            c.tb.setup(|mem| {
                root = heap.alloc(node_size).expect("workload heap exhausted");
                let mut frontier = vec![root];
                for _ in 0..depth {
                    let mut next = Vec::new();
                    for &n in &frontier {
                        mem.write_u32(n, rng.gen::<u32>() & 0xFF);
                        for k in 0..fanout {
                            let ch = heap.alloc(node_size).expect("workload heap exhausted");
                            mem.write_u32(n + 8 + k * 4, ch);
                            next.push(ch);
                        }
                    }
                    frontier = next;
                }
                for &leaf in &frontier {
                    mem.write_u32(leaf, rng.gen::<u32>() & 0xFF);
                }
            });
        }

        for _ in 0..words {
            let mut cur = root;
            let mut dep = None;
            for _ in 0..=depth {
                let (_, fid) = c.tb.load(parser_pc::FLAGS, cur, dep);
                c.tb.compute(16);
                let pick = c.rng.gen_range(0..fanout);
                let (child, cid) = c.tb.load(parser_pc::CHILD, cur + 8 + pick * 4, Some(fid));
                if child == 0 {
                    break;
                }
                cur = child;
                dep = Some(cid);
            }
            c.tb.compute(6);
        }
        c.tb.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generate_nonempty_traces() {
        for w in crate::registry::suite(crate::registry::SUITE_POINTER) {
            if !matches!(
                w.name(),
                "perlbench" | "gcc" | "mcf" | "astar" | "xalancbmk" | "omnetpp" | "parser"
            ) {
                continue;
            }
            let t = w.generate(InputSet::Train);
            assert!(t.memory_ops() > 5_000, "{} too small", w.name());
            assert!(t.instructions > t.memory_ops() as u64, "{}", w.name());
        }
    }

    #[test]
    fn gcc_mixes_streaming_and_pointers() {
        let t = Gcc.generate(InputSet::Train);
        let scans = t.ops.iter().filter(|o| o.pc == gcc_pc::IR_SCAN).count();
        let chases = t.ops.iter().filter(|o| o.pc == gcc_pc::NEXT).count();
        assert!(scans > 3 * chases, "gcc is stream dominated");
        assert!(chases > 1000, "but has real pointer chases");
    }

    #[test]
    fn mcf_uses_one_arc_of_eight() {
        let t = Mcf.generate(InputSet::Train);
        let arcs = t.ops.iter().filter(|o| o.pc == mcf_pc::ARC).count();
        let costs = t.ops.iter().filter(|o| o.pc == mcf_pc::COST).count();
        // Exactly one arc dereference per step.
        assert_eq!(arcs, costs);
    }

    #[test]
    fn xalancbmk_descends_to_depth() {
        let t = Xalancbmk.generate(InputSet::Train);
        let tags = t.ops.iter().filter(|o| o.pc == xalanc_pc::TAG).count();
        assert!(tags >= 12_000, "every query reads at least the root");
    }

    #[test]
    fn deterministic_across_calls() {
        let a = Mcf.generate(InputSet::Ref);
        let b = Mcf.generate(InputSet::Ref);
        assert_eq!(a.ops.len(), b.ops.len());
    }
}
