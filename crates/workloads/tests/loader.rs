//! Loader conformance suite: DSL-compiled kernels against hand-written
//! equivalents, parse-error positions, and the canonical-print round-trip
//! property.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_core::{Machine, MachineConfig, RunStats, Trace};
use workloads::common::Ctx;
use workloads::loader::{self, parse_file, print_file};
use workloads::{InputSet, Workload};

const LIST_WL: &str = "\
# Linked-list chase with per-node data touch — the conformance kernel.
workload conf_list {
    seed 7;
    node Node { size 24; ptr next @ 16; field data @ 0; }
    chain items: Node { count 300; }
    traverse items { order forward; repeat 2; visit { load data; compute 8; } }
}
";

fn run(trace: &Trace) -> RunStats {
    Machine::new(MachineConfig::default())
        .run(trace)
        .expect("run failed")
}

/// Hand-written equivalent of `LIST_WL`, built directly against the
/// documented compilation contract (allocation order, link field, data
/// pattern, PC assignment). This is the golden the DSL compiler must
/// match byte for byte.
fn handwritten_list(input: InputSet) -> Trace {
    let mut ctx = Ctx::new(7, input);
    let count = 300usize;
    let mut alloc = Vec::with_capacity(count);
    for _ in 0..count {
        alloc.push(ctx.heap.alloc(24).expect("heap"));
    }
    ctx.tb.setup(|m| {
        for (i, &a) in alloc.iter().enumerate() {
            let next = alloc.get(i + 1).copied().unwrap_or(0);
            m.write_u32(a + 16, next);
            // Field index 1: `data` is declared second in the node.
            m.write_u32(a, (i as u32).wrapping_mul(0x9E37_79B9) ^ 1);
        }
    });
    let reps = match input {
        InputSet::Test => 1,
        InputSet::Train => 1, // max(1, 2 / 2)
        InputSet::Ref => 2,
    };
    let pc = 0x0010_0000;
    for _ in 0..reps {
        ctx.tb.lds_begin();
        let mut cur = alloc[0];
        let mut dep = None;
        while cur != 0 {
            let _ = ctx.tb.load(pc, cur, dep);
            ctx.tb.compute(8);
            let (next, id) = ctx.tb.load(pc + 0xFC, cur + 16, dep);
            cur = next;
            dep = Some(id);
        }
        ctx.tb.lds_end();
    }
    ctx.tb.finish()
}

#[test]
fn dsl_list_kernel_matches_handwritten_equivalent() {
    let loaded = loader::load_specs(LIST_WL).expect("valid spec");
    assert_eq!(loaded.len(), 1);
    let w = &loaded[0];
    assert_eq!(w.name(), "conf_list");
    assert!(w.pointer_intensive());
    for input in [InputSet::Test, InputSet::Train, InputSet::Ref] {
        let dsl = w.generate(input);
        let golden = handwritten_list(input);
        assert_eq!(dsl.ops, golden.ops, "op streams diverge on {input:?}");
        assert_eq!(dsl.instructions, golden.instructions);
        assert_eq!(
            run(&dsl),
            run(&golden),
            "RunStats diverge on {input:?} despite equal ops"
        );
    }
}

#[test]
fn loaded_workloads_are_deterministic() {
    let a = loader::load_specs(LIST_WL).expect("valid spec");
    let b = loader::load_specs(LIST_WL).expect("valid spec");
    let (ta, tb) = (a[0].generate(InputSet::Test), b[0].generate(InputSet::Test));
    assert_eq!(ta.ops, tb.ops);
    assert_eq!(run(&ta), run(&tb), "re-runs must be byte-identical");
}

#[test]
fn shuffled_layout_produces_a_different_chase() {
    let shuffled = LIST_WL.replace("{ count 300; }", "{ count 300; layout shuffled; }");
    let w = &loader::load_specs(&shuffled).expect("valid spec")[0];
    let base = &loader::load_specs(LIST_WL).expect("valid spec")[0];
    let (ts, tb) = (w.generate(InputSet::Test), base.generate(InputSet::Test));
    assert_eq!(
        ts.ops.len(),
        tb.ops.len(),
        "same structure, different order"
    );
    assert_ne!(ts.ops, tb.ops, "shuffle must change the chase order");
}

/// Parse/validate-error snapshots: exact line/column plus the named field
/// in the message.
#[test]
fn error_positions_and_messages() {
    let cases: &[(&str, u32, u32, &str)] = &[
        // Lexer: bad character.
        ("workload w {\n  !\n}", 2, 3, "unexpected character"),
        // Parser: missing brace token.
        ("workload w\nseed 1;", 2, 1, "expected `{`"),
        // Parser: unknown statement.
        (
            "workload w {\n  nodes N { size 8; }\n}",
            2,
            3,
            "unknown workload statement `nodes`",
        ),
        // Parser: value out of u32 range.
        (
            "workload w {\n  node N { size 5000000000; }\n}",
            2,
            17,
            "does not fit in 32 bits",
        ),
        // Validate: misaligned field offset.
        (
            "workload w {\n  node N { size 16; ptr next @ 3; }\n  chain c: N { count 2; }\n  traverse c { visit { load next; } }\n}",
            2,
            25,
            "not 4-byte aligned",
        ),
        // Validate: field outside the node.
        (
            "workload w {\n  node N { size 8; ptr next @ 8; }\n  chain c: N { count 2; }\n  traverse c { visit { load next; } }\n}",
            2,
            24,
            "does not fit in the 8-byte node",
        ),
        // Validate: unknown node type.
        (
            "workload w {\n  node N { size 8; ptr next @ 0; }\n  chain c: M { count 2; }\n  traverse c { visit { load next; } }\n}",
            3,
            9,
            "unknown node type `M`",
        ),
        // Validate: no ptr field.
        (
            "workload w {\n  node N { size 8; field x @ 0; }\n  chain c: N { count 2; }\n  traverse c { visit { load x; } }\n}",
            3,
            9,
            "at least one `ptr` field",
        ),
        // Validate: unknown visit field.
        (
            "workload w {\n  node N { size 8; ptr next @ 0; }\n  chain c: N { count 2; }\n  traverse c { visit { load datum; } }\n}",
            4,
            29,
            "unknown field `datum`",
        ),
        // Validate: unknown chain.
        (
            "workload w {\n  node N { size 8; ptr next @ 0; }\n  chain c: N { count 2; }\n  traverse d { visit { load next; } }\n}",
            4,
            12,
            "unknown chain `d`",
        ),
    ];
    for &(src, line, col, needle) in cases {
        let err = parse_file(src).expect_err(src);
        assert_eq!(
            (err.line, err.col),
            (line, col),
            "wrong position for {src:?}: {err}"
        );
        assert!(
            err.msg.contains(needle),
            "message {:?} lacks {needle:?}",
            err.msg
        );
        // The Display form carries the position for exit-2 diagnostics.
        assert!(err
            .to_string()
            .starts_with(&format!("line {line}, column {col}:")));
    }
}

/// Builds a random *valid* spec from a seed: the proptest below feeds
/// seeds through this, then checks the canonical-print round-trip.
fn random_spec_source(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_nodes = rng.gen_range(1usize..=3);
    let mut src = format!(
        "workload w{} {{\n  seed {};\n",
        seed % 1000,
        rng.gen::<u32>()
    );
    let mut nodes = Vec::new();
    for ni in 0..n_nodes {
        // Room for a ptr at a random slot plus up to 3 data fields.
        let slots = rng.gen_range(2u32..=6);
        let size = slots * 4;
        let ptr_slot = rng.gen_range(0..slots);
        src.push_str(&format!("  node N{ni} {{ size {size}; "));
        src.push_str(&format!("ptr next @ {}; ", ptr_slot * 4));
        let mut fields = vec!["next".to_string()];
        for fi in 0..rng.gen_range(0u32..3) {
            let slot = rng.gen_range(0..slots);
            if slot == ptr_slot {
                continue;
            }
            src.push_str(&format!("field f{fi} @ {}; ", slot * 4));
            fields.push(format!("f{fi}"));
        }
        src.push_str("}\n");
        nodes.push((format!("N{ni}"), fields));
    }
    let n_chains = rng.gen_range(1usize..=2);
    let mut chains = Vec::new();
    for ci in 0..n_chains {
        let (node, fields) = &nodes[rng.gen_range(0..nodes.len())];
        let count = rng.gen_range(1u32..200);
        let layout = match rng.gen_range(0u32..3) {
            0 => "layout sequential;".to_string(),
            1 => "layout shuffled;".to_string(),
            _ => format!("layout padded {};", rng.gen_range(1u32..64)),
        };
        src.push_str(&format!(
            "  chain c{ci}: {node} {{ count {count}; {layout} }}\n"
        ));
        chains.push((format!("c{ci}"), fields.clone()));
    }
    for _ in 0..rng.gen_range(1usize..=2) {
        let (chain, fields) = &chains[rng.gen_range(0..chains.len())];
        let order = if rng.gen_bool(0.5) { "forward" } else { "scan" };
        let repeat = rng.gen_range(1u32..4);
        let mut visit = String::new();
        for _ in 0..rng.gen_range(1usize..=4) {
            if rng.gen_bool(0.5) {
                visit.push_str(&format!(
                    "load {}; ",
                    fields[rng.gen_range(0..fields.len())]
                ));
            } else {
                visit.push_str(&format!("compute {}; ", rng.gen_range(1u32..32)));
            }
        }
        src.push_str(&format!(
            "  traverse {chain} {{ order {order}; repeat {repeat}; visit {{ {visit}}} }}\n"
        ));
    }
    src.push_str("}\n");
    src
}

/// Every spec from `random_spec_source` must validate: field names are
/// unique per index and the ptr slot is skipped for data fields (two data
/// fields sharing a slot is legal — the validator only rejects duplicate
/// *names*), so the round-trip property is total over seeds.
mod roundtrip {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn random_valid_specs_roundtrip_through_parse_print_parse(seed in any::<u64>()) {
            let src = random_spec_source(seed);
            let parsed = parse_file(&src).expect("generated spec must be valid");
            let printed = print_file(&parsed);
            let reparsed = parse_file(&printed).expect("canonical print must reparse");
            let reprinted = print_file(&reparsed);
            prop_assert_eq!(&printed, &reprinted, "canonical print is not a fixed point");
        }
    }
}
