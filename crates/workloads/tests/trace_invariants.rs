//! Invariants every workload's trace must satisfy, checked across the whole
//! suite: backwards-pointing load dependences, heap-resident data
//! addresses, stable PCs, and non-trivial instruction mixes.

use sim_core::trace::{OpKind, NO_DEP};
use workloads::registry::{self, WorkloadHandle, SUITE_POINTER, SUITE_STREAMING};
use workloads::InputSet;

fn pointer_suite() -> Vec<WorkloadHandle> {
    registry::suite(SUITE_POINTER)
}

#[test]
fn all_traces_satisfy_structural_invariants() {
    for w in pointer_suite()
        .iter()
        .chain(registry::suite(SUITE_STREAMING).iter())
    {
        let t = w.generate(InputSet::Train);
        assert!(!t.ops.is_empty(), "{}: empty trace", w.name());
        assert!(
            t.instructions >= t.ops.len() as u64,
            "{}: instruction count below op count",
            w.name()
        );
        for (i, op) in t.ops.iter().enumerate() {
            match op.kind {
                OpKind::Compute => {
                    assert!(op.value > 0, "{}: zero-size compute at {i}", w.name());
                    assert!(op.value <= 64, "{}: unchunked compute at {i}", w.name());
                }
                OpKind::Load | OpKind::Store => {
                    if op.dep != NO_DEP {
                        let d = op.dep as usize;
                        assert!(d < i, "{}: forward dep at {i}", w.name());
                        assert_eq!(
                            t.ops[d].kind,
                            OpKind::Load,
                            "{}: dep of op {i} is not a load",
                            w.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn pointer_workloads_chase_pointers() {
    for w in pointer_suite() {
        if w.name() == "art" {
            // art is stream-dominated by design: its pointer part (the
            // winner list) is tiny, as in the original benchmark.
            continue;
        }
        let t = w.generate(InputSet::Train);
        let dependent = t
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::Load && o.dep != NO_DEP)
            .count();
        let loads = t.ops.iter().filter(|o| o.kind == OpKind::Load).count();
        assert!(
            dependent * 10 >= loads,
            "{}: too few dependent loads ({dependent}/{loads})",
            w.name()
        );
    }
}

#[test]
fn data_addresses_live_in_the_heap() {
    for w in pointer_suite() {
        let t = w.generate(InputSet::Train);
        for op in t.ops.iter().filter(|o| o.kind != OpKind::Compute) {
            assert!(
                sim_mem::layout::in_heap(op.addr),
                "{}: access at {:#x} outside the heap",
                w.name(),
                op.addr
            );
        }
    }
}

#[test]
fn ref_inputs_are_at_least_as_large_as_train() {
    for w in pointer_suite() {
        let train = w.generate(InputSet::Train);
        let reference = w.generate(InputSet::Ref);
        assert!(
            reference.instructions >= train.instructions,
            "{}: ref smaller than train",
            w.name()
        );
    }
}
