//! Parallel sweep executor.
//!
//! A [`SweepPlan`] is an explicit list of (workload, input set, system)
//! cells. [`SweepPlan::run`] executes the cells on a scoped-thread worker
//! pool against a shared [`Lab`], which memoizes traces, profiles and
//! runs behind compute-once cells — so each trace is generated and
//! profiled exactly once per process even when many cells (or many
//! concurrent sweeps) need it.
//!
//! Results come back as [`RunRecord`]s in **plan order** regardless of
//! thread count, and all metric fields are identical at any `jobs` value
//! (only `wall_ms` may differ); the determinism regression test in
//! `crates/bench/tests` pins this down.
//!
//! [`SweepPlan::run_fault_tolerant`] adds failure isolation on top: each
//! cell's simulation runs under `catch_unwind`, so a panicking or
//! deadlocked cell yields a [`RunOutcome::Failed`] record while every
//! other cell completes normally. Combined with a [`ManifestWriter`]
//! (incremental, atomic manifest flushes) and a resume manifest (skip
//! cells that already succeeded under the same machine config), this is
//! what makes long sweeps crash-safe and restartable.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ecdp::system::SystemKind;
use sim_core::{ErrorClass, Json, RunTrace};
use workloads::InputSet;

use crate::lab::Lab;
use crate::manifest::{
    config_hash, workload_provenance, FailureRecord, Manifest, ManifestWriter, RetryInfo,
    RunOutcome, RunRecord,
};
use crate::store::{AppendDisposition, ResultStore};

/// One simulation cell of a sweep.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SweepCell {
    /// Workload name (as resolved by `workloads::registry::lookup`).
    pub workload: String,
    /// Input set the measured trace comes from.
    pub input: InputSet,
    /// System configuration to run.
    pub system: SystemKind,
}

impl SweepCell {
    /// The lower-cased input label used in manifests.
    pub fn input_label(&self) -> String {
        format!("{:?}", self.input).to_lowercase()
    }
}

/// The cell supervisor's retry/deadline policy.
///
/// Failures are classified with [`sim_core::SimError::class`]:
/// *transient* failures (wall-clock deadline overruns) are retried up to
/// [`RetryPolicy::max_attempts`] times with deterministic — seeded by
/// nothing, jitter-free — exponential backoff, so two runs of the same
/// plan behave identically; *permanent* failures (deadlocks, panics,
/// invariant violations) fail the cell immediately, because a
/// deterministic simulator reproduces them on every retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempt budget per cell (≥ 1; 1 disables retries).
    pub max_attempts: u32,
    /// Backoff after the n-th failed attempt is
    /// `backoff_base_ms << (n - 1)` milliseconds.
    pub backoff_base_ms: u64,
    /// Per-attempt wall-clock deadline; `None` disables the watchdog.
    pub deadline_ms: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 50,
            deadline_ms: None,
        }
    }
}

impl RetryPolicy {
    /// The policy configured via `BENCH_RETRY_ATTEMPTS`,
    /// `BENCH_RETRY_BACKOFF_MS` and `BENCH_CELL_DEADLINE_MS` (read
    /// through the [`crate::request::compat`] gate, so an installed
    /// [`crate::request::SweepRequest`] takes precedence), with defaults
    /// for anything unset.
    pub fn from_env() -> Self {
        fn parse<T: std::str::FromStr>(var: &str) -> Option<T> {
            crate::request::compat::setting(var).and_then(|v| v.trim().parse().ok())
        }
        let d = RetryPolicy::default();
        RetryPolicy {
            max_attempts: parse("BENCH_RETRY_ATTEMPTS")
                .filter(|&n: &u32| n >= 1)
                .unwrap_or(d.max_attempts),
            backoff_base_ms: parse("BENCH_RETRY_BACKOFF_MS").unwrap_or(d.backoff_base_ms),
            deadline_ms: parse("BENCH_CELL_DEADLINE_MS").filter(|&ms: &u64| ms > 0),
        }
    }

    /// Deterministic backoff before retrying after failed `attempt`
    /// (1-based): exponential, no jitter.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        self.backoff_base_ms
            .saturating_mul(1u64 << (attempt - 1).min(16))
    }

    /// The per-attempt deadline as a [`Duration`], if configured.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline_ms.map(Duration::from_millis)
    }
}

/// Execution options for [`SweepPlan::run_fault_tolerant`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepOptions<'a> {
    /// Skip cells that already have a *successful* record (same
    /// workload, input, system and machine-config hash) in this
    /// manifest; the prior record is carried into the results.
    pub resume_from: Option<&'a Manifest>,
    /// Flush every completed cell to this writer as it finishes, so a
    /// killed process leaves a valid partial manifest behind.
    pub writer: Option<&'a ManifestWriter>,
    /// Run every cell with the observability layer enabled and write
    /// `<trace_dir>/<workload>-<input>-<system>/{timeseries.json,
    /// obs.jsonl}`; the success records carry the artifact paths.
    pub trace_dir: Option<&'a Path>,
    /// Serve cells from (and commit fresh results to) this persistent
    /// result store. A store hit skips the simulation entirely and the
    /// record carries `store: "hit"`; fresh results are appended with
    /// the cell's injected store fault, if any, routed through the
    /// write layer.
    pub store: Option<&'a ResultStore>,
    /// Retry/deadline policy for the cell supervisor.
    pub retry: RetryPolicy,
}

/// What [`SweepPlan::run_fault_tolerant`] did.
#[derive(Debug, Clone)]
pub struct SweepExecution {
    /// One outcome per plan cell, in plan order. Resume-skipped cells
    /// carry their prior success record.
    pub outcomes: Vec<RunOutcome>,
    /// Cells actually simulated in this execution.
    pub ran: usize,
    /// Cells skipped because the resume manifest already had them.
    pub skipped: usize,
    /// Cells served from the persistent result store.
    pub store_hits: usize,
}

impl SweepExecution {
    /// Number of failed cells.
    pub fn failed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_failed()).count()
    }

    /// The success records, in plan order.
    pub fn records(&self) -> Vec<RunRecord> {
        self.outcomes
            .iter()
            .filter_map(RunOutcome::success)
            .cloned()
            .collect()
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// An ordered list of cells to execute, possibly in parallel.
#[derive(Debug, Clone, Default)]
pub struct SweepPlan {
    /// Name used for the manifest file stem.
    pub name: String,
    /// Cells in result order.
    pub cells: Vec<SweepCell>,
}

impl SweepPlan {
    /// An empty plan.
    pub fn new(name: impl Into<String>) -> Self {
        SweepPlan {
            name: name.into(),
            cells: Vec::new(),
        }
    }

    /// The full cross product of workloads × systems on one input set.
    pub fn cross(
        name: impl Into<String>,
        workloads: &[&str],
        input: InputSet,
        systems: &[SystemKind],
    ) -> Self {
        let mut plan = SweepPlan::new(name);
        for &w in workloads {
            for &s in systems {
                plan.push(w, input, s);
            }
        }
        plan
    }

    /// Appends one cell.
    pub fn push(&mut self, workload: &str, input: InputSet, system: SystemKind) {
        self.cells.push(SweepCell {
            workload: workload.to_string(),
            input,
            system,
        });
    }

    /// Keeps only cells whose workload name or system label contains
    /// `needle` (case-sensitive substring).
    pub fn filtered(mut self, needle: &str) -> Self {
        self.cells
            .retain(|c| c.workload.contains(needle) || c.system.contains_label(needle));
        self
    }

    /// Executes every cell against `lab` on up to `jobs` worker threads
    /// and returns one record per cell, in plan order.
    ///
    /// Cells are claimed from a shared atomic counter, so a slow cell
    /// never stalls unrelated workers; duplicate cells hit the lab cache
    /// and simulate only once.
    ///
    /// A failing cell panics the worker (and, through the thread scope,
    /// the caller) — use [`SweepPlan::run_fault_tolerant`] when the
    /// remaining cells should survive a failure.
    pub fn run(&self, lab: &Lab, jobs: usize) -> Vec<RunRecord> {
        let n = self.cells.len();
        let workers = jobs.clamp(1, n.max(1));
        let next = AtomicUsize::new(0);
        let mut slots: Vec<std::sync::OnceLock<RunRecord>> = Vec::new();
        slots.resize_with(n, std::sync::OnceLock::new);

        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let cell = &self.cells[i];
                    lab.run_on(&cell.workload, cell.input, cell.system);
                    let record = lab
                        .record_for(&cell.workload, cell.input, cell.system)
                        .expect("run_on populated the cache");
                    let _ = slots[i].set(record);
                });
            }
        });

        slots
            .into_iter()
            .map(|s| s.into_inner().expect("every claimed cell stored a record"))
            .collect()
    }

    /// Executes every cell with per-cell failure isolation under the
    /// retry/deadline supervisor.
    ///
    /// Each cell's simulation runs under `catch_unwind`: a panic or a
    /// structured `SimError` produces a [`RunOutcome::Failed`] record
    /// for that cell and the remaining cells keep going on all workers.
    /// Transient failures (deadline overruns) are retried with
    /// deterministic backoff per [`RetryPolicy`]; the attempt history
    /// lands in the record's `retry` field. With a [`ResultStore`]
    /// configured, committed cells are served from the store without
    /// re-simulation and fresh results are appended to it. See
    /// [`SweepOptions`] for resume and incremental-flush behavior.
    pub fn run_fault_tolerant(
        &self,
        lab: &Lab,
        jobs: usize,
        opts: &SweepOptions<'_>,
    ) -> SweepExecution {
        let n = self.cells.len();
        let workers = jobs.clamp(1, n.max(1));
        let cfg = config_hash();

        // Resolve resume skips up front so `skipped` is exact even if
        // the process dies mid-sweep. A prior record only counts when
        // its workload provenance matches the current registry state:
        // an edited `.wl` spec or regenerated trace file must
        // re-simulate, not inherit the stale result.
        let prior: Vec<Option<RunRecord>> = self
            .cells
            .iter()
            .map(|c| {
                opts.resume_from.and_then(|m| {
                    let input = c.input_label();
                    let provenance = workload_provenance(&c.workload);
                    m.successes()
                        .find(|r| {
                            r.workload == c.workload
                                && r.input == input
                                && r.system == c.system.label()
                                && r.config_hash == cfg
                                && r.workload_hash == provenance
                        })
                        .cloned()
                })
            })
            .collect();
        let skipped = prior.iter().filter(|p| p.is_some()).count();

        let next = AtomicUsize::new(0);
        let store_hits = AtomicUsize::new(0);
        let mut slots: Vec<std::sync::OnceLock<RunOutcome>> = Vec::new();
        slots.resize_with(n, std::sync::OnceLock::new);

        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let cell = &self.cells[i];
                    let stored = || {
                        let mut record = opts.store?.get(
                            &cell.workload,
                            &cell.input_label(),
                            cell.system.label(),
                            cfg,
                        )?;
                        // Same provenance rule as resume: a committed
                        // result for an older version of the workload
                        // file is a miss, not a hit.
                        if record.workload_hash != workload_provenance(&cell.workload) {
                            return None;
                        }
                        record.store = Some("hit".to_string());
                        Some(record)
                    };
                    let outcome = match &prior[i] {
                        Some(record) => RunOutcome::Success(record.clone()),
                        None => match stored() {
                            Some(record) => {
                                store_hits.fetch_add(1, Ordering::Relaxed);
                                RunOutcome::Success(record)
                            }
                            None => supervise_cell(lab, cell, opts),
                        },
                    };
                    if let Some(w) = opts.writer {
                        if let Err(e) = w.append(i, outcome.clone()) {
                            eprintln!("[sweep] manifest flush failed: {e}");
                        }
                    }
                    let _ = slots[i].set(outcome);
                });
            }
        });

        let store_hits = store_hits.into_inner();
        SweepExecution {
            outcomes: slots
                .into_iter()
                .map(|s| {
                    s.into_inner()
                        .expect("every claimed cell stored an outcome")
                })
                .collect(),
            ran: n - skipped - store_hits,
            skipped,
            store_hits,
        }
    }

    /// Runs the plan and writes its manifest to
    /// `target/lab/<name>.json`; returns the records and the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the manifest write.
    pub fn run_and_write(
        &self,
        lab: &Lab,
        jobs: usize,
    ) -> std::io::Result<(Vec<RunRecord>, std::path::PathBuf)> {
        let records = self.run(lab, jobs);
        let path = Manifest {
            name: self.name.clone(),
            records: records.iter().cloned().map(RunOutcome::Success).collect(),
        }
        .write()?;
        Ok((records, path))
    }
}

/// Runs one cell under the retry/deadline supervisor and commits the
/// result.
///
/// Per attempt: run (under `catch_unwind` and the per-attempt wall-clock
/// deadline), classify any failure with
/// [`sim_core::SimError::class`], and either retry after deterministic
/// backoff (transient, attempts remaining) or fail the cell. A success
/// carries the attempt history in `retry` (when more than one attempt
/// ran) and is appended to the result store with the cell's injected
/// store fault routed through the write layer.
fn supervise_cell(lab: &Lab, cell: &SweepCell, opts: &SweepOptions<'_>) -> RunOutcome {
    let policy = opts.retry;
    let deadline = policy.deadline();
    let mut attempt_errors: Vec<String> = Vec::new();
    let mut total_backoff_ms = 0u64;
    let mut attempt = 1u32;
    loop {
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| match opts.trace_dir {
            None => lab
                .try_run_attempt(&cell.workload, cell.input, cell.system, attempt, deadline)
                .map(|_| None),
            Some(_) => lab
                .try_run_traced_attempt(&cell.workload, cell.input, cell.system, attempt, deadline)
                .map(|(_, trace)| Some(trace)),
        }));
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let (kind, class, message) = match result {
            Ok(Ok(trace)) => {
                let mut record = lab
                    .record_for(&cell.workload, cell.input, cell.system)
                    .expect("successful run populated the cache");
                if let (Some(dir), Some(trace)) = (opts.trace_dir, trace) {
                    match write_cell_trace(dir, cell, &trace) {
                        Ok((ts, obs)) => {
                            record.timeseries_path = Some(ts);
                            record.obs_path = Some(obs);
                        }
                        Err(e) => eprintln!(
                            "[sweep] trace write failed for {} {} {}: {e}",
                            cell.workload,
                            cell.input_label(),
                            cell.system.label()
                        ),
                    }
                }
                if attempt > 1 {
                    record.retry = Some(RetryInfo {
                        attempts: attempt,
                        attempt_errors,
                        total_backoff_ms,
                    });
                }
                if let Some(store) = opts.store {
                    let fault = lab.faults().store_fault_for_attempt(
                        &cell.workload,
                        cell.input,
                        cell.system,
                        attempt,
                    );
                    record.store = Some(match store.append(&record, fault) {
                        AppendDisposition::Appended => "appended".to_string(),
                        AppendDisposition::Degraded(reason) => format!("degraded:{reason}"),
                    });
                }
                return RunOutcome::Success(record);
            }
            Ok(Err(e)) => (e.kind().to_string(), e.class(), e.to_string()),
            Err(payload) => (
                "panic".to_string(),
                ErrorClass::Permanent,
                panic_message(payload),
            ),
        };
        attempt_errors.push(format!("{kind}:{}", class.label()));
        if class == ErrorClass::Transient && attempt < policy.max_attempts {
            let backoff = policy.backoff_ms(attempt);
            total_backoff_ms += backoff;
            std::thread::sleep(Duration::from_millis(backoff));
            attempt += 1;
            continue;
        }
        let mut failure = FailureRecord::new(
            &cell.workload,
            cell.input,
            cell.system,
            &kind,
            &message,
            wall_ms,
        );
        failure.retry = Some(RetryInfo {
            attempts: attempt,
            attempt_errors,
            total_backoff_ms,
        });
        return RunOutcome::Failed(failure);
    }
}

/// Writes one cell's observability artifacts under `dir` and returns the
/// `(timeseries.json, obs.jsonl)` paths as manifest strings.
fn write_cell_trace(
    dir: &Path,
    cell: &SweepCell,
    trace: &RunTrace,
) -> std::io::Result<(String, String)> {
    let cell_dir = dir.join(format!(
        "{}-{}-{}",
        cell.workload,
        cell.input_label(),
        cell.system.label()
    ));
    std::fs::create_dir_all(&cell_dir)?;
    let ts_path = cell_dir.join("timeseries.json");
    std::fs::write(&ts_path, trace.timeseries_json().to_string_pretty())?;
    let obs_path = cell_dir.join("obs.jsonl");
    let meta = [
        ("workload", Json::Str(cell.workload.clone())),
        ("input", Json::Str(cell.input_label())),
        ("system", Json::Str(cell.system.label().to_string())),
        ("config_hash", Json::Str(format!("{:016x}", config_hash()))),
    ];
    std::fs::write(&obs_path, trace.to_jsonl(&meta))?;
    Ok((
        ts_path.to_string_lossy().into_owned(),
        obs_path.to_string_lossy().into_owned(),
    ))
}

/// The worker-thread count to use by default: `BENCH_JOBS` (via the
/// [`crate::request::compat`] gate) if set to a positive integer, else
/// the machine's available parallelism.
pub fn default_jobs() -> usize {
    if let Some(v) = crate::request::compat::setting("BENCH_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
        eprintln!("[sweep] ignoring invalid BENCH_JOBS={v:?}");
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Case-sensitive substring match helper on system labels.
trait LabelContains {
    fn contains_label(&self, needle: &str) -> bool;
}

impl LabelContains for SystemKind {
    fn contains_label(&self, needle: &str) -> bool {
        self.label().contains(needle)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn cross_builds_full_product() {
        let plan = SweepPlan::cross(
            "t",
            &["mst", "em3d"],
            InputSet::Train,
            &[SystemKind::NoPrefetch, SystemKind::StreamOnly],
        );
        assert_eq!(plan.cells.len(), 4);
        assert_eq!(plan.cells[0].workload, "mst");
        assert_eq!(plan.cells[3].system, SystemKind::StreamOnly);
    }

    #[test]
    fn filter_matches_workload_or_system() {
        let plan = SweepPlan::cross(
            "t",
            &["mst", "em3d"],
            InputSet::Train,
            &[SystemKind::NoPrefetch, SystemKind::StreamOnly],
        );
        let by_wl = plan.clone().filtered("mst");
        assert_eq!(by_wl.cells.len(), 2);
        assert!(by_wl.cells.iter().all(|c| c.workload == "mst"));
        let by_sys = plan.filtered(SystemKind::StreamOnly.label());
        assert_eq!(by_sys.cells.len(), 2);
        assert!(by_sys
            .cells
            .iter()
            .all(|c| c.system == SystemKind::StreamOnly));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn panic_messages_are_extracted() {
        let payload = catch_unwind(|| panic!("plain {}", "message")).unwrap_err();
        assert_eq!(panic_message(payload), "plain message");
        let payload = catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_message(payload), "non-string panic payload");
    }
}
