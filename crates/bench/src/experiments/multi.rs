//! Multi-core experiments: Figure 14 (dual-core) and Figure 15 (4-core).
//!
//! Methodology notes: multi-core runs use the train-sized inputs to keep
//! single-CPU simulation turnaround practical; each core restarts its trace
//! until the slowest completes (as in the paper). Weighted speedup for
//! every configuration normalises shared-mode IPCs against the *baseline*
//! alone runs, so reported gains are shared-mode throughput improvements.

use ecdp::system::{core_setup, SystemKind};
use sim_core::{MachineConfig, MultiMachine, MultiRunStats};
use workloads::InputSet;

use crate::table::{f2, pct, Table};
use crate::Lab;

/// The 12 dual-core workload mixes (pointer+pointer, mixed, and
/// non-intensive pairs, mirroring the paper's random selection policy).
pub const DUAL_CORE_MIXES: [(&str, &str); 12] = [
    ("xalancbmk", "astar"),
    ("mcf", "omnetpp"),
    ("mst", "health"),
    ("perlbench", "pfast"),
    ("mcf", "libquantum"),
    ("astar", "milc"),
    ("omnetpp", "hmmer"),
    ("xalancbmk", "lbm"),
    ("health", "h264ref"),
    ("bisort", "bwaves"),
    ("GemsFDTD", "h264ref"),
    ("libquantum", "hmmer"),
];

/// The 4 quad-core case studies: all-pointer, two mixed, one
/// non-pointer-intensive.
pub const QUAD_CORE_MIXES: [[&str; 4]; 4] = [
    ["mcf", "xalancbmk", "astar", "omnetpp"],
    ["health", "mst", "libquantum", "hmmer"],
    ["perlbench", "voronoi", "lbm", "milc"],
    ["astar", "GemsFDTD", "h264ref", "sjeng"],
];

/// Runs one mix under one system kind; returns the multi-core stats.
pub fn run_mix(lab: &Lab, names: &[&str], kind: SystemKind) -> MultiRunStats {
    let setups = names
        .iter()
        .map(|n| {
            let art = lab.artifacts(n);
            core_setup(kind, &art)
        })
        .collect();
    let traces: Vec<sim_core::Trace> = names
        .iter()
        .map(|n| {
            // Clone out of the lab cache so the MultiMachine owns its input.
            let t = lab.trace(n, InputSet::Train);
            sim_core::Trace {
                initial_memory: t.initial_memory.clone(),
                ops: t.ops.clone(),
                instructions: t.instructions,
            }
        })
        .collect();
    let mut mm = MultiMachine::new(MachineConfig::default(), setups);
    mm.run(&traces).expect("multi-core run failed")
}

/// Alone-run IPCs (single-core, same config, train input); memoised by
/// the lab's process-wide run cache.
fn alone_ipcs(lab: &Lab, names: &[&str], kind: SystemKind) -> Vec<f64> {
    names
        .iter()
        .map(|n| lab.run_on(n, InputSet::Train, kind).ipc())
        .collect()
}

fn multicore_report<const N: usize>(
    lab: &Lab,
    title: &str,
    mixes: &[[&str; N]],
    paper_note: &str,
) -> String {
    let kinds = [
        (SystemKind::StreamOnly, "base"),
        (SystemKind::StreamEcdpThrottled, "ours"),
        (SystemKind::StreamMarkov, "markov"),
        (SystemKind::GhbAlone, "ghb"),
        (SystemKind::StreamDbp, "dbp"),
    ];
    let mut headers = vec!["mix".to_string()];
    for (_, l) in kinds.iter().skip(1) {
        headers.push(format!("{l} WS gain"));
    }
    headers.push("ours Δbus".to_string());
    let mut t = Table::new(headers);
    let mut ws_gains: Vec<Vec<f64>> = vec![Vec::new(); kinds.len() - 1];
    let mut hs_gains: Vec<f64> = Vec::new();
    let mut bus_ratio = Vec::new();
    for mix in mixes {
        let names: Vec<&str> = mix.to_vec();
        let base_alone = alone_ipcs(lab, &names, SystemKind::StreamOnly);
        let base = run_mix(lab, &names, SystemKind::StreamOnly);
        let base_ws = base.weighted_speedup(&base_alone);
        let base_hs = base.hmean_speedup(&base_alone);
        let mut cells = vec![names.join("+")];
        for (k, (kind, _)) in kinds.iter().enumerate().skip(1) {
            // All configurations are normalised against the *baseline*
            // alone runs, so weighted-speedup gains reflect shared-mode
            // throughput improvements rather than contention sensitivity.
            let r = run_mix(lab, &names, *kind);
            let ws = r.weighted_speedup(&base_alone);
            ws_gains[k - 1].push(ws / base_ws);
            cells.push(f2(ws / base_ws));
            if *kind == SystemKind::StreamEcdpThrottled {
                hs_gains.push(r.hmean_speedup(&base_alone) / base_hs);
                let ratio = r.total_bus_transfers as f64 / base.total_bus_transfers.max(1) as f64;
                bus_ratio.push(ratio);
            }
        }
        let ratio = bus_ratio.last().copied().unwrap_or(1.0);
        cells.push(format!("{:+.0}%", (ratio - 1.0) * 100.0));
        t.row(cells);
    }
    let mut out = format!("## {title}\n\n{}\n", t.to_markdown());
    for (k, (_, label)) in kinds.iter().enumerate().skip(1) {
        out.push_str(&format!(
            "{label}: weighted-speedup gain gmean {}\n",
            pct(crate::gmean(&ws_gains[k - 1]))
        ));
    }
    out.push_str(&format!(
        "ours: hmean-speedup gain {}; bus traffic ratio {:.2}x\n{paper_note}\n",
        pct(crate::gmean(&hs_gains)),
        crate::gmean(&bus_ratio)
    ));
    out
}

/// Figure 14: dual-core weighted speedup and bus traffic.
pub fn fig14(lab: &Lab) -> String {
    let mixes: Vec<[&str; 2]> = DUAL_CORE_MIXES.iter().map(|(a, b)| [*a, *b]).collect();
    multicore_report(
        lab,
        "Figure 14 — dual-core results",
        &mixes,
        "paper: ours improves weighted speedup 10.4% and hmean speedup 9.9% while cutting\n\
         bus traffic 14.9%; Markov gains 4.1% but adds 19.5% traffic; GHB gains 6.2%;\n\
         DBP is ineffective under multi-core miss latencies.",
    )
}

/// Figure 15: 4-core case studies.
pub fn fig15(lab: &Lab) -> String {
    multicore_report(
        lab,
        "Figure 15 — 4-core results",
        &QUAD_CORE_MIXES,
        "paper: ours improves weighted/hmean speedup by 9.5%/9.7% and cuts bus traffic\n\
         15.3%, exceeding the Markov and GHB prefetchers at far lower storage cost.",
    )
}
