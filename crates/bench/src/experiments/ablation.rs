//! Ablation studies for the design choices the paper fixes by fiat:
//! the number of compare bits, the maximum recursion depth, the sampling
//! interval length, the hint-vector usefulness threshold — plus the paper's
//! stated "ongoing work": coordinated throttling across *three*
//! prefetchers.

use ecdp::hints::HintTable;
use ecdp::profile::profile_workload;
use ecdp::system::{CompilerArtifacts, SystemKind};
use prefetch::{
    AllowAll, CdpConfig, ContentDirectedPrefetcher, GhbConfig, GhbPrefetcher, StreamConfig,
    StreamPrefetcher,
};
use sim_core::{
    Aggressiveness, DramScheduling, Machine, MachineConfig, PrefetcherId, RowPolicy, RunStats,
    Trace,
};
use throttle::CoordinatedThrottle;
use workloads::InputSet;

use crate::table::{f2, Table};
use crate::Lab;

/// A representative subset of the pointer suite for parameter sweeps
/// (covering the CDP-hostile, CDP-friendly and mixed regimes).
const SWEEP_BENCHES: [&str; 5] = ["mst", "health", "perlbench", "xalancbmk", "pfast"];

fn run_with(
    trace: &Trace,
    hints: Option<&HintTable>,
    compare_bits: u32,
    fixed_level: Option<Aggressiveness>,
    throttled: bool,
    interval: u64,
) -> RunStats {
    let cfg = MachineConfig {
        interval_evictions: interval,
        ..Default::default()
    };
    let mut m = Machine::new(cfg);
    m.add_prefetcher(Box::new(StreamPrefetcher::new(
        PrefetcherId(0),
        StreamConfig::default(),
    )));
    let filter: Box<dyn prefetch::ScanFilter> = match hints {
        Some(h) => Box::new(h.clone()),
        None => Box::new(AllowAll),
    };
    let mut cdp =
        ContentDirectedPrefetcher::new(PrefetcherId(1), CdpConfig { compare_bits }, filter);
    if let Some(level) = fixed_level {
        use sim_core::Prefetcher;
        cdp.set_aggressiveness(level);
    }
    m.add_prefetcher(Box::new(cdp));
    if throttled {
        m.set_throttle(Box::new(CoordinatedThrottle::default()));
    }
    m.run(trace).expect("ablation run failed")
}

/// Sweep the CDP compare-bits parameter (paper §5 fixes it at 8 of 32).
pub fn compare_bits_sweep(lab: &Lab) -> String {
    let bits = [4u32, 8, 12, 16];
    let mut headers = vec!["bench".to_string()];
    headers.extend(bits.iter().map(|b| format!("{b} bits")));
    let mut t = Table::new(headers);
    for name in SWEEP_BENCHES {
        let art = lab.artifacts(name);
        let base = lab.run(name, SystemKind::StreamOnly).ipc();
        let trace = lab.trace(name, InputSet::Ref);
        let mut cells = vec![name.to_string()];
        for b in bits {
            let s = run_with(&trace, Some(&art.hints), b, None, true, 8192);
            cells.push(f2(s.ipc() / base));
        }
        t.row(cells);
    }
    format!(
        "## Ablation — CDP compare bits (speedup of ECDP+throttle vs baseline)\n\n{}\n\
         The paper fixes 8 compare bits. Fewer bits admit more false pointers; more bits\n\
         reject cross-region pointers. In this address-space layout the heap shares its\n\
         top byte, so 4–8 behave alike and 16 starts rejecting distant heap pointers.\n",
        t.to_markdown()
    )
}

/// Sweep the maximum recursion depth with throttling disabled
/// (paper Table 2 ties depth 1–4 to the aggressiveness ladder).
pub fn recursion_depth_sweep(lab: &Lab) -> String {
    let levels = [
        (Aggressiveness::VeryConservative, "depth 1"),
        (Aggressiveness::Conservative, "depth 2"),
        (Aggressiveness::Moderate, "depth 3"),
        (Aggressiveness::Aggressive, "depth 4"),
    ];
    let mut headers = vec!["bench".to_string()];
    headers.extend(levels.iter().map(|(_, l)| l.to_string()));
    let mut t = Table::new(headers);
    for name in SWEEP_BENCHES {
        let art = lab.artifacts(name);
        let base = lab.run(name, SystemKind::StreamOnly).ipc();
        let trace = lab.trace(name, InputSet::Ref);
        let mut cells = vec![name.to_string()];
        for (level, _) in levels {
            let s = run_with(&trace, Some(&art.hints), 8, Some(level), false, 8192);
            cells.push(f2(s.ipc() / base));
        }
        t.row(cells);
    }
    format!(
        "## Ablation — fixed CDP recursion depth, unthrottled ECDP\n\n{}\n\
         Depth is the CDP aggressiveness knob: chains need depth to sprint ahead of the\n\
         demand stream (health), while junk-heavy expansions want depth 1 (mst) — which\n\
         is exactly why the paper throttles it dynamically.\n",
        t.to_markdown()
    )
}

/// Sweep the feedback-sampling interval (paper §4.1 fixes 8192 evictions).
pub fn interval_sweep(lab: &Lab) -> String {
    let intervals = [1024u64, 4096, 8192, 32768];
    let mut headers = vec!["bench".to_string()];
    headers.extend(intervals.iter().map(|i| format!("{i} ev")));
    let mut t = Table::new(headers);
    for name in SWEEP_BENCHES {
        let art = lab.artifacts(name);
        let base = lab.run(name, SystemKind::StreamOnly).ipc();
        let trace = lab.trace(name, InputSet::Ref);
        let mut cells = vec![name.to_string()];
        for i in intervals {
            let s = run_with(&trace, Some(&art.hints), 8, None, true, i);
            cells.push(f2(s.ipc() / base));
        }
        t.row(cells);
    }
    format!(
        "## Ablation — feedback sampling interval (ECDP+throttle speedup)\n\n{}\n\
         Shorter intervals react faster but on noisier counters; the paper's 8192-eviction\n\
         interval sits on the flat part of the curve.\n",
        t.to_markdown()
    )
}

/// Sweep the PG usefulness threshold used to classify beneficial groups
/// (the paper uses majority, i.e. 50%).
pub fn hint_threshold_sweep(lab: &Lab) -> String {
    let thresholds = [0.25f64, 0.5, 0.75];
    let mut headers = vec!["bench".to_string()];
    headers.extend(thresholds.iter().map(|t| format!(">{:.0}%", t * 100.0)));
    let mut t = Table::new(headers);
    for name in SWEEP_BENCHES {
        let base = lab.run(name, SystemKind::StreamOnly).ipc();
        let profile = lab.profile(name).clone();
        let trace = lab.trace(name, InputSet::Ref);
        let mut cells = vec![name.to_string()];
        for &th in &thresholds {
            // Rebuild the hint table at a different usefulness bar.
            let mut table = HintTable::new();
            let mut vectors: std::collections::HashMap<u32, ecdp::hints::HintVector> =
                std::collections::HashMap::new();
            for (pg, u) in &profile.pgs {
                let resolved = u.useful + u.useless;
                if resolved >= profile.min_samples && u.usefulness() > th {
                    let off = i32::from(pg.offset);
                    if off % 4 == 0 && (-64..=60).contains(&off) {
                        vectors.entry(pg.pc).or_default().set(off);
                    }
                }
            }
            for (pc, v) in vectors {
                table.insert(pc, v);
            }
            let s = run_with(&trace, Some(&table), 8, None, true, 8192);
            cells.push(f2(s.ipc() / base));
        }
        t.row(cells);
    }
    format!(
        "## Ablation — pointer-group usefulness threshold\n\n{}\n\
         The paper classifies a PG as beneficial when the majority (>50%) of its\n\
         prefetches are useful (footnote 4: lower bars lose performance).\n",
        t.to_markdown()
    )
}

/// Extension (paper §4.2 \"ongoing work\"): coordinated throttling across
/// *three* prefetchers — stream + ECDP + GHB — using the same
/// prefetcher-symmetric heuristics with max-rival coverage.
pub fn three_prefetchers(lab: &Lab) -> String {
    let mut t = Table::new(vec![
        "bench",
        "2pf (stream+ecdp, throttled)",
        "3pf unthrottled",
        "3pf throttled",
    ]);
    let mut two = Vec::new();
    let mut three_raw = Vec::new();
    let mut three_thr = Vec::new();
    for name in crate::experiments::POINTER_BENCHES {
        let art = lab.artifacts(name);
        let base = lab.run(name, SystemKind::StreamOnly).ipc();
        let two_r = lab.run(name, SystemKind::StreamEcdpThrottled).ipc() / base;
        let trace = lab.trace(name, InputSet::Ref);
        let run3 = |throttled: bool| {
            let mut m = Machine::new(MachineConfig::default());
            m.add_prefetcher(Box::new(StreamPrefetcher::new(
                PrefetcherId(0),
                StreamConfig::default(),
            )));
            m.add_prefetcher(Box::new(ContentDirectedPrefetcher::new(
                PrefetcherId(1),
                CdpConfig::default(),
                Box::new(art.hints.clone()),
            )));
            m.add_prefetcher(Box::new(GhbPrefetcher::new(
                PrefetcherId(2),
                GhbConfig::default(),
            )));
            if throttled {
                m.set_throttle(Box::new(CoordinatedThrottle::default()));
            }
            m.run(&trace).expect("ablation run failed").ipc() / base
        };
        let raw = run3(false);
        let thr = run3(true);
        two.push(two_r);
        three_raw.push(raw);
        three_thr.push(thr);
        t.row(vec![name.to_string(), f2(two_r), f2(raw), f2(thr)]);
    }
    format!(
        "## Extension — coordinated throttling of three prefetchers (§4.2 ongoing work)\n\n{}\n\
         gmeans: 2pf {:.3}, 3pf unthrottled {:.3}, 3pf throttled {:.3}\n\
         The Table 3 heuristics are prefetcher-symmetric: each prefetcher decides against\n\
         the *maximum* rival coverage, so adding a third (GHB) prefetcher needs no new\n\
         mechanism. Throttling keeps the three-way hybrid from degenerating into a\n\
         bandwidth fight.\n",
        t.to_markdown(),
        crate::gmean(&two),
        crate::gmean(&three_raw),
        crate::gmean(&three_thr)
    )
}

/// Sweep the memory controller's scheduling and row-buffer policies under
/// the full proposal (the simulator defaults to FR-FCFS + demand-first +
/// open page, the configuration the paper's §4 resource-contention
/// discussion assumes).
pub fn dram_policy_sweep(lab: &Lab) -> String {
    let configs: [(&str, DramScheduling, RowPolicy); 4] = [
        (
            "frfcfs+demand",
            DramScheduling::FrFcfsDemandFirst,
            RowPolicy::OpenPage,
        ),
        ("frfcfs", DramScheduling::FrFcfs, RowPolicy::OpenPage),
        ("fcfs", DramScheduling::Fcfs, RowPolicy::OpenPage),
        (
            "closed-page",
            DramScheduling::FrFcfsDemandFirst,
            RowPolicy::ClosedPage,
        ),
    ];
    let mut headers = vec!["bench".to_string()];
    headers.extend(configs.iter().map(|(l, _, _)| l.to_string()));
    let mut t = Table::new(headers);
    for name in SWEEP_BENCHES {
        let art = lab.artifacts(name);
        let base = lab.run(name, SystemKind::StreamOnly).ipc();
        let trace = lab.trace(name, InputSet::Ref);
        let mut cells = vec![name.to_string()];
        for (_, sched, row) in configs {
            let mut cfg = MachineConfig::default();
            cfg.dram.scheduling = sched;
            cfg.dram.row_policy = row;
            let mut m = Machine::new(cfg);
            m.add_prefetcher(Box::new(StreamPrefetcher::new(
                PrefetcherId(0),
                StreamConfig::default(),
            )));
            m.add_prefetcher(Box::new(ContentDirectedPrefetcher::new(
                PrefetcherId(1),
                CdpConfig::default(),
                Box::new(art.hints.clone()),
            )));
            m.set_throttle(Box::new(CoordinatedThrottle::default()));
            cells.push(f2(m.run(&trace).expect("ablation run failed").ipc() / base));
        }
        t.row(cells);
    }
    format!(
        "## Ablation — DRAM scheduling and row-buffer policy (ECDP+throttle speedup)

{}
         Demand-first prioritisation is what keeps useless prefetches from delaying
         demand misses at the banks; without it (plain FR-FCFS/FCFS) prefetch-heavy
         benchmarks lose ground, and closed-page forfeits the row locality the
         streaming sweeps rely on.
",
        t.to_markdown()
    )
}

/// Sensitivity of profiling to train-input size (a calibration hazard this
/// reproduction hit: cache-resident train inputs misclassify junk PGs).
pub fn profile_quality(lab: &Lab) -> String {
    let mut t = Table::new(vec![
        "bench",
        "hints (train)",
        "beneficial/harmful",
        "hints (ref)",
    ]);
    for name in SWEEP_BENCHES {
        let p_train = lab.profile(name).clone();
        let (b, h) = p_train.counts();
        let ref_trace = lab.trace(name, InputSet::Ref);
        let p_ref = profile_workload(&ref_trace);
        t.row(vec![
            name.to_string(),
            p_train.hint_table().len().to_string(),
            format!("{b}/{h}"),
            p_ref.hint_table().len().to_string(),
        ]);
    }
    let _ = CompilerArtifacts::empty();
    format!(
        "## Ablation — profile stability across inputs\n\n{}\n\
         The hint tables derived from train and ref inputs select essentially the same\n\
         loads — the basis of the paper's §6.1.6 insensitivity claim.\n",
        t.to_markdown()
    )
}
