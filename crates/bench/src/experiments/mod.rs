//! One generator per table/figure of the paper's evaluation.
//!
//! Each function takes a [`crate::Lab`] and returns a self-contained text
//! report (markdown tables plus commentary lines starting with `paper:`
//! that state the result the original reported, for side-by-side reading in
//! `EXPERIMENTS.md`).

pub mod ablation;
pub mod compare;
pub mod misc;
pub mod multi;
pub mod single;

/// Names of the 15 pointer-intensive workloads, in Table 1 order.
pub const POINTER_BENCHES: [&str; 15] = [
    "perlbench",
    "gcc",
    "mcf",
    "astar",
    "xalancbmk",
    "omnetpp",
    "parser",
    "art",
    "ammp",
    "bisort",
    "health",
    "mst",
    "perimeter",
    "voronoi",
    "pfast",
];

/// Geometric-mean speedups with and without `health` (the paper reports
/// both because `health` skews averages).
pub fn gmean_with_without_health(pairs: &[(&str, f64)]) -> (f64, f64) {
    let all: Vec<f64> = pairs.iter().map(|(_, v)| *v).collect();
    let no_health: Vec<f64> = pairs
        .iter()
        .filter(|(n, _)| *n != "health")
        .map(|(_, v)| *v)
        .collect();
    (crate::gmean(&all), crate::gmean(&no_health))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_list_matches_table1_order() {
        assert_eq!(POINTER_BENCHES.len(), 15);
        assert_eq!(POINTER_BENCHES[0], "perlbench");
        assert_eq!(POINTER_BENCHES[14], "pfast");
    }

    #[test]
    fn health_exclusion() {
        let pairs = [("health", 4.0), ("mst", 1.0)];
        let (with, without) = gmean_with_without_health(&pairs);
        assert!((with - 2.0).abs() < 1e-12);
        assert!((without - 1.0).abs() < 1e-12);
    }
}
