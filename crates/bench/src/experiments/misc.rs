//! §6.7: the remaining (non-pointer-intensive) benchmarks.

use ecdp::system::SystemKind;

use crate::table::{f3, Table};
use crate::Lab;

/// Names of the non-pointer-intensive workloads (8 SPEC stand-ins plus the
/// four remaining Olden programs).
pub const STREAMING_BENCHES: [&str; 12] = [
    "libquantum",
    "bwaves",
    "GemsFDTD",
    "h264ref",
    "hmmer",
    "lbm",
    "milc",
    "sjeng",
    "treeadd",
    "em3d",
    "tsp",
    "power",
];

/// §6.7: the proposal must not hurt benchmarks without LDS misses.
pub fn sec67(lab: &Lab) -> String {
    let mut t = Table::new(vec!["bench", "speedup", "ΔBPKI"]);
    let mut speed = Vec::new();
    let mut bw = Vec::new();
    for name in STREAMING_BENCHES {
        let base = lab.run(name, SystemKind::StreamOnly);
        let ours = lab.run(name, SystemKind::StreamEcdpThrottled);
        let s = ours.ipc() / base.ipc();
        let b = ours.bpki() / base.bpki().max(1e-9);
        speed.push(s);
        bw.push(b);
        t.row(vec![
            name.to_string(),
            f3(s),
            format!("{:+.1}%", (b - 1.0) * 100.0),
        ]);
    }
    format!(
        "## §6.7 — remaining (non-pointer-intensive) benchmarks\n\n{}\n\
         gmean speedup: {:+.1}%; gmean bandwidth delta: {:+.1}%\n\
         paper: +0.3% performance and -0.1% bandwidth — the mechanism does not disturb\n\
         applications without LDS-miss traffic.\n",
        t.to_markdown(),
        (crate::gmean(&speed) - 1.0) * 100.0,
        (crate::gmean(&bw) - 1.0) * 100.0
    )
}
