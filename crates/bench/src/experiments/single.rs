//! Single-core experiments: Figures 1, 2, 4, 7, 8, 9, 10 and Tables 1, 6, 7
//! plus the §6.1.6 profiling-input study.

use ecdp::cost::HardwareCost;
use ecdp::profile::profile_workload;
use ecdp::system::{CompilerArtifacts, SystemBuilder, SystemKind};
use sim_core::MachineConfig;
use workloads::{registry, InputSet};

use crate::experiments::{gmean_with_without_health, POINTER_BENCHES};
use crate::table::{f2, f3, pct, Table};
use crate::Lab;

/// Figure 1: performance of the stream prefetcher (top) and the potential
/// of ideal LDS prefetching (bottom).
pub fn fig01(lab: &Lab) -> String {
    let mut t = Table::new(vec![
        "bench",
        "stream speedup vs no-pf",
        "stream coverage",
        "oracle-LDS speedup vs stream",
    ]);
    let mut oracle = Vec::new();
    for name in POINTER_BENCHES {
        let nopf = lab.run(name, SystemKind::NoPrefetch);
        let stream = lab.run(name, SystemKind::StreamOnly);
        let orac = lab.run(name, SystemKind::OracleLds);
        let cov = stream.prefetch_coverage(0);
        t.row(vec![
            name.to_string(),
            f2(stream.ipc() / nopf.ipc()),
            f2(cov),
            f2(orac.ipc() / stream.ipc()),
        ]);
        oracle.push((name, orac.ipc() / stream.ipc()));
    }
    let (with, without) = gmean_with_without_health(&oracle);
    let chart = crate::chart::figure(
        "Ideal-LDS-oracle speedup over the stream baseline, per benchmark:",
        &oracle,
        Some(1.0),
    );
    format!(
        "## Figure 1 — motivation: stream prefetching vs ideal LDS prefetching\n\n{}\n{chart}\n\
         oracle-LDS gmean speedup: {} ({} w/o health)\n\
         paper: ideal LDS prefetching improves average performance by +53.7% (+37.7% w/o health);\n\
         paper: the stream prefetcher covers <20% of misses on the eight LDS-bound benchmarks.\n\
         note: our stand-ins are more memory-bound than the originals, so oracle potentials are larger.\n",
        t.to_markdown(),
        pct(with),
        pct(without)
    )
}

/// Figure 2 + Table 1: the original CDP problem — performance loss and
/// bandwidth explosion, with per-benchmark CDP accuracy.
pub fn fig02_tab01(lab: &Lab) -> String {
    let mut t = Table::new(vec![
        "bench",
        "CDP speedup vs stream",
        "BPKI stream",
        "BPKI stream+CDP",
        "CDP accuracy (Table 1)",
    ]);
    let mut speed = Vec::new();
    let mut bw = Vec::new();
    for name in POINTER_BENCHES {
        let base = lab.run(name, SystemKind::StreamOnly);
        let cdp = lab.run(name, SystemKind::StreamCdp);
        t.row(vec![
            name.to_string(),
            f2(cdp.ipc() / base.ipc()),
            format!("{:.1}", base.bpki()),
            format!("{:.1}", cdp.bpki()),
            format!("{:.1}%", cdp.prefetch_accuracy(1) * 100.0),
        ]);
        speed.push((name, cdp.ipc() / base.ipc()));
        bw.push(cdp.bpki() / base.bpki().max(1e-9));
    }
    let (s_with, s_wo) = gmean_with_without_health(&speed);
    format!(
        "## Figure 2 + Table 1 — original CDP degrades performance and wastes bandwidth\n\n{}\n\
         CDP gmean speedup: {} ({} w/o health); bandwidth ratio gmean: {:.2}x\n\
         paper: CDP reduces average performance by 14% and increases bandwidth by 83.3%;\n\
         paper Table 1 accuracies range from 0.9% (xalancbmk) to 83.3% (perimeter).\n",
        t.to_markdown(),
        pct(s_with),
        pct(s_wo),
        crate::gmean(&bw)
    )
}

/// Figure 4: breakdown of pointer groups into beneficial and harmful.
pub fn fig04(lab: &Lab) -> String {
    let mut t = Table::new(vec![
        "bench",
        "beneficial PGs",
        "harmful PGs",
        "% beneficial",
    ]);
    for name in POINTER_BENCHES {
        let (b, h) = lab.profile(name).counts();
        let pctb = if b + h == 0 {
            0.0
        } else {
            100.0 * b as f64 / (b + h) as f64
        };
        t.row(vec![
            name.to_string(),
            b.to_string(),
            h.to_string(),
            format!("{pctb:.0}%"),
        ]);
    }
    format!(
        "## Figure 4 — beneficial vs harmful pointer groups (train-input profile)\n\n{}\n\
         paper: in many benchmarks (astar, omnetpp, bisort, mst) a large fraction of PGs are harmful.\n",
        t.to_markdown()
    )
}

/// Figure 7 + Table 6: the main result — performance and bandwidth of CDP,
/// ECDP, CDP+throttling and ECDP+throttling over the stream baseline.
pub fn fig07_tab06(lab: &Lab) -> String {
    let kinds = [
        SystemKind::StreamCdp,
        SystemKind::StreamEcdp,
        SystemKind::StreamCdpThrottled,
        SystemKind::StreamEcdpThrottled,
    ];
    let mut t = Table::new(vec![
        "bench",
        "cdp",
        "ecdp",
        "cdp+thr",
        "ecdp+thr",
        "ΔBPKI ecdp+thr",
    ]);
    let mut per_kind: Vec<Vec<(&str, f64)>> = vec![Vec::new(); kinds.len()];
    let mut bw = Vec::new();
    for name in POINTER_BENCHES {
        let base = lab.run(name, SystemKind::StreamOnly);
        let mut cells = vec![name.to_string()];
        for (k, kind) in kinds.iter().enumerate() {
            let s = lab.run(name, *kind);
            let ratio = s.ipc() / base.ipc();
            cells.push(f2(ratio));
            per_kind[k].push((name, ratio));
        }
        let ours = lab.run(name, SystemKind::StreamEcdpThrottled);
        let delta = (ours.bpki() - base.bpki()) / base.bpki().max(1e-9);
        cells.push(format!("{:+.1}%", delta * 100.0));
        bw.push(ours.bpki() / base.bpki().max(1e-9));
        t.row(cells);
    }
    let mut out = format!(
        "## Figure 7 + Table 6 — main results (speedup vs stream baseline)\n\n{}\n",
        t.to_markdown()
    );
    let labels = ["CDP", "ECDP", "CDP+throttle", "ECDP+throttle"];
    let mut chart_items = vec![("baseline", 1.0f64)];
    let mut gmeans = Vec::new();
    for (k, label) in labels.iter().enumerate() {
        let (w, wo) = gmean_with_without_health(&per_kind[k]);
        gmeans.push(w);
        out.push_str(&format!(
            "{label}: gmean {} ({} w/o health)\n",
            pct(w),
            pct(wo)
        ));
    }
    for (label, g) in labels.iter().zip(&gmeans) {
        chart_items.push((label, *g));
    }
    out.push('\n');
    out.push_str(&crate::chart::figure(
        "Average speedup over the stream baseline (gmean, 15 benchmarks):",
        &chart_items,
        Some(1.0),
    ));
    out.push_str(&format!(
        "ECDP+throttle bandwidth ratio gmean: {:.2}x\n\
         paper: CDP -14%, ECDP +8.6% (+2.7% w/o health), CDP+throttle +9.4% (+4.5%),\n\
         paper: ECDP+throttle +22.5% (+16% w/o health) with bandwidth -25% (-27.1%).\n\
         note: our baseline stream prefetcher wastes little bandwidth on the pointer\n\
         benchmarks, so the throttling contribution and bandwidth savings are smaller\n\
         than the paper's (see DESIGN.md calibration notes).\n",
        crate::gmean(&bw)
    ));
    out
}

/// Figure 8: prefetcher accuracy under each configuration.
pub fn fig08(lab: &Lab) -> String {
    accuracy_coverage_report(lab, true)
}

/// Figure 9: prefetcher coverage under each configuration.
pub fn fig09(lab: &Lab) -> String {
    accuracy_coverage_report(lab, false)
}

fn accuracy_coverage_report(lab: &Lab, accuracy: bool) -> String {
    let kinds = [
        (SystemKind::StreamCdp, "cdp"),
        (SystemKind::StreamEcdp, "ecdp"),
        (SystemKind::StreamCdpThrottled, "cdp+thr"),
        (SystemKind::StreamEcdpThrottled, "ecdp+thr"),
    ];
    let metric = |s: &sim_core::RunStats, pf: usize| -> f64 {
        if accuracy {
            s.prefetch_accuracy(pf)
        } else {
            s.prefetch_coverage(pf)
        }
    };
    let mut headers = vec!["bench".to_string()];
    for (_, l) in kinds {
        headers.push(format!("CDP {l}"));
    }
    for (_, l) in kinds {
        headers.push(format!("stream {l}"));
    }
    let mut t = Table::new(headers);
    let mut sums = vec![0.0f64; kinds.len() * 2];
    for name in POINTER_BENCHES {
        let mut cells = vec![name.to_string()];
        for (k, (kind, _)) in kinds.iter().enumerate() {
            let s = lab.run(name, *kind);
            let v = metric(&s, 1);
            sums[k] += v;
            cells.push(f2(v));
        }
        for (k, (kind, _)) in kinds.iter().enumerate() {
            let s = lab.run(name, *kind);
            let v = metric(&s, 0);
            sums[kinds.len() + k] += v;
            cells.push(f2(v));
        }
        t.row(cells);
    }
    let n = POINTER_BENCHES.len() as f64;
    let what = if accuracy { "accuracy" } else { "coverage" };
    let fig = if accuracy { "Figure 8" } else { "Figure 9" };
    let paper_line = if accuracy {
        "paper: ECDP+throttling improves CDP accuracy by 129% and stream accuracy by 28% over stream+CDP."
    } else {
        "paper: ECDP with coordinated throttling slightly reduces average coverage of both prefetchers —\n\
         the price paid for the large accuracy gains."
    };
    format!(
        "## {fig} — prefetcher {what} across configurations\n\n{}\n\
         means: CDP {what} cdp={:.2} ecdp={:.2} cdp+thr={:.2} ecdp+thr={:.2};\n\
         stream {what} cdp={:.2} ecdp={:.2} cdp+thr={:.2} ecdp+thr={:.2}\n{paper_line}\n",
        t.to_markdown(),
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n,
        sums[4] / n,
        sums[5] / n,
        sums[6] / n,
        sums[7] / n,
    )
}

/// Figure 10: distribution of pointer-group usefulness, original CDP vs
/// ECDP (measured on the evaluation run).
pub fn fig10(lab: &Lab) -> String {
    let mut cdp_hist = [0usize; 4];
    let mut ecdp_hist = [0usize; 4];
    for name in POINTER_BENCHES {
        let art = lab.artifacts(name);
        let trace = lab.trace(name, InputSet::Ref);
        let (_, pc) = SystemBuilder::new(SystemKind::StreamCdp)
            .artifacts(&art)
            .run_profiled(&trace)
            .expect("profiled run failed");
        let (_, pe) = SystemBuilder::new(SystemKind::StreamEcdp)
            .artifacts(&art)
            .run_profiled(&trace)
            .expect("profiled run failed");
        for (h, p) in [(&mut cdp_hist, pc), (&mut ecdp_hist, pe)] {
            let hh = p.usefulness_histogram();
            for i in 0..4 {
                h[i] += hh[i];
            }
        }
    }
    let total = |h: &[usize; 4]| h.iter().sum::<usize>().max(1) as f64;
    let (tc, te) = (total(&cdp_hist), total(&ecdp_hist));
    let mut t = Table::new(vec!["usefulness bucket", "original CDP", "ECDP"]);
    let labels = ["0–25%", "25–50%", "50–75%", "75–100%"];
    for i in 0..4 {
        t.row(vec![
            labels[i].to_string(),
            format!("{:.1}%", 100.0 * cdp_hist[i] as f64 / tc),
            format!("{:.1}%", 100.0 * ecdp_hist[i] as f64 / te),
        ]);
    }
    format!(
        "## Figure 10 — pointer-group usefulness distribution (all benchmarks pooled)\n\n{}\n\
         paper: with original CDP only 27% of PGs are 75–100% useful and 46% are 0–25% useful;\n\
         paper: with ECDP 68.5% become 75–100% useful and only 5.2% remain 0–25% useful.\n",
        t.to_markdown()
    )
}

/// Table 7: hardware cost of the proposal.
pub fn tab07() -> String {
    let paper = HardwareCost::paper();
    let ours = HardwareCost::for_config(&MachineConfig::default());
    let cfg = MachineConfig::default();
    format!(
        "## Table 7 — hardware cost\n\n\
         Paper configuration (128 B blocks):\n```\n{paper}\n```\n\
         This reproduction (64 B blocks, positive+negative hint vectors):\n```\n{ours}\n```\n\
         area overhead vs 1 MB L2: {:.3}% (paper: 0.206%);\n\
         cost without prefetched bits: {} bits (paper: 912 bits).\n",
        ours.overhead_vs_l2(&cfg) * 100.0,
        ours.without_prefetched_bits()
    )
}

/// §6.1.6: sensitivity of ECDP to the profiling input set.
pub fn sec616(lab: &Lab) -> String {
    let mut t = Table::new(vec![
        "bench",
        "speedup (train profile)",
        "speedup (ref profile)",
        "delta",
    ]);
    let mut deltas = Vec::new();
    for name in POINTER_BENCHES {
        let base = lab.run(name, SystemKind::StreamOnly).ipc();
        let with_train = lab.run(name, SystemKind::StreamEcdpThrottled).ipc() / base;
        // Re-profile on the ref input (the "same input" experiment).
        let ref_trace = registry::lookup(name)
            .expect("known workload")
            .generate(InputSet::Ref);
        let ref_profile = profile_workload(&ref_trace);
        let ref_art = CompilerArtifacts::from_profile(&ref_profile);
        let with_ref = SystemBuilder::new(SystemKind::StreamEcdpThrottled)
            .artifacts(&ref_art)
            .run(&ref_trace)
            .expect("run failed")
            .stats
            .ipc()
            / base;
        deltas.push((with_ref / with_train - 1.0) * 100.0);
        t.row(vec![
            name.to_string(),
            f3(with_train),
            f3(with_ref),
            format!("{:+.1}%", (with_ref / with_train - 1.0) * 100.0),
        ]);
    }
    let max = deltas.iter().cloned().fold(f64::MIN, f64::max);
    format!(
        "## §6.1.6 — effect of the profiling input set\n\n{}\n\
         largest same-input improvement: {max:+.1}%\n\
         paper: profiling with the evaluation input improves only mst, by 4%; the mechanism\n\
         is insensitive to the profiling input.\n",
        t.to_markdown()
    )
}
