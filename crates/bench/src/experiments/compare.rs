//! Comparison experiments: Figures 11–13 and the §6.3/§7.x studies.

use ecdp::system::SystemKind;

use crate::experiments::{gmean_with_without_health, POINTER_BENCHES};
use crate::table::{f2, pct, Table};
use crate::Lab;

fn comparison_report(
    lab: &Lab,
    title: &str,
    kinds: &[(SystemKind, &str)],
    paper_note: &str,
) -> String {
    let mut headers = vec!["bench".to_string()];
    for (_, l) in kinds {
        headers.push(format!("{l} speedup"));
    }
    for (_, l) in kinds {
        headers.push(format!("{l} ΔBPKI"));
    }
    let mut t = Table::new(headers);
    let mut per_kind: Vec<Vec<(&str, f64)>> = vec![Vec::new(); kinds.len()];
    let mut bw: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
    for name in POINTER_BENCHES {
        let base = lab.run(name, SystemKind::StreamOnly);
        let mut cells = vec![name.to_string()];
        for (k, (kind, _)) in kinds.iter().enumerate() {
            let s = lab.run(name, *kind);
            let r = s.ipc() / base.ipc();
            per_kind[k].push((name, r));
            cells.push(f2(r));
        }
        for (k, (kind, _)) in kinds.iter().enumerate() {
            let s = lab.run(name, *kind);
            let r = s.bpki() / base.bpki().max(1e-9);
            bw[k].push(r);
            cells.push(format!("{:+.0}%", (r - 1.0) * 100.0));
        }
        t.row(cells);
    }
    let mut out = format!("## {title}\n\n{}\n", t.to_markdown());
    for (k, (_, label)) in kinds.iter().enumerate() {
        let (w, wo) = gmean_with_without_health(&per_kind[k]);
        out.push_str(&format!(
            "{label}: gmean speedup {} ({} w/o health), bandwidth ratio {:.2}x\n",
            pct(w),
            pct(wo),
            crate::gmean(&bw[k])
        ));
    }
    out.push_str(paper_note);
    out.push('\n');
    out
}

/// Figure 11: comparison to DBP, Markov, and GHB prefetching.
pub fn fig11(lab: &Lab) -> String {
    comparison_report(
        lab,
        "Figure 11 — comparison to LDS/correlation prefetchers",
        &[
            (SystemKind::StreamDbp, "stream+DBP"),
            (SystemKind::StreamMarkov, "stream+Markov"),
            (SystemKind::GhbAlone, "GHB"),
            (SystemKind::StreamEcdpThrottled, "ours"),
        ],
        "paper: the proposal outperforms DBP by 19%, Markov by 7.2% and GHB by 8.9%\n\
         (12.7%/7.1%/5% w/o health) at 2.11 KB vs 3 KB / 1 MB / 12 KB of storage;\n\
         it uses 22.7%/29% less bandwidth than DBP/Markov and 22% more than GHB.",
    )
}

/// Figure 12: comparison to Zhuang–Lee hardware prefetch filtering.
pub fn fig12(lab: &Lab) -> String {
    comparison_report(
        lab,
        "Figure 12 — comparison to hardware prefetch filtering",
        &[
            (SystemKind::StreamCdp, "CDP"),
            (SystemKind::StreamCdpHwFilter, "CDP+HWfilter"),
            (SystemKind::StreamCdpHwFilterThrottled, "HWfilter+throttle"),
            (SystemKind::StreamEcdpThrottled, "ours"),
        ],
        "paper: the 8 KB hardware filter alone improves performance by only 4.4% (1.5% w/o\n\
         health) and throttling helps it, but ECDP+throttling performs 17% better (14.2% w/o\n\
         health) with 25.8% less bandwidth at a quarter of the storage.",
    )
}

/// Figure 13: coordinated throttling vs feedback-directed prefetching.
pub fn fig13(lab: &Lab) -> String {
    comparison_report(
        lab,
        "Figure 13 — coordinated throttling vs FDP",
        &[
            (SystemKind::StreamEcdpFdp, "ECDP+FDP"),
            (SystemKind::StreamEcdpThrottled, "ECDP+coordinated"),
        ],
        "paper: coordinated throttling outperforms FDP by 5% (consuming 11% more bandwidth)\n\
         because FDP throttles each prefetcher in isolation and cannot see inter-prefetcher\n\
         interference.\n\
         note (reproduction): here FDP comes out slightly ahead - our stand-ins include\n\
         junk expansions that stay above the coverage threshold, where Table 3's case 1\n\
         keeps CDP aggressive while FDP's accuracy-first rule throttles it; the paper's\n\
         footnote 8 assumes such high-coverage/low-accuracy phases are rare.",
    )
}

/// §6.3 (end): ECDP and coordinated throttling are partly orthogonal —
/// adding them to a GHB baseline.
pub fn sec63(lab: &Lab) -> String {
    let mut t = Table::new(vec!["bench", "GHB", "GHB+ECDP", "GHB+ECDP+throttle"]);
    let mut ghb = Vec::new();
    let mut ge = Vec::new();
    let mut get = Vec::new();
    for name in POINTER_BENCHES {
        let base = lab.run(name, SystemKind::GhbAlone).ipc();
        let e = lab.run(name, SystemKind::GhbEcdp).ipc();
        let et = lab.run(name, SystemKind::GhbEcdpThrottled).ipc();
        t.row(vec![
            name.to_string(),
            "1.00".to_string(),
            f2(e / base),
            f2(et / base),
        ]);
        ghb.push((name, 1.0));
        ge.push((name, e / base));
        get.push((name, et / base));
    }
    let (e_w, _) = gmean_with_without_health(&ge);
    let (et_w, _) = gmean_with_without_health(&get);
    format!(
        "## §6.3 — ECDP on top of a GHB baseline (orthogonality)\n\n{}\n\
         GHB+ECDP vs GHB: {}; +throttling: {}\n\
         paper: ECDP adds 4.6% over GHB alone; coordinated throttling adds a further 2%\n\
         with 6.5% bandwidth savings.\n",
        t.to_markdown(),
        pct(e_w),
        pct(et_w)
    )
}

/// §7.1: GRP-style coarse-grained (per-load, all-or-nothing) control.
pub fn sec71(lab: &Lab) -> String {
    per_load_gate_report(
        lab,
        "§7.1 — GRP-style coarse-grained per-load control",
        SystemKind::StreamGrpCdp,
        "paper: controlling CDP at per-load granularity (GRP) yields a negligible 0.4%\n\
         improvement — the fine-grained per-pointer hints are what matters.",
    )
}

/// §7.2: Srinivasan-style per-triggering-load filtering.
pub fn sec72(lab: &Lab) -> String {
    per_load_gate_report(
        lab,
        "§7.2 — per-triggering-load prefetch filtering",
        SystemKind::StreamLoadFilterCdp,
        "paper: disabling prefetches per triggering load eliminates too many useful\n\
         prefetches and yields only ~1%.",
    )
}

fn per_load_gate_report(lab: &Lab, title: &str, kind: SystemKind, paper_note: &str) -> String {
    let mut t = Table::new(vec!["bench", "gate speedup", "ECDP+throttle speedup"]);
    let mut gate = Vec::new();
    let mut ours = Vec::new();
    for name in POINTER_BENCHES {
        let g = lab.speedup(name, kind);
        let o = lab.speedup(name, SystemKind::StreamEcdpThrottled);
        gate.push((name, g));
        ours.push((name, o));
        t.row(vec![name.to_string(), f2(g), f2(o)]);
    }
    let (g_w, g_wo) = gmean_with_without_health(&gate);
    let (o_w, _) = gmean_with_without_health(&ours);
    format!(
        "## {title}\n\n{}\ngate: gmean {} ({} w/o health); ours: {}\n{paper_note}\n",
        t.to_markdown(),
        pct(g_w),
        pct(g_wo),
        pct(o_w)
    )
}

/// Extended comparison: the related prefetchers the paper discusses but
/// does not plot — next-line, per-PC stride, hardware jump pointers
/// (§7.3, 64 KB) and AVD prediction (§7.3).
pub fn extended_prefetchers(lab: &Lab) -> String {
    comparison_report(
        lab,
        "Extended comparison — next-line, stride, jump-pointer and AVD prefetching",
        &[
            (SystemKind::NextLineOnly, "next-line"),
            (SystemKind::StrideOnly, "stride"),
            (SystemKind::StreamJumpPointer, "stream+jump"),
            (SystemKind::StreamAvd, "stream+AVD"),
            (SystemKind::StreamEcdpThrottled, "ours"),
        ],
        "paper (qualitative, §1/§7.3): pointer-storage prefetchers such as jump pointers
         need >=64 KB of state and only help repeat traversals of stable structures; AVD
         prediction is less effective when used for prefetching; and sequential/stride
         prefetchers cannot cover pointer chases at all. ECDP achieves LDS coverage with
         2.11 KB and no pointer storage.",
    )
}

/// §7.4: the PAB most-accurate-prefetcher-only selector.
pub fn sec74(lab: &Lab) -> String {
    let mut t = Table::new(vec!["bench", "PAB speedup", "PAB ΔBPKI", "ours speedup"]);
    let mut pab = Vec::new();
    let mut bw = Vec::new();
    for name in POINTER_BENCHES {
        let base = lab.run(name, SystemKind::StreamOnly);
        let p = lab.run(name, SystemKind::StreamEcdpPab);
        let o = lab.speedup(name, SystemKind::StreamEcdpThrottled);
        pab.push((name, p.ipc() / base.ipc()));
        bw.push(p.bpki() / base.bpki().max(1e-9));
        t.row(vec![
            name.to_string(),
            f2(p.ipc() / base.ipc()),
            format!("{:+.0}%", (p.bpki() / base.bpki().max(1e-9) - 1.0) * 100.0),
            f2(o),
        ]);
    }
    let (w, wo) = gmean_with_without_health(&pab);
    format!(
        "## §7.4 — PAB best-prefetcher-only selection\n\n{}\n\
         PAB gmean: {} ({} w/o health), bandwidth ratio {:.2}x\n\
         paper: PAB *reduces* average performance by 11% (while cutting bandwidth 6.7%)\n\
         because it ignores coverage and cannot throttle — it turns off prefetchers that\n\
         were carrying the performance.\n",
        t.to_markdown(),
        pct(w),
        pct(wo),
        crate::gmean(&bw)
    )
}
