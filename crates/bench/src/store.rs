//! Persistent, content-addressed result store for sweep cells.
//!
//! A [`ResultStore`] is an append-only record log holding one
//! [`RunRecord`] per committed sweep cell, keyed by the same
//! (workload, input, system, machine-config-hash) tuple `--resume` uses.
//! Where the resume manifest is a *whole-file* atomic snapshot rewritten
//! after every cell, the store is a durable log that survives crashes at
//! record granularity and is shared across runs: a cell that ever
//! committed under the current machine config is served from the store
//! without re-simulation, byte-identical stats included.
//!
//! # Wire format
//!
//! The framing follows the `sim_core::snapshot` ECDPSNAP precedent:
//!
//! ```text
//! file   := header record*
//! header := magic "ECDPRSLT" (8B) | version u32 LE | schema u32 LE
//! record := record-magic u32 LE | payload-len u32 LE
//!           | crc32(payload) u32 LE | payload
//! ```
//!
//! The payload is the record's compact manifest JSON (see
//! [`RunRecord::to_json`]). The record magic bytes are all ≥ 0x80, so
//! they can never appear inside the ASCII JSON payload — which is what
//! makes the corruption *resync* scan below reliable.
//!
//! # Recovery
//!
//! [`ResultStore::open`] never fails and never aborts a sweep. Every
//! malformed region of the log maps to a [`RecoveryEvent`]:
//!
//! * a **torn tail** (record frame extending past end-of-file — the
//!   signature of a crash mid-append) is truncated away;
//! * a **corrupt record** (bad magic, CRC mismatch, unparseable payload)
//!   is *quarantined*: the scanner resynchronizes at the next record
//!   magic and the damaged cell simply drops out of the store, so the
//!   supervisor heals it with a cold run that re-appends the result;
//! * a **rejected header** (wrong magic or unknown version) quarantines
//!   the whole file aside as `<name>.quarantined` and starts fresh.
//!
//! Any recovery event triggers a *heal*: the surviving records are
//! rewritten through a temp-file + rename commit, so the next open sees
//! a clean log.
//!
//! # Degradation
//!
//! An append that fails (disk full, permission error, injected
//! [`FaultAction::Enospc`]…) flips the store into **memory-only** mode:
//! results keep accumulating in memory — the sweep loses durability, not
//! progress — and every later append reports
//! [`AppendDisposition::Degraded`] so manifests record the downgrade.
//!
//! # Fault injection
//!
//! [`ResultStore::append`] takes the cell's injected store fault (the
//! `store_fault_for_attempt` lens of [`crate::FaultPlan`]) and routes it
//! through the real write path: torn writes persist half a frame and
//! error, short writes persist half a frame and *succeed* (silent
//! truncation), `enospc` errors without writing, `corrupt-record` flips
//! a committed payload byte on disk. The chaos tests drive recovery with
//! exactly the byte patterns a real crash would leave.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use sim_core::snapshot::crc32;
use sim_core::Json;

use crate::fault::FaultAction;
use crate::manifest::RunRecord;

/// Leading magic of every store file.
pub const STORE_MAGIC: [u8; 8] = *b"ECDPRSLT";

/// Container version: bumped when the framing itself changes.
pub const STORE_VERSION: u32 = 1;

/// Payload schema version: bumped when the record JSON shape changes
/// incompatibly.
pub const STORE_SCHEMA: u32 = 1;

/// Per-record frame magic. Every byte is ≥ 0x80 so the resync scan can
/// never match inside an ASCII JSON payload.
pub const RECORD_MAGIC: u32 = u32::from_le_bytes([0xEC, 0xD9, 0xBE, 0xA7]);

/// Sanity bound on a single payload; anything larger is corruption.
const MAX_PAYLOAD: u32 = 1 << 24;

/// Bytes of file header (magic + version + schema).
const HEADER_LEN: usize = 16;

/// Bytes of record framing before the payload.
const FRAME_LEN: usize = 12;

/// Identity of one committed result: the resume key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Workload name.
    pub workload: String,
    /// Lower-cased input label.
    pub input: String,
    /// System label.
    pub system: String,
    /// Machine-config hash the run used.
    pub config_hash: u64,
}

impl CellKey {
    /// The key of a manifest record.
    pub fn of(r: &RunRecord) -> Self {
        CellKey {
            workload: r.workload.clone(),
            input: r.input.clone(),
            system: r.system.clone(),
            config_hash: r.config_hash,
        }
    }
}

/// One thing startup recovery had to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A trailing partial frame was cut off (crash mid-append).
    TailTruncated {
        /// File offset the log was truncated to.
        offset: u64,
        /// Bytes discarded.
        bytes: u64,
    },
    /// A mid-log record failed validation and was skipped.
    RecordQuarantined {
        /// Offset of the bad region.
        offset: u64,
        /// Bytes skipped before resynchronization.
        bytes: u64,
        /// Human-readable cause (`"crc mismatch"`, `"bad magic"`, …).
        reason: String,
    },
    /// The file header was unusable; the whole file was set aside.
    HeaderRejected {
        /// Human-readable cause.
        reason: String,
    },
}

impl RecoveryEvent {
    /// JSON form for the heal-report artifact.
    pub fn to_json(&self) -> Json {
        match self {
            RecoveryEvent::TailTruncated { offset, bytes } => Json::obj([
                ("event", Json::Str("tail-truncated".to_string())),
                ("offset", Json::Num(*offset as f64)),
                ("bytes", Json::Num(*bytes as f64)),
            ]),
            RecoveryEvent::RecordQuarantined {
                offset,
                bytes,
                reason,
            } => Json::obj([
                ("event", Json::Str("record-quarantined".to_string())),
                ("offset", Json::Num(*offset as f64)),
                ("bytes", Json::Num(*bytes as f64)),
                ("reason", Json::Str(reason.clone())),
            ]),
            RecoveryEvent::HeaderRejected { reason } => Json::obj([
                ("event", Json::Str("header-rejected".to_string())),
                ("reason", Json::Str(reason.clone())),
            ]),
        }
    }
}

/// What [`ResultStore::open`] found and fixed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid records loaded (after later-wins dedup this may exceed the
    /// store's entry count).
    pub records_loaded: usize,
    /// Everything recovery had to repair, in file order.
    pub events: Vec<RecoveryEvent>,
    /// True when the log was rewritten (temp + rename) after repairs.
    pub healed: bool,
}

impl RecoveryReport {
    /// Number of quarantined mid-log records.
    pub fn quarantined(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, RecoveryEvent::RecordQuarantined { .. }))
            .count()
    }

    /// True when the log needed no repair at all.
    pub fn is_clean(&self) -> bool {
        self.events.is_empty()
    }

    /// JSON form for the heal-report artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("records_loaded", Json::Num(self.records_loaded as f64)),
            ("quarantined", Json::Num(self.quarantined() as f64)),
            ("healed", Json::Bool(self.healed)),
            (
                "events",
                Json::Arr(self.events.iter().map(RecoveryEvent::to_json).collect()),
            ),
        ])
    }
}

/// How an append landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppendDisposition {
    /// The record was framed and flushed to the log (as far as the
    /// process can tell — an injected short write also reports this).
    Appended,
    /// The store is in memory-only mode; the reason is the first write
    /// failure that degraded it.
    Degraded(String),
}

/// What [`ResultStore::compact`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Live records written to the compacted log.
    pub live_records: usize,
    /// File size before, in bytes.
    pub bytes_before: u64,
    /// File size after, in bytes.
    pub bytes_after: u64,
}

struct StoreInner {
    entries: HashMap<CellKey, RunRecord>,
    recovery: RecoveryReport,
    /// `Some(reason)` once the store has fallen back to memory-only.
    degraded: Option<String>,
}

/// A crash-safe on-disk cache of committed sweep results.
///
/// Shared by reference across sweep workers; all state sits behind one
/// mutex (appends are rare — one per simulated cell).
pub struct ResultStore {
    path: PathBuf,
    inner: Mutex<StoreInner>,
}

fn frame(record: &RunRecord) -> Vec<u8> {
    let payload = record.to_json().to_string_compact().into_bytes();
    let mut buf = Vec::with_capacity(FRAME_LEN + payload.len());
    buf.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
    buf
}

fn header() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&STORE_MAGIC);
    h[8..12].copy_from_slice(&STORE_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&STORE_SCHEMA.to_le_bytes());
    h
}

fn u32_at(bytes: &[u8], off: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[off..off + 4]);
    u32::from_le_bytes(b)
}

/// Scans `bytes` from `from` for the next record magic; `None` when the
/// rest of the buffer has no plausible frame start.
fn resync(bytes: &[u8], from: usize) -> Option<usize> {
    let magic = RECORD_MAGIC.to_le_bytes();
    (from..bytes.len().saturating_sub(3)).find(|&i| bytes[i..i + 4] == magic)
}

/// Parses the log body after a valid header. Returns the surviving
/// records in file order and the repair events.
fn scan_records(bytes: &[u8]) -> (Vec<RunRecord>, Vec<RecoveryEvent>) {
    let mut records = Vec::new();
    let mut events = Vec::new();
    let mut off = HEADER_LEN;
    while off < bytes.len() {
        // A frame header that does not fit is a torn tail.
        if bytes.len() - off < FRAME_LEN {
            events.push(RecoveryEvent::TailTruncated {
                offset: off as u64,
                bytes: (bytes.len() - off) as u64,
            });
            break;
        }
        let reason = if u32_at(bytes, off) != RECORD_MAGIC {
            Some("bad record magic")
        } else if u32_at(bytes, off + 4) > MAX_PAYLOAD {
            Some("implausible payload length")
        } else {
            None
        };
        if let Some(reason) = reason {
            match resync(bytes, off + 1) {
                Some(next) => {
                    events.push(RecoveryEvent::RecordQuarantined {
                        offset: off as u64,
                        bytes: (next - off) as u64,
                        reason: reason.to_string(),
                    });
                    off = next;
                    continue;
                }
                None => {
                    events.push(RecoveryEvent::TailTruncated {
                        offset: off as u64,
                        bytes: (bytes.len() - off) as u64,
                    });
                    break;
                }
            }
        }
        let len = u32_at(bytes, off + 4) as usize;
        let end = off + FRAME_LEN + len;
        if end > bytes.len() {
            // The payload runs past EOF. If a later frame start exists the
            // record was short-written and real data follows — quarantine
            // and resync; otherwise it is a genuine torn tail.
            match resync(bytes, off + 1) {
                Some(next) => {
                    events.push(RecoveryEvent::RecordQuarantined {
                        offset: off as u64,
                        bytes: (next - off) as u64,
                        reason: "truncated payload".to_string(),
                    });
                    off = next;
                }
                None => {
                    events.push(RecoveryEvent::TailTruncated {
                        offset: off as u64,
                        bytes: (bytes.len() - off) as u64,
                    });
                    break;
                }
            }
            continue;
        }
        let payload = &bytes[off + FRAME_LEN..end];
        let valid = crc32(payload) == u32_at(bytes, off + 8);
        let parsed = if valid {
            std::str::from_utf8(payload)
                .ok()
                .and_then(|t| Json::parse(t).ok())
                .as_ref()
                .and_then(RunRecord::from_json)
        } else {
            None
        };
        match parsed {
            Some(r) => {
                records.push(r);
                off = end;
            }
            None => {
                let reason = if valid {
                    "unparseable payload"
                } else {
                    "crc mismatch"
                };
                let next = resync(bytes, off + 1).unwrap_or(bytes.len());
                events.push(RecoveryEvent::RecordQuarantined {
                    offset: off as u64,
                    bytes: (next - off) as u64,
                    reason: reason.to_string(),
                });
                off = next;
            }
        }
    }
    (records, events)
}

/// Atomically replaces `path` with a fresh log of `records`.
fn rewrite(path: &Path, records: &[&RunRecord]) -> std::io::Result<u64> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let mut bytes: Vec<u8> = header().to_vec();
    for r in records {
        bytes.extend_from_slice(&frame(r));
    }
    let written = bytes.len() as u64;
    std::fs::write(&tmp, &bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(written),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

impl ResultStore {
    /// Opens (or prepares to create) the store at `path`, running
    /// startup recovery. Never fails: an unreadable or unusable file
    /// degrades the store instead of aborting the sweep.
    pub fn open(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let mut recovery = RecoveryReport::default();
        let mut degraded = None;
        let mut entries = HashMap::new();

        let bytes = match std::fs::read(&path) {
            Ok(b) => Some(b),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => {
                degraded = Some(format!("unreadable store: {e}"));
                None
            }
        };
        if let Some(bytes) = bytes {
            let header_ok = bytes.len() >= HEADER_LEN
                && bytes[..8] == STORE_MAGIC
                && u32_at(&bytes, 8) == STORE_VERSION
                && u32_at(&bytes, 12) == STORE_SCHEMA;
            if header_ok {
                let (records, events) = scan_records(&bytes);
                recovery.records_loaded = records.len();
                recovery.events = events;
                for r in records {
                    // Later records supersede earlier ones (append-only
                    // log: re-appends after a heal come last).
                    entries.insert(CellKey::of(&r), r);
                }
            } else if bytes.is_empty() {
                // An empty file is a store that was opened but never
                // appended to; treat as fresh.
            } else {
                let reason = if bytes.len() < HEADER_LEN || bytes[..8] != STORE_MAGIC {
                    "bad file magic".to_string()
                } else {
                    format!(
                        "unknown version/schema {}/{}",
                        u32_at(&bytes, 8),
                        u32_at(&bytes, 12)
                    )
                };
                recovery
                    .events
                    .push(RecoveryEvent::HeaderRejected { reason });
                // Preserve the evidence, then start fresh.
                let _ = std::fs::rename(&path, path.with_extension("quarantined"));
            }
        }
        if !recovery.is_clean() {
            let live: Vec<&RunRecord> = entries.values().collect();
            match rewrite(&path, &live) {
                Ok(_) => recovery.healed = true,
                Err(e) => degraded = Some(format!("heal rewrite failed: {e}")),
            }
        }
        ResultStore {
            path,
            inner: Mutex::new(StoreInner {
                entries,
                recovery,
                degraded,
            }),
        }
    }

    /// The store path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The startup-recovery report.
    pub fn recovery(&self) -> RecoveryReport {
        self.lock().recovery.clone()
    }

    /// `Some(reason)` when the store has fallen back to memory-only.
    pub fn degraded(&self) -> Option<String> {
        self.lock().degraded.clone()
    }

    /// Number of distinct committed cells.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// True when no cell has ever committed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The committed record for a cell, if any.
    pub fn get(
        &self,
        workload: &str,
        input: &str,
        system: &str,
        config_hash: u64,
    ) -> Option<RunRecord> {
        let key = CellKey {
            workload: workload.to_string(),
            input: input.to_string(),
            system: system.to_string(),
            config_hash,
        };
        self.lock().entries.get(&key).cloned()
    }

    /// Commits one result: memory first (so degradation never loses the
    /// run), then a framed append to the log, with `fault` routed
    /// through the write path (see the module docs).
    pub fn append(&self, record: &RunRecord, fault: Option<FaultAction>) -> AppendDisposition {
        let mut inner = self.lock();
        inner.entries.insert(CellKey::of(record), record.clone());
        if let Some(reason) = &inner.degraded {
            return AppendDisposition::Degraded(reason.clone());
        }
        match self.append_to_log(record, fault) {
            Ok(()) => AppendDisposition::Appended,
            Err(e) => {
                let reason = e.to_string();
                eprintln!("[store] append failed ({reason}); continuing in memory-only mode");
                inner.degraded = Some(reason.clone());
                AppendDisposition::Degraded(reason)
            }
        }
    }

    /// The durable half of [`ResultStore::append`]. Called with the
    /// store mutex held, which serializes the read-modify-write of the
    /// injected `corrupt-record` fault too.
    fn append_to_log(&self, record: &RunRecord, fault: Option<FaultAction>) -> std::io::Result<()> {
        if let Some(FaultAction::Enospc) = fault {
            return Err(std::io::Error::other(
                "injected: no space left on device (ENOSPC)",
            ));
        }
        if let Some(FaultAction::Stall(ms)) = fault {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        if let Some(parent) = self.path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        if file.metadata()?.len() == 0 {
            file.write_all(&header())?;
        }
        let buf = frame(record);
        match fault {
            Some(FaultAction::TornWrite) => {
                // Crash mid-write(2): half a frame lands, the append
                // errors. Startup recovery truncates the torn tail.
                file.write_all(&buf[..buf.len() / 2])?;
                file.flush()?;
                return Err(std::io::Error::other("injected: torn write"));
            }
            Some(FaultAction::ShortWrite) => {
                // Silent truncation: half a frame lands and the append
                // *succeeds*. Only the per-record CRC catches this.
                file.write_all(&buf[..buf.len() / 2])?;
                file.flush()?;
                return Ok(());
            }
            _ => {}
        }
        file.write_all(&buf)?;
        file.flush()?;
        if let Some(FaultAction::CorruptRecord) = fault {
            // Flip one committed payload byte in place; the next open's
            // CRC check quarantines the record.
            drop(file);
            let mut bytes = std::fs::read(&self.path)?;
            let mid = bytes.len() - buf.len() + FRAME_LEN + (buf.len() - FRAME_LEN) / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&self.path, &bytes)?;
        }
        Ok(())
    }

    /// Offline compaction: rewrites the log (temp + rename) with exactly
    /// one frame per live cell, dropping superseded and healed-over
    /// regions. A no-op in memory-only mode.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the in-memory state is unaffected.
    pub fn compact(&self) -> std::io::Result<CompactStats> {
        let inner = self.lock();
        if inner.degraded.is_some() {
            return Ok(CompactStats::default());
        }
        let bytes_before = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        let mut live: Vec<(&CellKey, &RunRecord)> = inner.entries.iter().collect();
        live.sort_by(|(a, _), (b, _)| {
            (&a.workload, &a.input, &a.system).cmp(&(&b.workload, &b.input, &b.system))
        });
        let records: Vec<&RunRecord> = live.into_iter().map(|(_, r)| r).collect();
        let bytes_after = rewrite(&self.path, &records)?;
        Ok(CompactStats {
            live_records: records.len(),
            bytes_before,
            bytes_after,
        })
    }

    /// Status summary (recovery report, entry count, degradation) for
    /// the quarantine/heal report artifact CI uploads.
    pub fn status_json(&self) -> Json {
        let inner = self.lock();
        Json::obj([
            ("path", Json::Str(self.path.to_string_lossy().into_owned())),
            ("version", Json::Num(f64::from(STORE_VERSION))),
            ("schema", Json::Num(f64::from(STORE_SCHEMA))),
            ("entries", Json::Num(inner.entries.len() as f64)),
            (
                "degraded",
                match &inner.degraded {
                    Some(reason) => Json::Str(reason.clone()),
                    None => Json::Bool(false),
                },
            ),
            ("recovery", inner.recovery.to_json()),
        ])
    }

    /// Where [`ResultStore::write_report`] puts the status artifact:
    /// `<store path>.report.json` next to the log.
    pub fn report_path(&self) -> PathBuf {
        let mut name = self
            .path
            .file_name()
            .map_or_else(|| "store".into(), std::ffi::OsStr::to_os_string);
        name.push(".report.json");
        self.path.with_file_name(name)
    }

    /// Writes [`ResultStore::status_json`] to [`ResultStore::report_path`]
    /// and returns the path. This is the quarantine/heal artifact that
    /// `run_all`, the `sweepd` health endpoint and CI all share — callers
    /// never rebuild the report by hand.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_report(&self) -> std::io::Result<PathBuf> {
        let path = self.report_path();
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&path, self.status_json().to_string_pretty())?;
        Ok(path)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("ResultStore")
            .field("path", &self.path)
            .field("entries", &inner.entries.len())
            .field("degraded", &inner.degraded)
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ecdp::system::SystemKind;
    use sim_core::RunStats;
    use workloads::InputSet;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ecdp-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(workload: &str, wall_ms: f64) -> RunRecord {
        let stats = RunStats {
            cycles: 1000 + workload.len() as u64,
            retired_instructions: 17,
            ..RunStats::default()
        };
        RunRecord::new(
            workload,
            InputSet::Test,
            SystemKind::StreamOnly,
            &stats,
            wall_ms,
        )
    }

    #[test]
    fn roundtrips_across_open() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("results.store");
        let store = ResultStore::open(&path);
        assert!(store.is_empty());
        assert_eq!(
            store.append(&record("mst", 1.0), None),
            AppendDisposition::Appended
        );
        assert_eq!(
            store.append(&record("health", 2.0), None),
            AppendDisposition::Appended
        );
        drop(store);

        let store = ResultStore::open(&path);
        assert!(store.recovery().is_clean());
        assert_eq!(store.len(), 2);
        let r = store.record_for_test("mst");
        assert_eq!(r.stats.cycles, 1003);
        let _ = std::fs::remove_dir_all(&dir);
    }

    impl ResultStore {
        fn record_for_test(&self, workload: &str) -> RunRecord {
            self.get(
                workload,
                "test",
                SystemKind::StreamOnly.label(),
                crate::manifest::config_hash(),
            )
            .unwrap()
        }
    }

    #[test]
    fn later_records_supersede_earlier_ones() {
        let dir = temp_dir("supersede");
        let path = dir.join("results.store");
        let store = ResultStore::open(&path);
        store.append(&record("mst", 1.0), None);
        store.append(&record("mst", 9.0), None);
        assert_eq!(store.len(), 1);
        drop(store);
        let store = ResultStore::open(&path);
        assert_eq!(store.len(), 1);
        assert!((store.record_for_test("mst").wall_ms - 9.0).abs() < 1e-9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_healed() {
        let dir = temp_dir("torn");
        let path = dir.join("results.store");
        let store = ResultStore::open(&path);
        store.append(&record("mst", 1.0), None);
        store.append(&record("health", 2.0), None);
        drop(store);
        // Crash mid-append: chop the last record in half.
        let bytes = std::fs::read(&path).unwrap();
        let cut = bytes.len() - 20;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let store = ResultStore::open(&path);
        let rec = store.recovery();
        assert_eq!(rec.records_loaded, 1);
        assert!(rec.healed);
        assert!(matches!(
            rec.events[..],
            [RecoveryEvent::TailTruncated { .. }]
        ));
        assert!(store
            .get("health", "test", "stream", crate::manifest::config_hash())
            .is_none());
        drop(store);
        // The heal rewrote a clean log.
        assert!(ResultStore::open(&path).recovery().is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_quarantines_one_record() {
        let dir = temp_dir("midlog");
        let path = dir.join("results.store");
        let store = ResultStore::open(&path);
        store.append(&record("mst", 1.0), None);
        let first_end = std::fs::metadata(&path).unwrap().len() as usize;
        store.append(&record("health", 2.0), None);
        drop(store);
        // Flip a payload byte of the *first* record.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[(HEADER_LEN + FRAME_LEN + first_end) / 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let store = ResultStore::open(&path);
        let rec = store.recovery();
        assert_eq!(rec.records_loaded, 1, "the second record survives");
        assert_eq!(rec.quarantined(), 1);
        assert!(rec.healed);
        assert_eq!(store.record_for_test("health").wall_ms, 2.0);
        assert!(store
            .get("mst", "test", "stream", crate::manifest::config_hash())
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_header_quarantines_the_whole_file() {
        let dir = temp_dir("header");
        let path = dir.join("results.store");
        std::fs::write(&path, b"not a store file at all").unwrap();
        let store = ResultStore::open(&path);
        assert!(store.is_empty());
        assert!(matches!(
            store.recovery().events[..],
            [RecoveryEvent::HeaderRejected { .. }]
        ));
        assert!(path.with_extension("quarantined").exists(), "evidence kept");
        // The store is usable (healed to a fresh log).
        assert_eq!(
            store.append(&record("mst", 1.0), None),
            AppendDisposition::Appended
        );
        drop(store);
        assert_eq!(ResultStore::open(&path).len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_faults_drive_the_real_recovery_paths() {
        let dir = temp_dir("faults");
        let path = dir.join("results.store");
        let store = ResultStore::open(&path);

        // Short write: reports success, silently truncated on disk.
        assert_eq!(
            store.append(&record("mst", 1.0), Some(FaultAction::ShortWrite)),
            AppendDisposition::Appended
        );
        // A later good append lands after the short frame.
        assert_eq!(
            store.append(&record("health", 2.0), None),
            AppendDisposition::Appended
        );
        // Corrupt record: committed then damaged in place.
        assert_eq!(
            store.append(&record("em3d", 3.0), Some(FaultAction::CorruptRecord)),
            AppendDisposition::Appended
        );
        drop(store);

        let store = ResultStore::open(&path);
        let rec = store.recovery();
        assert_eq!(rec.records_loaded, 1, "only the clean record survives");
        assert!(
            rec.quarantined() >= 2,
            "short + corrupt quarantined: {rec:?}"
        );
        assert!(rec.healed);
        assert_eq!(store.record_for_test("health").wall_ms, 2.0);

        // Torn write: persists a partial frame and errors; the store
        // degrades to memory-only but keeps serving the result.
        let d = store.append(&record("bh", 4.0), Some(FaultAction::TornWrite));
        assert!(matches!(d, AppendDisposition::Degraded(_)), "{d:?}");
        assert!(store.degraded().is_some());
        assert!(
            store.record_for_test("bh").wall_ms == 4.0,
            "memory keeps it"
        );
        // Later appends stay memory-only.
        assert!(matches!(
            store.append(&record("tsp", 5.0), None),
            AppendDisposition::Degraded(_)
        ));
        drop(store);
        // Next open truncates the torn tail; bh/tsp were never durable.
        let store = ResultStore::open(&path);
        assert!(store.recovery().healed);
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_degrades_without_touching_the_log() {
        let dir = temp_dir("enospc");
        let path = dir.join("results.store");
        let store = ResultStore::open(&path);
        store.append(&record("mst", 1.0), None);
        let len_before = std::fs::metadata(&path).unwrap().len();
        let d = store.append(&record("health", 2.0), Some(FaultAction::Enospc));
        assert!(
            matches!(d, AppendDisposition::Degraded(ref r) if r.contains("ENOSPC")),
            "{d:?}"
        );
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len_before);
        assert_eq!(store.len(), 2, "memory still has both");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_superseded_frames() {
        let dir = temp_dir("compact");
        let path = dir.join("results.store");
        let store = ResultStore::open(&path);
        for i in 0..5 {
            store.append(&record("mst", f64::from(i)), None);
        }
        store.append(&record("health", 9.0), None);
        let stats = store.compact().unwrap();
        assert_eq!(stats.live_records, 2);
        assert!(stats.bytes_after < stats.bytes_before, "{stats:?}");
        drop(store);
        let store = ResultStore::open(&path);
        assert!(store.recovery().is_clean());
        assert_eq!(store.len(), 2);
        assert!(
            (store.record_for_test("mst").wall_ms - 4.0).abs() < 1e-9,
            "latest wins"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stall_fault_delays_but_commits() {
        let dir = temp_dir("stall");
        let path = dir.join("results.store");
        let store = ResultStore::open(&path);
        let t0 = std::time::Instant::now();
        assert_eq!(
            store.append(&record("mst", 1.0), Some(FaultAction::Stall(30))),
            AppendDisposition::Appended
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(30));
        drop(store);
        assert_eq!(ResultStore::open(&path).len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_json_reports_recovery_and_degradation() {
        let dir = temp_dir("status");
        let path = dir.join("results.store");
        let store = ResultStore::open(&path);
        store.append(&record("mst", 1.0), None);
        let j = store.status_json();
        assert_eq!(j.get("entries").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("degraded"), Some(&Json::Bool(false)));
        assert!(j.get("recovery").and_then(|r| r.get("healed")).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
