//! Regenerates Figure 9 of the paper. Run with `cargo run --release -p bench --bin fig09_coverage`.
//! Writes the run manifest to `target/lab/fig09_coverage.json`.
fn main() {
    bench::run_report("fig09_coverage", bench::experiments::single::fig09);
}
