//! Regenerates Figure 9 of the paper. Run with `cargo run --release -p bench --bin fig09_coverage`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::single::fig09(&mut lab));
}
