//! Regenerates Figure 8 of the paper. Run with `cargo run --release -p bench --bin fig08_accuracy`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::single::fig08(&mut lab));
}
