//! Regenerates Figure 8 of the paper. Run with `cargo run --release -p bench --bin fig08_accuracy`.
//! Writes the run manifest to `target/lab/fig08_accuracy.json`.
fn main() {
    bench::run_report("fig08_accuracy", bench::experiments::single::fig08);
}
