//! Regenerates Section 6.7 of the paper. Run with `cargo run --release -p bench --bin sec67_nonpointer`.
//! Writes the run manifest to `target/lab/sec67_nonpointer.json`.
fn main() {
    bench::run_report("sec67_nonpointer", bench::experiments::misc::sec67);
}
