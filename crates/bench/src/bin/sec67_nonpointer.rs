//! Regenerates the non-pointer study (Section 6.7) of the paper. Run with `cargo run --release -p bench --bin sec67_nonpointer`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::misc::sec67(&mut lab));
}
