//! Regenerates Figure 7 of the paper. Run with `cargo run --release -p bench --bin fig07_main_results`.
//! Writes the run manifest to `target/lab/fig07_main_results.json`.
fn main() {
    bench::run_report(
        "fig07_main_results",
        bench::experiments::single::fig07_tab06,
    );
}
