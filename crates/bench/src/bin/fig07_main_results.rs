//! Regenerates Figure 7 and Table 6 of the paper. Run with `cargo run --release -p bench --bin fig07_main_results`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::single::fig07_tab06(&mut lab));
}
