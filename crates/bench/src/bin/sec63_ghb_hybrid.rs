//! Regenerates the GHB-hybrid study (Section 6.3) of the paper. Run with `cargo run --release -p bench --bin sec63_ghb_hybrid`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::compare::sec63(&mut lab));
}
