//! Regenerates Section 6.3 of the paper. Run with `cargo run --release -p bench --bin sec63_ghb_hybrid`.
//! Writes the run manifest to `target/lab/sec63_ghb_hybrid.json`.
fn main() {
    bench::run_report("sec63_ghb_hybrid", bench::experiments::compare::sec63);
}
