//! Regenerates Figure 12 of the paper. Run with `cargo run --release -p bench --bin fig12_hw_filter`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::compare::fig12(&mut lab));
}
