//! Regenerates Figure 12 of the paper. Run with `cargo run --release -p bench --bin fig12_hw_filter`.
//! Writes the run manifest to `target/lab/fig12_hw_filter.json`.
fn main() {
    bench::run_report("fig12_hw_filter", bench::experiments::compare::fig12);
}
