//! Regenerates Figure 4 of the paper. Run with `cargo run --release -p bench --bin fig04_pg_breakdown`.
//! Writes the run manifest to `target/lab/fig04_pg_breakdown.json`.
fn main() {
    bench::run_report("fig04_pg_breakdown", bench::experiments::single::fig04);
}
