//! Regenerates Figure 4 of the paper. Run with `cargo run --release -p bench --bin fig04_pg_breakdown`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::single::fig04(&mut lab));
}
