//! Regenerates Figure 15 of the paper. Run with `cargo run --release -p bench --bin fig15_quadcore`.
//! Writes the run manifest to `target/lab/fig15_quadcore.json`.
fn main() {
    bench::run_report("fig15_quadcore", bench::experiments::multi::fig15);
}
