//! Regenerates Figure 15 of the paper. Run with `cargo run --release -p bench --bin fig15_quadcore`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::multi::fig15(&mut lab));
}
