//! Regenerates Figure 2 and Table 1 of the paper. Run with `cargo run --release -p bench --bin fig02_cdp_problem`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::single::fig02_tab01(&mut lab));
}
