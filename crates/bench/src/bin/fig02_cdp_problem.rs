//! Regenerates Figure 2 of the paper. Run with `cargo run --release -p bench --bin fig02_cdp_problem`.
//! Writes the run manifest to `target/lab/fig02_cdp_problem.json`.
fn main() {
    bench::run_report("fig02_cdp_problem", bench::experiments::single::fig02_tab01);
}
