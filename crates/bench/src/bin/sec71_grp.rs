//! Regenerates the GRP comparison (Section 7.1) of the paper. Run with `cargo run --release -p bench --bin sec71_grp`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::compare::sec71(&mut lab));
}
