//! Regenerates Section 7.1 of the paper. Run with `cargo run --release -p bench --bin sec71_grp`.
//! Writes the run manifest to `target/lab/sec71_grp.json`.
fn main() {
    bench::run_report("sec71_grp", bench::experiments::compare::sec71);
}
