//! `ecdp-sim` — a small command-line front end for the simulator.
//!
//! ```text
//! cargo run --release -p bench --bin ecdp_sim -- list
//! cargo run --release -p bench --bin ecdp_sim -- profile mst
//! cargo run --release -p bench --bin ecdp_sim -- run mst stream+ecdp+throttle
//! cargo run --release -p bench --bin ecdp_sim -- compare mst
//! ```

use ecdp::system::SystemKind;

const ALL_KINDS: [SystemKind; 22] = [
    SystemKind::NoPrefetch,
    SystemKind::StreamOnly,
    SystemKind::OracleLds,
    SystemKind::StreamCdp,
    SystemKind::StreamEcdp,
    SystemKind::StreamCdpThrottled,
    SystemKind::StreamEcdpThrottled,
    SystemKind::StreamDbp,
    SystemKind::StreamMarkov,
    SystemKind::GhbAlone,
    SystemKind::GhbEcdp,
    SystemKind::GhbEcdpThrottled,
    SystemKind::StreamCdpHwFilter,
    SystemKind::StreamCdpHwFilterThrottled,
    SystemKind::StreamEcdpFdp,
    SystemKind::StreamEcdpPab,
    SystemKind::StreamGrpCdp,
    SystemKind::StreamLoadFilterCdp,
    SystemKind::NextLineOnly,
    SystemKind::StrideOnly,
    SystemKind::StreamJumpPointer,
    SystemKind::StreamAvd,
];

fn kind_by_label(label: &str) -> Option<SystemKind> {
    ALL_KINDS.iter().copied().find(|k| k.label() == label)
}

fn usage() -> ! {
    eprintln!(
        "usage: ecdp_sim <command>\n\
         \n\
         commands:\n\
         \x20 list                      list workloads and system labels\n\
         \x20 profile <workload>        run the profiling pass; print PG summary\n\
         \x20 run <workload> <system>   simulate one workload on one system\n\
         \x20 compare <workload>        simulate the main systems side by side"
    );
    std::process::exit(2);
}

fn print_stats(label: &str, s: &sim_core::RunStats, base_ipc: Option<f64>) {
    let speed = base_ipc.map_or(String::from("      -"), |b| {
        format!("{:>6.2}x", s.ipc() / b)
    });
    println!(
        "{label:<30} IPC {:>7.3}  {speed}  BPKI {:>7.1}  L2-miss {:>8}",
        s.ipc(),
        s.bpki(),
        s.l2_demand_misses
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let lab = bench::Lab::new();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("pointer-intensive workloads:");
            for w in workloads::registry::suite(workloads::registry::SUITE_POINTER) {
                println!("  {:<12} {}", w.name(), w.describe());
            }
            println!("non-pointer workloads:");
            for w in workloads::registry::suite(workloads::registry::SUITE_STREAMING) {
                println!("  {:<12} {}", w.name(), w.describe());
            }
            println!("systems:");
            for k in ALL_KINDS {
                println!("  {}", k.label());
            }
        }
        Some("profile") => {
            let name = args.get(1).cloned().unwrap_or_else(|| usage());
            let profile = lab.profile(&name).clone();
            let (b, h) = profile.counts();
            let hist = profile.usefulness_histogram();
            println!("workload {name}: {b} beneficial / {h} harmful pointer groups");
            println!("usefulness histogram [0-25 | 25-50 | 50-75 | 75-100]: {hist:?}");
            let hints = profile.hint_table();
            println!("hint vectors for {} static loads:", hints.len());
            let mut rows: Vec<_> = hints.iter().collect();
            rows.sort_by_key(|(pc, _)| **pc);
            for (pc, v) in rows {
                println!(
                    "  pc {pc:#07x}: pos {:016b} neg {:016b}",
                    v.positive, v.negative
                );
            }
        }
        Some("run") => {
            let name = args.get(1).cloned().unwrap_or_else(|| usage());
            let system = args.get(2).cloned().unwrap_or_else(|| usage());
            let Some(kind) = kind_by_label(&system) else {
                eprintln!("unknown system `{system}`; see `ecdp_sim list`");
                std::process::exit(2);
            };
            let s = lab.run(&name, kind);
            print_stats(kind.label(), &s, None);
            for (i, p) in s.prefetchers.iter().enumerate() {
                println!(
                    "  {:<10} issued {:>9} used {:>9} late {:>8} acc {:>5.1}% cov {:>5.1}%",
                    p.name,
                    p.issued,
                    p.used,
                    p.late,
                    s.prefetch_accuracy(i) * 100.0,
                    s.prefetch_coverage(i) * 100.0
                );
            }
        }
        Some("compare") => {
            let name = args.get(1).cloned().unwrap_or_else(|| usage());
            let base = lab.run(&name, SystemKind::StreamOnly).ipc();
            for kind in [
                SystemKind::NoPrefetch,
                SystemKind::StreamOnly,
                SystemKind::StreamCdp,
                SystemKind::StreamEcdp,
                SystemKind::StreamEcdpThrottled,
                SystemKind::GhbAlone,
                SystemKind::StreamMarkov,
                SystemKind::OracleLds,
            ] {
                let s = lab.run(&name, kind);
                print_stats(kind.label(), &s, Some(base));
            }
        }
        _ => usage(),
    }
}
