//! Demonstrates coordinated throttling across program phases: a synthetic
//! workload alternates between a streaming phase (the stream prefetcher's
//! regime) and a pointer-chase phase (CDP's regime), and the Table 3
//! heuristics hand the memory system back and forth between the two
//! prefetchers. Renders the per-interval aggressiveness trajectories from
//! the observability layer's interval time series and summarises which
//! Table 3 cases drove the transitions.
//!
//! ```text
//! cargo run --release -p bench --bin phase_dynamics
//! ```

use ecdp::profile::profile_workload;
use ecdp::system::{CompilerArtifacts, SystemBuilder, SystemKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_core::{Aggressiveness, ObsConfig, ThrottleDecision, Trace, TraceBuilder};
use sim_mem::{layout, Heap, SimMemory};

/// Builds a trace alternating `phases` times between an array sweep and a
/// scrambled list chase.
fn phased_trace(seed: u64, phases: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tb = TraceBuilder::new(SimMemory::new());
    let mut heap = Heap::new(layout::HEAP_BASE, layout::HEAP_LIMIT);

    let sweep_words = 600_000u32;
    let mut array = 0;
    let mut head = 0;
    let chase_len = 60_000usize;
    tb.setup(|mem| {
        array = heap.alloc(sweep_words * 4).expect("heap space");
        for i in 0..sweep_words {
            mem.write_u32(array + i * 4, rng.gen::<u32>() & 0xFFFF);
        }
        // Scrambled 16-byte-node list: four next-pointers per block.
        use rand::seq::SliceRandom;
        let mut nodes: Vec<u32> = (0..chase_len)
            .map(|_| heap.alloc(16).expect("heap space"))
            .collect();
        nodes.shuffle(&mut rng);
        for (i, &n) in nodes.iter().enumerate() {
            mem.write_u32(n, rng.gen::<u32>() & 0xFFFF);
            let next = if i + 1 < nodes.len() {
                nodes[i + 1]
            } else {
                nodes[0]
            };
            mem.write_u32(n + 12, next);
        }
        head = nodes[0];
    });

    for phase in 0..phases {
        if phase % 2 == 0 {
            // Streaming phase.
            for i in 0..sweep_words / 2 {
                let _ = tb.load(0x100, array + i * 8, None);
                tb.compute(2);
            }
        } else {
            // Pointer-chase phase.
            let mut cur = head;
            let mut dep = None;
            for _ in 0..chase_len {
                let (_, vid) = tb.load(0x200, cur, dep);
                tb.compute(4);
                let (next, nid) = tb.load(0x204, cur + 12, Some(vid));
                cur = next;
                dep = Some(nid);
            }
        }
    }
    tb.finish()
}

fn render(levels: &[Aggressiveness]) -> String {
    levels
        .iter()
        .map(|l| char::from(b'1' + l.index() as u8))
        .collect()
}

fn main() {
    println!("profiling the phased workload ...");
    let train = phased_trace(1, 4);
    let artifacts = CompilerArtifacts::from_profile(&profile_workload(&train));
    let reference = phased_trace(2, 6);

    let run = SystemBuilder::new(SystemKind::StreamEcdpThrottled)
        .artifacts(&artifacts)
        .observe(ObsConfig {
            timeseries: true,
            decisions: true,
            ..ObsConfig::default()
        })
        .run(&reference)
        .expect("run failed");
    let trace = run.trace.expect("observability was enabled");

    println!(
        "run complete: IPC {:.3}, {} sampling intervals\n",
        run.stats.ipc(),
        trace.samples.len()
    );
    println!("aggressiveness per interval (1 = very conservative .. 4 = aggressive):");
    println!("  stream: {}", render(&trace.levels(0)));
    println!("  ecdp  : {}", render(&trace.levels(1)));

    // Which Table 3 case fired, per prefetcher, across the run.
    let names = ["stream", "ecdp"];
    println!("\nTable 3 case counts (case -> decisions):");
    for (pf, name) in names.iter().enumerate() {
        let mut cases = [0usize; 6];
        let mut ups = 0usize;
        let mut downs = 0usize;
        for t in trace
            .transitions
            .iter()
            .filter(|t| t.prefetcher == pf as u8)
        {
            cases[usize::from(t.case.min(5))] += 1;
            match t.decision {
                ThrottleDecision::Up => ups += 1,
                ThrottleDecision::Down => downs += 1,
                ThrottleDecision::Keep => {}
            }
        }
        println!(
            "  {name}: c1={} c2={} c3={} c4={} c5={} (up {ups}, down {downs})",
            cases[1], cases[2], cases[3], cases[4], cases[5]
        );
    }

    println!(
        "\nECDP is throttled down during the streaming phases (its coverage collapses\n\
         while the stream prefetcher's soars) and restored in the pointer-chase\n\
         phases — the coordination the paper's §4.2 heuristics provide. The idle\n\
         stream prefetcher is not penalised in chase phases: issuing nothing, it\n\
         stays accurate by definition (case 3/5 of Table 3)."
    );
}
