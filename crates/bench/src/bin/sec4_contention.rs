//! Reproduces the §4 motivation measurement: "resource contention increases
//! the average latency of useful prefetch requests by 52% when the two
//! prefetchers are used together compared to when each is used alone."
//!
//! We compare each prefetcher's mean DRAM service latency when running
//! alone against the naive (unthrottled) hybrid, per workload and averaged.
//! Writes the run manifest to `target/lab/sec4_contention.json`.
//!
//! ```text
//! cargo run --release -p bench --bin sec4_contention
//! ```

use bench::experiments::POINTER_BENCHES;
use bench::table::{f2, Table};
use bench::Lab;
use ecdp::system::SystemKind;

fn report(lab: &Lab) -> String {
    let mut t = Table::new(vec![
        "bench",
        "pf latency alone (stream)",
        "pf latency alone (CDP)",
        "pf latency hybrid",
        "increase",
    ]);
    let mut increases = Vec::new();
    for name in POINTER_BENCHES {
        let stream = lab.run(name, SystemKind::StreamOnly);
        // "CDP alone" approximated as the hybrid's CDP with a stream
        // prefetcher that cannot act: use the GHB-free CDP config by
        // running stream+CDP and stream-only and isolating: the cleanest
        // alone-CDP is the hybrid minus stream, which the SystemKind set
        // does not include — so we report stream-alone, CDP-in-hybrid and
        // hybrid-total instead.
        let hybrid = lab.run(name, SystemKind::StreamCdp);
        let alone_stream = stream.prefetch_service.mean();
        let hybrid_lat = hybrid.prefetch_service.mean();
        if alone_stream > 0.0 && hybrid_lat > 0.0 {
            increases.push(hybrid_lat / alone_stream);
        }
        t.row(vec![
            name.to_string(),
            format!("{alone_stream:.0}"),
            "-".to_string(),
            format!("{hybrid_lat:.0}"),
            if alone_stream > 0.0 {
                f2(hybrid_lat / alone_stream)
            } else {
                "-".to_string()
            },
        ]);
    }
    let mut out =
        String::from("## §4 — prefetch service latency under inter-prefetcher contention\n\n");
    out.push_str(&t.to_markdown());
    out.push('\n');
    if !increases.is_empty() {
        out.push_str(&format!(
            "mean prefetch service latency, hybrid vs stream-alone: {:.2}x\n",
            bench::gmean(&increases)
        ));
    }
    out.push_str(
        "paper: resource contention increases the average latency of useful prefetch\n\
         requests by 52% when the two prefetchers are used together.\n",
    );
    out
}

fn main() {
    bench::run_report("sec4_contention", report);
}
