//! Regenerates Table 7 of the paper (hardware cost accounting).
fn main() {
    println!("{}", bench::experiments::single::tab07());
}
