//! Regenerates Section 6.1.6 of the paper. Run with `cargo run --release -p bench --bin sec616_profile_input`.
//! Writes the run manifest to `target/lab/sec616_profile_input.json`.
fn main() {
    bench::run_report("sec616_profile_input", bench::experiments::single::sec616);
}
