//! Regenerates the profiling-input study (Section 6.1.6) of the paper. Run with `cargo run --release -p bench --bin sec616_profile_input`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::single::sec616(&mut lab));
}
