//! Regenerates Figure 1 of the paper. Run with `cargo run --release -p bench --bin fig01_motivation`.
//! Writes the run manifest to `target/lab/fig01_motivation.json`.
fn main() {
    bench::run_report("fig01_motivation", bench::experiments::single::fig01);
}
