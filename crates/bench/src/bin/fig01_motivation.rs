//! Regenerates Figure 1 of the paper. Run with `cargo run --release -p bench --bin fig01_motivation`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::single::fig01(&mut lab));
}
