//! Runs the ablation studies and the three-prefetcher extension, appending
//! them to EXPERIMENTS.md (or printing to stdout with `--print`).
use bench::experiments::ablation;
use bench::Lab;

fn main() {
    let print_only = std::env::args().any(|a| a == "--print");
    let lab = Lab::new();
    let mut report = String::from("\n# Ablations and extensions\n\n");
    for (name, f) in [
        (
            "compare bits",
            ablation::compare_bits_sweep as fn(&Lab) -> String,
        ),
        ("recursion depth", ablation::recursion_depth_sweep),
        ("sampling interval", ablation::interval_sweep),
        ("hint threshold", ablation::hint_threshold_sweep),
        ("profile stability", ablation::profile_quality),
        ("dram policies", ablation::dram_policy_sweep),
        ("three prefetchers", ablation::three_prefetchers),
        (
            "extended prefetchers",
            bench::experiments::compare::extended_prefetchers,
        ),
    ] {
        eprintln!("[ablations] {name} ...");
        report.push_str(&f(&lab));
        report.push('\n');
    }
    match lab.write_manifest("ablations") {
        Ok(path) => eprintln!("[lab] manifest: {}", path.display()),
        Err(e) => eprintln!("[lab] manifest write failed: {e}"),
    }
    if print_only {
        println!("{report}");
    } else {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open("EXPERIMENTS.md")
            .expect("open EXPERIMENTS.md");
        f.write_all(report.as_bytes()).expect("append report");
        println!("appended ablations to EXPERIMENTS.md");
    }
}
