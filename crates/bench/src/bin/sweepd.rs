//! `sweepd` — the long-running sweep service over the persistent result
//! store.
//!
//! ```text
//! cargo run --release -p bench --bin sweepd -- [--addr HOST:PORT]
//!     [--config FILE] [--jobs N] [--store PATH]
//! ```
//!
//! Configuration resolves exactly like `run_all`: flags override the
//! `--config` file, the file overrides the legacy `BENCH_*` environment,
//! and a field set by both the file and the environment to different
//! values exits 2 naming both sources. The resolved request supplies the
//! worker-pool width (`jobs`), the store path, the retry policy used as
//! the default for submitted jobs, and the fault/checkpoint knobs the
//! shared `Lab` picks up.
//!
//! # Endpoints
//!
//! | Method/path | Behavior |
//! |---|---|
//! | `POST /sweep` | Submit a `SweepRequest` JSON body → `202` with the job id and submit-time dispositions |
//! | `GET /jobs/<id>` | Job status snapshot |
//! | `GET /jobs/<id>/events` | Progress stream: full history, then live events until the job completes (JSONL; SSE with `Accept: text/event-stream`). `?from=N` skips the first N events |
//! | `GET /jobs/<id>/manifest` | Completed job's manifest (`409` while cells are outstanding) |
//! | `GET /cells/<workload>/<input>/<system>/<config-hash>` | One committed record straight from the store (`404` on a miss) |
//! | `GET /healthz` | Service + store status (recovery report, quarantine, degradation, scheduler counters) |
//!
//! On startup the bound address is printed to stdout as
//! `sweepd listening on http://HOST:PORT` (use port 0 to let the OS
//! pick), and the store's quarantine/heal report is written next to the
//! log like `run_all` does.

use std::sync::Arc;
use std::time::Duration;

use bench::httpd::{
    respond_error, respond_json, start_stream, write_event, HttpRequest, HttpServer,
};
use bench::request::{compat, RequestOverlay};
use bench::{ResultStore, SweepRequest, SweepService};
use sim_core::Json;

const USAGE: &str = "usage: sweepd [--addr HOST:PORT] [--config FILE] [--jobs N] [--store PATH]

  --addr HOST:PORT  listen address (default 127.0.0.1:7071; port 0 picks a
                    free port — the bound address is printed on stdout)
  --config FILE     load a SweepRequest JSON document (same schema as the
                    POST /sweep body; flags override it, it overrides the
                    legacy BENCH_* environment)
  --jobs N          worker-pool threads (default: jobs from the resolved
                    request, else available parallelism)
  --store PATH      persistent result store backing dedup across restarts";

fn fail_usage(msg: &str) -> ! {
    eprintln!("sweepd: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Args {
    addr: String,
    config: Option<String>,
    jobs: Option<usize>,
    store: Option<String>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut parsed = Args {
        addr: "127.0.0.1:7071".to_string(),
        config: None,
        jobs: None,
        store: None,
    };
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => parsed.addr = args.next().ok_or("--addr requires a value")?,
            "--config" => parsed.config = Some(args.next().ok_or("--config requires a value")?),
            "--jobs" => {
                let v = args.next().ok_or("--jobs requires a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs value {v:?} is not an integer"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                parsed.jobs = Some(n);
            }
            "--store" => parsed.store = Some(args.next().ok_or("--store requires a value")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(parsed)
}

/// Flags-over-file-over-environment resolution, identical to `run_all`.
fn resolve_request(args: &Args) -> SweepRequest {
    let flags = RequestOverlay {
        jobs: args.jobs,
        store_path: args.store.clone(),
        ..RequestOverlay::default()
    };
    let file = args.config.as_ref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail_usage(&format!("--config {path:?}: {e}")));
        let json =
            Json::parse(&text).unwrap_or_else(|e| fail_usage(&format!("--config {path:?}: {e}")));
        RequestOverlay::from_json(&json)
            .unwrap_or_else(|e| fail_usage(&format!("--config {path:?}: {e}")))
    });
    let env = RequestOverlay::from_env().unwrap_or_else(|e| fail_usage(&e));
    let request = SweepRequest::resolve(flags, file, env).unwrap_or_else(|e| fail_usage(&e));
    if let Err(e) = compat::install_overrides(request.legacy_env_map()) {
        eprintln!("[sweepd] {e}");
    }
    request
}

fn parse_config_hash(hex: &str) -> Option<u64> {
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn handle(
    service: &SweepService,
    request: &HttpRequest,
    stream: &mut std::net::TcpStream,
) -> std::io::Result<()> {
    let segments = request.segments();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => respond_json(stream, 200, &service.status_json()),
        ("POST", ["sweep"]) => {
            let body = match std::str::from_utf8(&request.body) {
                Ok(s) => s,
                Err(_) => return respond_error(stream, 400, "body is not UTF-8"),
            };
            let parsed = Json::parse(body).and_then(|j| SweepRequest::from_json(&j));
            let sweep = match parsed {
                Ok(r) => r,
                Err(e) => return respond_error(stream, 400, &format!("bad sweep request: {e}")),
            };
            match service.submit(sweep) {
                Ok(job) => {
                    let mut doc = job.status().to_json();
                    if let Json::Obj(pairs) = &mut doc {
                        pairs.insert(0, ("job".to_string(), Json::Num(job.id() as f64)));
                    }
                    respond_json(stream, 202, &doc)
                }
                Err(e) => respond_error(stream, 400, &e),
            }
        }
        ("GET", ["jobs", id]) => match id.parse::<u64>().ok().and_then(|id| service.job(id)) {
            Some(job) => respond_json(stream, 200, &job.status().to_json()),
            None => respond_error(stream, 404, "no such job"),
        },
        ("GET", ["jobs", id, "events"]) => {
            let Some(job) = id.parse::<u64>().ok().and_then(|id| service.job(id)) else {
                return respond_error(stream, 404, "no such job");
            };
            let sse = request.wants_sse();
            let mut from: usize = request
                .query
                .split('&')
                .find_map(|kv| kv.strip_prefix("from="))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            start_stream(stream, sse)?;
            loop {
                let (lines, done) = job.wait_events(from, Duration::from_millis(500));
                from += lines.len();
                for line in &lines {
                    write_event(stream, sse, line)?;
                }
                if done && lines.is_empty() {
                    return Ok(());
                }
                if done {
                    // Drain any events that raced in behind the final
                    // batch on the next iteration, then close.
                    let (rest, _) = job.wait_events(from, Duration::from_millis(0));
                    for line in &rest {
                        write_event(stream, sse, line)?;
                    }
                    return Ok(());
                }
            }
        }
        ("GET", ["jobs", id, "manifest"]) => {
            let Some(job) = id.parse::<u64>().ok().and_then(|id| service.job(id)) else {
                return respond_error(stream, 404, "no such job");
            };
            match job.manifest() {
                Some(manifest) => respond_json(stream, 200, &manifest.to_json()),
                None => respond_error(stream, 409, "job is still running"),
            }
        }
        ("GET", ["cells", workload, input, system, hash]) => {
            let Some(cfg) = parse_config_hash(hash) else {
                return respond_error(stream, 400, "config hash must be 16 hex digits");
            };
            match service.stored_cell(workload, input, system, cfg) {
                Some(record) => respond_json(stream, 200, &record.to_json()),
                None => respond_error(stream, 404, "cell not in store"),
            }
        }
        ("GET" | "POST", _) => respond_error(stream, 404, "unknown endpoint"),
        _ => respond_error(stream, 405, "method not allowed"),
    }
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => fail_usage(&e),
    };
    let request = resolve_request(&args);
    let store = request.store_path.as_deref().map(|p| {
        let store = Arc::new(ResultStore::open(p));
        let rec = store.recovery();
        eprintln!(
            "[sweepd] result store {}: {} committed cells, {} quarantined{}",
            store.path().display(),
            store.len(),
            rec.quarantined(),
            if rec.healed { ", healed" } else { "" },
        );
        match store.write_report() {
            Ok(path) => eprintln!("[sweepd] store report: {}", path.display()),
            Err(e) => eprintln!("[sweepd] store report write failed: {e}"),
        }
        store
    });
    let workers = request.jobs.unwrap_or_else(bench::default_jobs);
    let service = Arc::new(SweepService::start(store, workers));
    let server = match HttpServer::bind(&args.addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[sweepd] cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    let addr = server.local_addr().expect("bound listener has an address");
    eprintln!("[sweepd] {workers} workers, store {:?}", request.store_path);
    println!("sweepd listening on http://{addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let svc = Arc::clone(&service);
    server.serve(move |request, stream| handle(&svc, request, stream));
}
