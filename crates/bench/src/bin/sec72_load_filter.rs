//! Regenerates the per-load-filter comparison (Section 7.2) of the paper. Run with `cargo run --release -p bench --bin sec72_load_filter`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::compare::sec72(&mut lab));
}
