//! Regenerates Section 7.2 of the paper. Run with `cargo run --release -p bench --bin sec72_load_filter`.
//! Writes the run manifest to `target/lab/sec72_load_filter.json`.
fn main() {
    bench::run_report("sec72_load_filter", bench::experiments::compare::sec72);
}
