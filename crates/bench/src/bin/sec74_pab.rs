//! Regenerates the PAB comparison (Section 7.4) of the paper. Run with `cargo run --release -p bench --bin sec74_pab`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::compare::sec74(&mut lab));
}
