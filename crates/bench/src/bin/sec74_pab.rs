//! Regenerates Section 7.4 of the paper. Run with `cargo run --release -p bench --bin sec74_pab`.
//! Writes the run manifest to `target/lab/sec74_pab.json`.
fn main() {
    bench::run_report("sec74_pab", bench::experiments::compare::sec74);
}
