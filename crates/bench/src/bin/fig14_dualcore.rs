//! Regenerates Figure 14 of the paper. Run with `cargo run --release -p bench --bin fig14_dualcore`.
//! Writes the run manifest to `target/lab/fig14_dualcore.json`.
fn main() {
    bench::run_report("fig14_dualcore", bench::experiments::multi::fig14);
}
