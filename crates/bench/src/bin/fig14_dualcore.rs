//! Regenerates Figure 14 of the paper. Run with `cargo run --release -p bench --bin fig14_dualcore`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::multi::fig14(&mut lab));
}
