//! Regenerates every table and figure of the paper and writes the combined
//! report to `EXPERIMENTS.md` (in the workspace root, or the path given as
//! the last positional argument). Also writes the run manifest of every
//! simulated cell to `target/lab/run_all.json`.
//!
//! ```text
//! cargo run --release -p bench --bin run_all [-- [--config FILE]
//!                                               [--workload-file FILE]...
//!                                               [--jobs N] [--filter SUBSTR]
//!                                               [--resume] [--sweep] [--bench]
//!                                               [--no-skip] [--trace-dir DIR]
//!                                               [output.md]]
//! ```
//!
//! `--bench` bypasses both phases and times the engine hot path over the
//! same grid instead, writing `BENCH_hotpath.json` (see
//! [`bench::hotpath`]); `--no-skip` runs the benchmark on the
//! cycle-by-cycle reference stepper for comparison. `--validate` runs the
//! paper-conformance suite (see [`bench::validate`]) over the grid's
//! workloads instead, writes `VALIDATE_report.json`, and exits 2 when any
//! property is violated.
//!
//! Execution has two phases:
//!
//! 1. **Sweep**: the shared (workload × system) grid runs fault-tolerantly
//!    on the worker pool. Each cell is isolated — a panicking or
//!    deadlocked cell becomes a `Failed` manifest record while the other
//!    cells complete — and every finished cell is flushed atomically to
//!    `target/lab/run_all.json`, so a killed process leaves a valid
//!    partial manifest. `--resume` skips cells the existing manifest
//!    already records as successful under the same machine-config hash.
//!    `--sweep` stops after this phase; combined with `--filter` it runs
//!    only the matching cells, and a filter matching no cell exits 2.
//!    `--trace-dir DIR` runs every cell with the observability layer
//!    enabled and writes per-cell `timeseries.json` + `obs.jsonl` under
//!    `DIR`; the manifest records the artifact paths.
//! 2. **Sections**: report sections are generated concurrently on the
//!    same pool (mostly cache hits after the sweep); a failing section is
//!    reported inline in the output instead of aborting the report.
//!
//! The process exits 0 only if every sweep cell and every section
//! succeeded; any failure exits 1 (usage errors — including conflicting
//! configuration sources — exit 2).
//!
//! Configuration resolves through one typed [`bench::SweepRequest`]
//! (the same schema-versioned document `sweepd` accepts over HTTP):
//! flags override `--config FILE`, the file overrides the legacy
//! `BENCH_*` environment, and a field set by both the file and the
//! environment to different values is a usage error naming both. The
//! sweep grid defaults to the paper's pointer benchmarks × the seven
//! headline systems on the ref input. The section text is identical at
//! any thread count (only the trailing timing line varies): results are
//! assembled in section order and every simulation is memoized
//! process-wide by the `Lab`. `--filter` keeps only sections whose name
//! contains the substring (case-insensitive) and skips the sweep phase.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use bench::cli::{parse_args, Parsed, RunAllArgs, USAGE};
use bench::experiments::{compare, misc, multi, single};
use bench::request::{compat, RequestOverlay};
use bench::{Lab, Manifest, ManifestWriter, ResultStore, RunOutcome, SweepOptions, SweepRequest};

fn fail_usage(msg: &str) -> ! {
    eprintln!("run_all: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Resolves the typed request from the three sources — flags over
/// `--config` file over legacy environment — and installs it as the
/// authoritative configuration for every deep `BENCH_*` reader in this
/// process (`Lab::new`, `Manifest::out_dir`, `RetryPolicy::from_env`…).
fn resolve_request(args: &RunAllArgs) -> SweepRequest {
    let flags = RequestOverlay {
        jobs: args.jobs,
        store_path: args.store.clone(),
        workload_files: (!args.workload_files.is_empty()).then(|| args.workload_files.clone()),
        ..RequestOverlay::default()
    };
    let file = args.config.as_ref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail_usage(&format!("--config {path:?}: {e}")));
        let json = sim_core::Json::parse(&text)
            .unwrap_or_else(|e| fail_usage(&format!("--config {path:?}: {e}")));
        RequestOverlay::from_json(&json)
            .unwrap_or_else(|e| fail_usage(&format!("--config {path:?}: {e}")))
    });
    let env = RequestOverlay::from_env().unwrap_or_else(|e| fail_usage(&e));
    let request = SweepRequest::resolve(flags, file, env).unwrap_or_else(|e| fail_usage(&e));
    if let Err(e) = compat::install_overrides(request.legacy_env_map()) {
        eprintln!("[run_all] {e}");
    }
    request
}

/// `--bench`: time the engine hot path over the grid, write the report,
/// and gate against the configured baseline report when set.
fn run_bench(args: &RunAllArgs, request: &SweepRequest) -> ! {
    let out_path = args
        .out_path
        .clone()
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let t = Instant::now();
    eprintln!(
        "[run_all] benching {} cells ({} workloads x {} systems, {:?} input{}{}) ...",
        request.cell_count(),
        request.workloads.len(),
        request.systems.len(),
        request.input,
        if args.no_skip { ", no-skip" } else { "" },
        if args.warm_fork { ", warm-fork" } else { "" },
    );
    let report = bench::run_hotpath_bench(
        &request.workloads,
        request.input,
        &request.systems,
        args.no_skip,
        args.warm_fork,
    );
    eprintln!(
        "[run_all] bench: {:.1} cells/sec, {:.2e} cycles/sec, peak RSS {} in {:.1?}",
        report.cells_per_sec,
        report.cycles_per_sec,
        report
            .peak_rss_bytes
            .map_or_else(|| "n/a".to_string(), |b| format!("{} MiB", b >> 20)),
        t.elapsed(),
    );
    std::fs::write(&out_path, report.to_json().to_string_pretty()).expect("write bench report");
    println!("wrote {out_path}");
    if let Some(baseline_path) = &request.baseline {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| fail_usage(&format!("baseline {baseline_path:?}: {e}")));
        let baseline = sim_core::Json::parse(&text)
            .and_then(|j| bench::HotpathReport::from_json(&j))
            .unwrap_or_else(|e| fail_usage(&format!("baseline {baseline_path:?}: {e}")));
        if let Err(msg) = report.regression_check(&baseline, 0.2) {
            eprintln!("[run_all] {msg}");
            std::process::exit(1);
        }
        eprintln!(
            "[run_all] within 20% of baseline {baseline_path} ({:.1} cells/sec)",
            baseline.cells_per_sec
        );
        // Against a cold baseline, warm-fork must actually pay for
        // itself: ≥2x cells/sec, or the checkpoint path regressed.
        if report.warm_fork && !baseline.warm_fork {
            let ratio = report.cells_per_sec / baseline.cells_per_sec.max(1e-9);
            eprintln!("[run_all] warm-fork speedup over cold baseline: {ratio:.2}x");
            if ratio < 2.0 {
                eprintln!("[run_all] warm-fork speedup below the 2x floor");
                std::process::exit(1);
            }
        }
    }
    std::process::exit(0);
}

/// `--validate`: run the paper-conformance suite over the sweep grid's
/// workloads and write `VALIDATE_report.json`. Exits 2 when a property is
/// violated, 1 when the report cannot be written, 0 on a clean pass.
fn run_validate(args: &RunAllArgs, request: &SweepRequest) -> ! {
    let out_path = args
        .out_path
        .clone()
        .unwrap_or_else(|| "VALIDATE_report.json".to_string());
    let lab = Lab::new();
    let t = Instant::now();
    eprintln!(
        "[run_all] validating {} properties x {} workloads ({:?} input) ...",
        bench::validate::PROPERTIES.len(),
        request.workloads.len(),
        request.input,
    );
    let report = bench::run_conformance(&lab, &request.workloads, request.input);
    for r in &report.results {
        eprintln!(
            "[run_all] {} {}/{}: {}",
            if r.passed { "PASS" } else { "FAIL" },
            r.workload,
            r.property,
            r.detail
        );
    }
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    if let Err(e) = std::fs::write(&out_path, report.to_json().to_string_pretty()) {
        eprintln!("[run_all] cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    let failures = report.failures().len();
    eprintln!(
        "[run_all] validate: {}/{} properties held in {:.1?}",
        report.results.len() - failures,
        report.results.len(),
        t.elapsed()
    );
    if failures > 0 {
        eprintln!("[run_all] {failures} conformance violation(s); exiting 2");
        std::process::exit(2);
    }
    std::process::exit(0);
}

fn main() {
    let args: RunAllArgs = match parse_args(std::env::args().skip(1)) {
        Ok(Parsed::Run(a)) => a,
        Ok(Parsed::Help) => {
            println!("{USAGE}");
            return;
        }
        Err(e) => fail_usage(&e),
    };
    let request = resolve_request(&args);
    if args.bench {
        run_bench(&args, &request);
    }
    if args.validate {
        run_validate(&args, &request);
    }
    let jobs = request.jobs.unwrap_or_else(bench::default_jobs);
    let out_path = args
        .out_path
        .unwrap_or_else(|| "EXPERIMENTS.md".to_string());

    let lab = Lab::new();
    let t0 = Instant::now();
    let mut failures = 0usize;

    // Persistent result store (--store, --config or $BENCH_RESULT_STORE):
    // opening runs startup recovery; the report artifact lands next to
    // the log.
    let store = request.store_path.as_deref().map(ResultStore::open);
    if let Some(store) = &store {
        let rec = store.recovery();
        eprintln!(
            "[run_all] result store {}: {} committed cells, {} quarantined, {}",
            store.path().display(),
            store.len(),
            rec.quarantined(),
            if rec.healed {
                "healed"
            } else if rec.is_clean() {
                "clean"
            } else {
                "degraded"
            },
        );
        if let Some(reason) = store.degraded() {
            eprintln!("[run_all] result store is memory-only: {reason}");
        }
    }

    // Phase 1 — fault-tolerant sweep over the shared grid, with
    // incremental manifest flushes and optional resume. A filtered
    // report run skips it: the filter may need none of these cells.
    let trace_dir = args.trace_dir.as_ref().map(std::path::PathBuf::from);
    let mut sweep_outcomes: Vec<RunOutcome> = Vec::new();
    if args.filter.is_none() || args.sweep_only {
        let mut plan = request.plan("run_all");
        if let Some(f) = &args.filter {
            plan = plan.filtered(f);
            if plan.cells.is_empty() {
                // A filter that names no cell is usually a misspelled
                // workload; the registry can often say which one.
                if let Some(s) = workloads::registry::suggest(f) {
                    fail_usage(&format!(
                        "no cells matched --filter {f} (did you mean {s:?}?)"
                    ));
                }
                fail_usage(&format!("no cells matched --filter {f}"));
            }
        }
        let prior = if args.resume {
            let m = Manifest::load(&plan.name);
            if m.is_none() {
                eprintln!("[run_all] --resume: no prior manifest, running everything");
            }
            m
        } else {
            None
        };
        let writer = ManifestWriter::new(plan.name.clone());
        eprintln!(
            "[run_all] sweeping {} cells on {jobs} workers ...",
            plan.cells.len()
        );
        let t = Instant::now();
        let exec = plan.run_fault_tolerant(
            &lab,
            jobs,
            &SweepOptions {
                resume_from: prior.as_ref(),
                writer: Some(&writer),
                trace_dir: trace_dir.as_deref(),
                store: store.as_ref(),
                retry: request.retry,
            },
        );
        eprintln!(
            "[run_all] sweep: {} ran, {} skipped (resume), {} failed in {:.1?}",
            exec.ran,
            exec.skipped,
            exec.failed(),
            t.elapsed()
        );
        if store.is_some() {
            eprintln!("[run_all] result store served {} cell(s)", exec.store_hits);
        }
        for f in exec.outcomes.iter().filter_map(RunOutcome::failure) {
            eprintln!(
                "[run_all] FAILED {} {} {}: [{}] {}",
                f.workload, f.input, f.system, f.error_kind, f.error
            );
        }
        failures += exec.failed();
        sweep_outcomes = exec.outcomes;
    }

    // Store maintenance: optional offline compaction, then the
    // quarantine/heal report artifact the chaos CI job uploads.
    if let Some(store) = &store {
        if request.store_compact {
            match store.compact() {
                Ok(stats) => eprintln!(
                    "[run_all] store compacted: {} live records, {} -> {} bytes",
                    stats.live_records, stats.bytes_before, stats.bytes_after
                ),
                Err(e) => eprintln!("[run_all] store compaction failed: {e}"),
            }
        }
        match store.write_report() {
            Ok(path) => eprintln!("[run_all] store report: {}", path.display()),
            Err(e) => eprintln!("[run_all] store report write failed: {e}"),
        }
    }

    if args.sweep_only {
        eprintln!(
            "[run_all] sweep-only run done in {:.1?} ({jobs} worker threads)",
            t0.elapsed()
        );
        if failures > 0 {
            std::process::exit(1);
        }
        return;
    }

    // Phase 2 — generate sections concurrently; collect in declaration
    // order. A panicking section becomes an inline error block.
    type Section<'a> = (&'a str, fn(&Lab) -> String);
    let mut sections: Vec<Section> = vec![
        ("Figure 1", single::fig01),
        ("Figure 2 + Table 1", single::fig02_tab01),
        ("Figure 4", single::fig04),
        ("Figure 7 + Table 6", single::fig07_tab06),
        ("Figure 8", single::fig08),
        ("Figure 9", single::fig09),
        ("Figure 10", single::fig10),
        ("Table 7", |_lab| single::tab07()),
        ("Figure 11", compare::fig11),
        ("Figure 12", compare::fig12),
        ("Figure 13", compare::fig13),
        ("Section 6.1.6", single::sec616),
        ("Section 6.3", compare::sec63),
        ("Section 6.7", misc::sec67),
        ("Section 7.1", compare::sec71),
        ("Section 7.2", compare::sec72),
        ("Section 7.4", compare::sec74),
        ("Figure 14", multi::fig14),
        ("Figure 15", multi::fig15),
    ];
    if let Some(f) = &args.filter {
        sections.retain(|(name, _)| name.to_lowercase().contains(f));
        if sections.is_empty() {
            fail_usage(&format!("no section matches --filter {f}"));
        }
    }

    let n = sections.len();
    let next = AtomicUsize::new(0);
    let mut slots: Vec<std::sync::OnceLock<Result<String, String>>> = Vec::new();
    slots.resize_with(n, std::sync::OnceLock::new);
    std::thread::scope(|s| {
        for _ in 0..jobs.clamp(1, n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (name, f) = sections[i];
                let t = Instant::now();
                eprintln!("[run_all] {name} ...");
                let text = catch_unwind(AssertUnwindSafe(|| f(&lab))).map_err(|payload| {
                    payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
                        .unwrap_or_else(|| "non-string panic payload".to_string())
                });
                eprintln!("[run_all] {name} done in {:.1?}", t.elapsed());
                let _ = slots[i].set(text);
            });
        }
    });

    let mut report = String::from(
        "# EXPERIMENTS — paper vs reproduction\n\n\
         Generated by `cargo run --release -p bench --bin run_all`. Each section\n\
         reproduces one table or figure of *Techniques for Bandwidth-Efficient\n\
         Prefetching of Linked Data Structures in Hybrid Prefetching Systems*\n\
         (HPCA 2009) on the synthetic workload stand-ins (see DESIGN.md for the\n\
         substitution inventory and calibration notes). Lines beginning with\n\
         `paper:` quote the original result for comparison; absolute numbers are\n\
         not expected to match, the win/loss structure is.\n\n",
    );
    for (slot, (name, _)) in slots.into_iter().zip(&sections) {
        match slot.into_inner().expect("every section generated") {
            Ok(text) => report.push_str(&text),
            Err(msg) => {
                failures += 1;
                eprintln!("[run_all] FAILED section {name}: {msg}");
                report.push_str(&format!("## {name}\n\n**GENERATION FAILED**: {msg}\n"));
            }
        }
        report.push('\n');
    }
    report.push_str(&format!(
        "---\nTotal generation time: {:.1?} ({jobs} worker threads).\n",
        t0.elapsed()
    ));
    std::fs::write(&out_path, &report).expect("write report");

    // Final manifest: the sweep's outcomes verbatim (success records may
    // carry --trace-dir artifact paths, which the lab cache does not
    // know about) plus every additional cell the sections ran.
    let swept: std::collections::HashSet<_> =
        sweep_outcomes.iter().map(RunOutcome::sort_key).collect();
    let mut records: Vec<RunOutcome> = sweep_outcomes;
    records.extend(
        lab.records()
            .into_iter()
            .map(RunOutcome::Success)
            .filter(|o| !swept.contains(&o.sort_key())),
    );
    records.sort_by_key(RunOutcome::sort_key);
    let manifest = Manifest {
        name: "run_all".to_string(),
        records,
    };
    match manifest.write() {
        Ok(path) => eprintln!("[lab] manifest: {}", path.display()),
        Err(e) => eprintln!("[lab] manifest write failed: {e}"),
    }
    println!("wrote {out_path}");
    if failures > 0 {
        eprintln!("[run_all] {failures} failure(s); exiting nonzero");
        std::process::exit(1);
    }
}
