//! Regenerates every table and figure of the paper and writes the combined
//! report to `EXPERIMENTS.md` (in the workspace root, or the path given as
//! the last positional argument). Also writes the run manifest of every
//! simulated cell to `target/lab/run_all.json`.
//!
//! ```text
//! cargo run --release -p bench --bin run_all [-- [--jobs N] [--filter SUBSTR] [output.md]]
//! ```
//!
//! Sections are generated concurrently on a worker pool (`--jobs`, or
//! `BENCH_JOBS`, defaulting to the available parallelism); a prewarm
//! sweep first fans the shared (workload × system) grid out across all
//! workers so the per-section work is mostly cache hits. The section text
//! is identical at any thread count (only the trailing timing line
//! varies): results are assembled in section order and every simulation
//! is memoized process-wide by the `Lab`.
//! `--filter` keeps only sections whose name contains the substring
//! (case-insensitive).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use bench::experiments::{compare, misc, multi, single, POINTER_BENCHES};
use bench::{Lab, SweepPlan};
use ecdp::system::SystemKind;
use workloads::InputSet;

fn usage() -> ! {
    eprintln!("usage: run_all [--jobs N] [--filter SUBSTR] [output.md]");
    std::process::exit(2);
}

fn main() {
    let mut out_path = "EXPERIMENTS.md".to_string();
    let mut jobs = bench::default_jobs();
    let mut filter: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--filter" => filter = Some(args.next().unwrap_or_else(|| usage()).to_lowercase()),
            "--help" | "-h" => usage(),
            _ if a.starts_with('-') => usage(),
            _ => out_path = a,
        }
    }

    let lab = Lab::new();
    let t0 = Instant::now();

    type Section<'a> = (&'a str, fn(&Lab) -> String);
    let mut sections: Vec<Section> = vec![
        ("Figure 1", single::fig01),
        ("Figure 2 + Table 1", single::fig02_tab01),
        ("Figure 4", single::fig04),
        ("Figure 7 + Table 6", single::fig07_tab06),
        ("Figure 8", single::fig08),
        ("Figure 9", single::fig09),
        ("Figure 10", single::fig10),
        ("Table 7", |_lab| single::tab07()),
        ("Figure 11", compare::fig11),
        ("Figure 12", compare::fig12),
        ("Figure 13", compare::fig13),
        ("Section 6.1.6", single::sec616),
        ("Section 6.3", compare::sec63),
        ("Section 6.7", misc::sec67),
        ("Section 7.1", compare::sec71),
        ("Section 7.2", compare::sec72),
        ("Section 7.4", compare::sec74),
        ("Figure 14", multi::fig14),
        ("Figure 15", multi::fig15),
    ];
    if let Some(f) = &filter {
        sections.retain(|(name, _)| name.to_lowercase().contains(f));
        if sections.is_empty() {
            eprintln!("[run_all] no section matches --filter {f}");
            std::process::exit(2);
        }
    }

    // Prewarm: fan the shared single-core grid out across all workers so
    // the section generators (which run concurrently but are internally
    // serial) mostly hit the cache. Only worth it for a full run — a
    // filtered run may need none of these cells.
    if filter.is_none() && jobs > 1 {
        let plan = SweepPlan::cross(
            "run_all_prewarm",
            &POINTER_BENCHES,
            InputSet::Ref,
            &[
                SystemKind::NoPrefetch,
                SystemKind::StreamOnly,
                SystemKind::OracleLds,
                SystemKind::StreamCdp,
                SystemKind::StreamEcdp,
                SystemKind::StreamCdpThrottled,
                SystemKind::StreamEcdpThrottled,
            ],
        );
        eprintln!(
            "[run_all] prewarming {} cells on {jobs} workers ...",
            plan.cells.len()
        );
        let t = Instant::now();
        plan.run(&lab, jobs);
        eprintln!("[run_all] prewarm done in {:.1?}", t.elapsed());
    }

    // Generate sections concurrently; collect in declaration order.
    let n = sections.len();
    let next = AtomicUsize::new(0);
    let mut slots: Vec<std::sync::OnceLock<String>> = Vec::new();
    slots.resize_with(n, std::sync::OnceLock::new);
    std::thread::scope(|s| {
        for _ in 0..jobs.clamp(1, n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (name, f) = sections[i];
                let t = Instant::now();
                eprintln!("[run_all] {name} ...");
                let text = f(&lab);
                eprintln!("[run_all] {name} done in {:.1?}", t.elapsed());
                let _ = slots[i].set(text);
            });
        }
    });

    let mut report = String::from(
        "# EXPERIMENTS — paper vs reproduction\n\n\
         Generated by `cargo run --release -p bench --bin run_all`. Each section\n\
         reproduces one table or figure of *Techniques for Bandwidth-Efficient\n\
         Prefetching of Linked Data Structures in Hybrid Prefetching Systems*\n\
         (HPCA 2009) on the synthetic workload stand-ins (see DESIGN.md for the\n\
         substitution inventory and calibration notes). Lines beginning with\n\
         `paper:` quote the original result for comparison; absolute numbers are\n\
         not expected to match, the win/loss structure is.\n\n",
    );
    for slot in slots {
        report.push_str(&slot.into_inner().expect("every section generated"));
        report.push('\n');
    }
    report.push_str(&format!(
        "---\nTotal generation time: {:.1?} ({jobs} worker threads).\n",
        t0.elapsed()
    ));
    std::fs::write(&out_path, &report).expect("write report");
    match lab.write_manifest("run_all") {
        Ok(path) => eprintln!("[lab] manifest: {}", path.display()),
        Err(e) => eprintln!("[lab] manifest write failed: {e}"),
    }
    println!("wrote {out_path}");
}
