//! Regenerates Figure 11 of the paper. Run with `cargo run --release -p bench --bin fig11_lds_comparison`.
//! Writes the run manifest to `target/lab/fig11_lds_comparison.json`.
fn main() {
    bench::run_report("fig11_lds_comparison", bench::experiments::compare::fig11);
}
