//! Regenerates Figure 11 of the paper. Run with `cargo run --release -p bench --bin fig11_lds_comparison`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::compare::fig11(&mut lab));
}
