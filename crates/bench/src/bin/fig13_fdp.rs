//! Regenerates Figure 13 of the paper. Run with `cargo run --release -p bench --bin fig13_fdp`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::compare::fig13(&mut lab));
}
