//! Regenerates Figure 13 of the paper. Run with `cargo run --release -p bench --bin fig13_fdp`.
//! Writes the run manifest to `target/lab/fig13_fdp.json`.
fn main() {
    bench::run_report("fig13_fdp", bench::experiments::compare::fig13);
}
