//! Regenerates Figure 10 of the paper. Run with `cargo run --release -p bench --bin fig10_pg_usefulness`.
fn main() {
    let mut lab = bench::Lab::new();
    println!("{}", bench::experiments::single::fig10(&mut lab));
}
