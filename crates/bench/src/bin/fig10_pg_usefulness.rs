//! Regenerates Figure 10 of the paper. Run with `cargo run --release -p bench --bin fig10_pg_usefulness`.
//! Writes the run manifest to `target/lab/fig10_pg_usefulness.json`.
fn main() {
    bench::run_report("fig10_pg_usefulness", bench::experiments::single::fig10);
}
