//! Minimal horizontal bar charts in monospaced text, used to render the
//! paper's figures inside `EXPERIMENTS.md` code blocks.

/// Renders labelled values as a horizontal bar chart.
///
/// Bars are scaled so the maximum value spans `width` characters; a
/// reference line (e.g. the 1.0x baseline of a speedup chart) is marked
/// with `|` when it falls inside the plotted range.
///
/// # Example
///
/// ```
/// let chart = bench::chart::bar_chart(
///     &[("base", 1.0), ("ours", 1.5)],
///     20,
///     Some(1.0),
/// );
/// assert!(chart.contains("ours"));
/// ```
pub fn bar_chart(items: &[(&str, f64)], width: usize, reference: Option<f64>) -> String {
    if items.is_empty() {
        return String::new();
    }
    let max = items
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let ref_col = reference
        .filter(|r| *r > 0.0 && *r <= max)
        .map(|r| ((r / max) * width as f64).round() as usize);

    let mut out = String::new();
    for (label, value) in items {
        let bar_len = ((value / max) * width as f64).round() as usize;
        let mut bar: Vec<char> = std::iter::repeat_n('#', bar_len)
            .chain(std::iter::repeat_n(' ', width.saturating_sub(bar_len)))
            .collect();
        if let Some(rc) = ref_col {
            if rc < bar.len() && bar[rc] == ' ' {
                bar[rc] = '|';
            }
        }
        let bar: String = bar.into_iter().collect();
        out.push_str(&format!("{label:>label_w$} {bar} {value:.2}\n"));
    }
    out
}

/// Renders a chart as a fenced markdown code block with a caption.
pub fn figure(caption: &str, items: &[(&str, f64)], reference: Option<f64>) -> String {
    format!(
        "{caption}\n\n```text\n{}```\n",
        bar_chart(items, 42, reference)
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let c = bar_chart(&[("a", 1.0), ("b", 2.0)], 10, None);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].matches('#').count() == 10);
        assert!(lines[0].matches('#').count() == 5);
    }

    #[test]
    fn reference_line_is_marked() {
        let c = bar_chart(&[("a", 0.5), ("b", 2.0)], 20, Some(1.0));
        assert!(c.lines().next().unwrap().contains('|'));
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(bar_chart(&[], 10, None).is_empty());
    }

    #[test]
    fn figure_wraps_in_code_block() {
        let f = figure("Speedups", &[("x", 1.0)], None);
        assert!(f.starts_with("Speedups"));
        assert!(f.contains("```text"));
        assert!(f.trim_end().ends_with("```"));
    }
}
