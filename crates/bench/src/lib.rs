//! Experiment harness for the ECDP reproduction.
//!
//! Every table and figure of the paper's evaluation has a generator
//! function in [`experiments`]; the `bin/` binaries are thin wrappers, and
//! `bin/run_all` regenerates the complete `EXPERIMENTS.md`. The [`Lab`]
//! caches workload traces, profiling artifacts and run results within a
//! process so composite reports do not repeat simulations.

pub mod chart;
pub mod experiments;
pub mod lab;
pub mod table;

pub use lab::Lab;
pub use table::Table;

/// Geometric mean of a slice of positive ratios.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
pub fn gmean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "gmean of empty slice");
    let s: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "gmean requires positive values");
            x.ln()
        })
        .sum();
    (s / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn amean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_of_ratios() {
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn amean_is_average() {
        assert!((amean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmean_rejects_zero() {
        let _ = gmean(&[0.0]);
    }
}
