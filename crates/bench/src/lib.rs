//! Experiment harness for the ECDP reproduction.
//!
//! Every table and figure of the paper's evaluation has a generator
//! function in [`experiments`]; the `bin/` binaries are thin wrappers, and
//! `bin/run_all` regenerates the complete `EXPERIMENTS.md`. The [`Lab`]
//! is a thread-safe cache of workload traces, profiling artifacts and run
//! results, so composite reports never repeat a simulation and the
//! [`sweep`] executor can fan cells out across worker threads. Every run
//! also leaves a [`manifest::RunRecord`] behind; binaries write the
//! collected records to `target/lab/<name>.json` for the regression
//! tests.

pub mod chart;
pub mod cli;
pub mod difftest;
pub mod experiments;
pub mod fault;
pub mod hotpath;
pub mod httpd;
pub mod lab;
pub mod manifest;
pub mod request;
pub mod service;
pub mod store;
pub mod sweep;
pub mod table;
pub mod validate;

pub use difftest::{random_cases, run_suite, DiffCase, DiffFailure, DiffOutcome};
pub use fault::{FaultAction, FaultPlan};
pub use hotpath::{run_hotpath_bench, HotpathCell, HotpathReport};
pub use lab::{CheckpointConfig, Lab};
pub use manifest::{
    config_hash, FailureRecord, Manifest, ManifestWriter, RetryInfo, RunOutcome, RunRecord,
};
pub use request::{RequestOverlay, SweepRequest, DEFAULT_SYSTEMS, REQUEST_SCHEMA_VERSION};
pub use service::{JobStatus, SweepService};
pub use store::{
    AppendDisposition, CellKey, CompactStats, RecoveryEvent, RecoveryReport, ResultStore,
};
pub use sweep::{default_jobs, RetryPolicy, SweepCell, SweepExecution, SweepOptions, SweepPlan};
pub use table::Table;
pub use validate::{
    run_conformance, thresholds_from_env, PropertyResult, ValidateReport, VALIDATE_SCHEMA_VERSION,
};

/// Runs one report generator against a fresh [`Lab`], prints the report,
/// and writes the run manifest to `target/lab/<name>.json`.
///
/// This is the shared entry point of the thin per-figure binaries. A
/// panicking generator (e.g. a wedged simulation surfaced through
/// [`Lab::run_on`]) still gets its manifest of completed cells written,
/// and the process exits with status 1 instead of aborting mid-stream.
pub fn run_report(name: &str, generate: impl FnOnce(&Lab) -> String) {
    let lab = Lab::new();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| generate(&lab)));
    match &result {
        Ok(report) => print!("{report}"),
        Err(_) => eprintln!("[lab] report {name} failed; writing partial manifest"),
    }
    match lab.write_manifest(name) {
        Ok(path) => eprintln!("[lab] manifest: {}", path.display()),
        Err(e) => eprintln!("[lab] manifest write failed: {e}"),
    }
    if result.is_err() {
        std::process::exit(1);
    }
}

/// Geometric mean of a slice of positive ratios.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
pub fn gmean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "gmean of empty slice");
    let s: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "gmean requires positive values");
            x.ln()
        })
        .sum();
    (s / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn amean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_of_ratios() {
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn amean_is_average() {
        assert!((amean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmean_rejects_zero() {
        let _ = gmean(&[0.0]);
    }
}
