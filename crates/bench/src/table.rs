//! Plain-text/markdown table formatting for experiment reports.

/// A simple column-aligned table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str("| ");
            out.push_str(&r.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Renders as a column-aligned plain-text table.
    pub fn to_text(&self) -> String {
        let cols = self.headers.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a percentage delta, e.g. 1.225 -> "+22.5%".
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert_eq!(md.lines().count(), 3);
    }

    #[test]
    fn text_alignment() {
        let mut t = Table::new(vec!["name", "x"]);
        t.row(vec!["longname", "1"]);
        let txt = t.to_text();
        assert!(txt.contains("longname"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn pct_formats_deltas() {
        assert_eq!(pct(1.225), "+22.5%");
        assert_eq!(pct(0.86), "-14.0%");
    }
}
