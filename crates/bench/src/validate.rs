//! Metamorphic/differential paper-conformance suite and the
//! `run_all --validate` trend gate.
//!
//! Each property runs a *pair* (or family) of configurations through the
//! cached [`Lab`] and asserts a directional relation the paper claims,
//! rather than a pinned number:
//!
//! * `ecdp-prunes-cdp` — ECDP-filtered CDP issues no more prefetches than
//!   raw CDP, at no loss of accuracy (the paper's central bandwidth
//!   claim).
//! * `aggressiveness-monotone` — raising the static aggressiveness level
//!   never decreases the number of issued prefetches (Table 2 degrees are
//!   monotone).
//! * `oracle-bounds-ecdp` — the oracle-LDS machine upper-bounds any real
//!   LDS prefetcher's coverage: it never leaves more LDS misses than
//!   throttled ECDP.
//! * `throttle-bounded-bandwidth` — coordinated throttling only moves
//!   each prefetcher along the Table 2 level ladder, so a throttled run's
//!   bus traffic stays within the envelope of its unthrottled twin's
//!   static per-prefetcher level assignments (including mixed corners —
//!   throttling one prefetcher down exposes misses the other then
//!   chases, so the all-aggressive corner alone is not an upper bound).
//! * `table3-rederivation` — every classified throttle transition in the
//!   recorded decision trace is re-derived from its logged inputs with
//!   the shared Table 4 const table
//!   ([`sim_core::TABLE4_THRESHOLDS`]) and must reproduce the logged
//!   case and decision, and step at most one Table 2 level.
//!
//! The resulting [`ValidateReport`] serializes to `VALIDATE_report.json`
//! (pass/fail per property per workload, with the offending evidence) and
//! is gated in CI via `run_all --validate`, which exits 2 on violation.
//!
//! Fault-injection hooks: a `BENCH_FAULT_PLAN` entry targeting a cell of
//! the paired grid fails the property that runs it, and
//! `BENCH_VALIDATE_THRESHOLDS=cov,alow,ahigh` re-derives Table 3 under
//! deliberately shifted thresholds — both drive the gate's exit-2 path
//! end to end.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ecdp::SystemKind;
use sim_core::{
    check_transition_step, rederive_transition, Aggressiveness, Json, RunStats, ThrottleThresholds,
};
use workloads::InputSet;

use crate::lab::Lab;

/// Schema version of `VALIDATE_report.json`. Bump on any change to the
/// report's field layout.
pub const VALIDATE_SCHEMA_VERSION: u64 = 1;

/// Relative slack for directional comparisons between paired runs.
///
/// The relations are directional, not bit-exact: the paired machines
/// replay the same trace but diverge microarchitecturally (a throttled
/// run's extra demand misses change DRAM row locality, for example), so
/// second-order effects can nudge a counter a hair past its bound without
/// the paper's claim being violated.
pub const PAIR_TOLERANCE: f64 = 0.02;

/// One property evaluated on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyResult {
    /// Property identifier (e.g. `ecdp-prunes-cdp`).
    pub property: String,
    /// Workload the property ran on.
    pub workload: String,
    /// Did the relation hold?
    pub passed: bool,
    /// Evidence: the compared quantities on pass, the offending interval
    /// trace or counter values on failure.
    pub detail: String,
}

/// The full conformance report: one [`PropertyResult`] per property per
/// workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValidateReport {
    /// Individual results, in execution order.
    pub results: Vec<PropertyResult>,
}

impl ValidateReport {
    /// True if every property held.
    pub fn passed(&self) -> bool {
        self.results.iter().all(|r| r.passed)
    }

    /// The failing results.
    pub fn failures(&self) -> Vec<&PropertyResult> {
        self.results.iter().filter(|r| !r.passed).collect()
    }

    /// Serializes the report (schema `VALIDATE_SCHEMA_VERSION`).
    pub fn to_json(&self) -> Json {
        let results: Vec<Json> = self
            .results
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("property", Json::Str(r.property.clone())),
                    ("workload", Json::Str(r.workload.clone())),
                    ("passed", Json::Bool(r.passed)),
                    ("detail", Json::Str(r.detail.clone())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema_version", Json::Num(VALIDATE_SCHEMA_VERSION as f64)),
            (
                "config_hash",
                Json::Str(format!("{:016x}", crate::manifest::config_hash())),
            ),
            ("passed", Json::Bool(self.passed())),
            ("results", Json::Arr(results)),
        ])
    }

    /// Parses the [`ValidateReport::to_json`] representation. Returns
    /// `None` on a schema-version mismatch or malformed entries.
    pub fn from_json(j: &Json) -> Option<Self> {
        if j.get("schema_version")?.as_u64()? != VALIDATE_SCHEMA_VERSION {
            return None;
        }
        let mut results = Vec::new();
        for r in j.get("results")?.as_arr()? {
            results.push(PropertyResult {
                property: r.get("property")?.as_str()?.to_string(),
                workload: r.get("workload")?.as_str()?.to_string(),
                passed: matches!(r.get("passed")?, Json::Bool(true)),
                detail: r.get("detail")?.as_str()?.to_string(),
            });
        }
        Some(ValidateReport { results })
    }
}

/// Thresholds for the Table 3 re-derivation: the shared paper const table,
/// unless `BENCH_VALIDATE_THRESHOLDS=cov,alow,ahigh` overrides them (the
/// documented way to inject a violation and exercise the gate's failure
/// path end to end).
///
/// # Panics
///
/// Panics when the variable is set but not three comma-separated floats.
pub fn thresholds_from_env() -> ThrottleThresholds {
    let Some(raw) = crate::request::compat::setting("BENCH_VALIDATE_THRESHOLDS") else {
        return ThrottleThresholds::default();
    };
    let parts: Vec<f64> = raw
        .split(',')
        .map(|p| {
            p.trim()
                .parse()
                .unwrap_or_else(|_| panic!("BENCH_VALIDATE_THRESHOLDS: bad float {p:?}"))
        })
        .collect();
    assert!(
        parts.len() == 3,
        "BENCH_VALIDATE_THRESHOLDS wants cov,alow,ahigh; got {raw:?}"
    );
    ThrottleThresholds {
        coverage: parts[0],
        accuracy_low: parts[1],
        accuracy_high: parts[2],
    }
}

fn total_issued(stats: &RunStats) -> u64 {
    stats.prefetchers.iter().map(|p| p.issued).sum()
}

/// The CDP/ECDP prefetcher sits behind the stream prefetcher in the
/// paired systems' registration order.
const CDP_INDEX: usize = 1;

fn ecdp_prunes_cdp(lab: &Lab, name: &str, input: InputSet) -> Result<String, String> {
    let cdp = lab
        .try_run_on(name, input, SystemKind::StreamCdp)
        .map_err(|e| format!("stream+cdp run failed: {e}"))?;
    let ecdp = lab
        .try_run_on(name, input, SystemKind::StreamEcdp)
        .map_err(|e| format!("stream+ecdp run failed: {e}"))?;
    let (c, e) = (&cdp.prefetchers[CDP_INDEX], &ecdp.prefetchers[CDP_INDEX]);
    if e.issued > c.issued {
        return Err(format!(
            "ECDP issued {} > raw CDP {} content prefetches",
            e.issued, c.issued
        ));
    }
    if e.accuracy() < c.accuracy() - 1e-12 {
        return Err(format!(
            "ECDP accuracy {:.4} < raw CDP {:.4}",
            e.accuracy(),
            c.accuracy()
        ));
    }
    Ok(format!(
        "issued {} <= {}, accuracy {:.4} >= {:.4}",
        e.issued,
        c.issued,
        e.accuracy(),
        c.accuracy()
    ))
}

fn aggressiveness_monotone(lab: &Lab, name: &str, input: InputSet) -> Result<String, String> {
    let art = lab.artifacts(name);
    let trace = lab.trace(name, input);
    let mut issued_by_level = Vec::new();
    for level in Aggressiveness::ALL {
        let mut machine = ecdp::SystemBuilder::new(SystemKind::StreamOnly)
            .artifacts(&art)
            .build();
        machine.set_initial_aggressiveness(level);
        let stats = machine
            .run(&trace)
            .map_err(|e| format!("stream-only at {level:?} failed: {e}"))?;
        issued_by_level.push((level, total_issued(&stats)));
    }
    for pair in issued_by_level.windows(2) {
        let ((lo, lo_issued), (hi, hi_issued)) = (pair[0], pair[1]);
        if hi_issued < lo_issued {
            return Err(format!(
                "raising {lo:?} -> {hi:?} dropped issued prefetches {lo_issued} -> {hi_issued}"
            ));
        }
    }
    Ok(format!(
        "issued by level: {}",
        issued_by_level
            .iter()
            .map(|(l, n)| format!("{l:?}={n}"))
            .collect::<Vec<_>>()
            .join(" ")
    ))
}

fn oracle_bounds_ecdp(lab: &Lab, name: &str, input: InputSet) -> Result<String, String> {
    let oracle = lab
        .try_run_on(name, input, SystemKind::OracleLds)
        .map_err(|e| format!("oracle run failed: {e}"))?;
    let ecdp = lab
        .try_run_on(name, input, SystemKind::StreamEcdpThrottled)
        .map_err(|e| format!("ecdp run failed: {e}"))?;
    if oracle.l2_lds_misses > ecdp.l2_lds_misses {
        return Err(format!(
            "oracle left {} LDS misses, more than ECDP's {} — oracle must upper-bound coverage",
            oracle.l2_lds_misses, ecdp.l2_lds_misses
        ));
    }
    Ok(format!(
        "LDS misses: oracle {} <= ecdp {}",
        oracle.l2_lds_misses, ecdp.l2_lds_misses
    ))
}

fn throttle_bounded_bandwidth(lab: &Lab, name: &str, input: InputSet) -> Result<String, String> {
    let art = lab.artifacts(name);
    let trace = lab.trace(name, input);
    let mut details = Vec::new();
    for (unthrottled, throttled) in [
        (SystemKind::StreamCdp, SystemKind::StreamCdpThrottled),
        (SystemKind::StreamEcdp, SystemKind::StreamEcdpThrottled),
    ] {
        // Coordinated throttling can only move each prefetcher within
        // the Table 2 level ladder, so the throttled run interpolates
        // between the static per-prefetcher level assignments of its
        // unthrottled twin. Its bus traffic must stay within the
        // envelope of those static corners. (A single all-aggressive
        // corner is NOT an upper bound: throttling the stream
        // prefetcher down exposes misses the content prefetcher then
        // chases, so the hybrid's worst case is a *mixed* corner like
        // conservative-stream × aggressive-CDP.)
        let mut envelope = 0u64;
        let mut corner = (Aggressiveness::Aggressive, Aggressiveness::Aggressive);
        for stream_level in Aggressiveness::ALL {
            for cdp_level in Aggressiveness::ALL {
                let mut machine = ecdp::SystemBuilder::new(unthrottled)
                    .artifacts(&art)
                    .build();
                machine
                    .set_prefetcher_aggressiveness(0, stream_level)
                    .set_prefetcher_aggressiveness(CDP_INDEX, cdp_level);
                let stats = machine.run(&trace).map_err(|e| {
                    format!(
                        "{} at ({stream_level:?},{cdp_level:?}) failed: {e}",
                        unthrottled.label()
                    )
                })?;
                if stats.bus_transfers > envelope {
                    envelope = stats.bus_transfers;
                    corner = (stream_level, cdp_level);
                }
            }
        }
        let thr = lab
            .try_run_on(name, input, throttled)
            .map_err(|e| format!("{} run failed: {e}", throttled.label()))?;
        let bound = (envelope as f64 * (1.0 + PAIR_TOLERANCE)).ceil() as u64;
        if thr.bus_transfers > bound {
            return Err(format!(
                "{} used {} bus transfers, above the static-level envelope {} of {} \
                 (worst corner {:?}, +{:.0}% slack)",
                throttled.label(),
                thr.bus_transfers,
                envelope,
                unthrottled.label(),
                corner,
                PAIR_TOLERANCE * 100.0
            ));
        }
        details.push(format!(
            "{} {} <= envelope {} ({} corner {:?})",
            throttled.label(),
            thr.bus_transfers,
            envelope,
            unthrottled.label(),
            corner
        ));
    }
    Ok(details.join(", "))
}

fn table3_rederivation(lab: &Lab, name: &str, input: InputSet) -> Result<String, String> {
    let thresholds = thresholds_from_env();
    // The default-size L2 spans few (on the test input: zero) feedback
    // intervals, which would make this property vacuous. Run the
    // throttled system once with the shrunk L2 / short intervals the
    // observability tests use, so every workload produces a dense
    // Table 3 decision sequence to re-derive.
    let mut cfg = sim_core::MachineConfig::default();
    cfg.l2.bytes = 64 * 1024;
    cfg.interval_evictions = 128;
    let art = lab.artifacts(name);
    let run = ecdp::SystemBuilder::new(SystemKind::StreamEcdpThrottled)
        .artifacts(&art)
        .config(cfg)
        .observe(sim_core::ObsConfig::enabled())
        .run(&lab.trace(name, input))
        .map_err(|e| format!("observed run failed: {e}"))?;
    let trace = run
        .trace
        .ok_or("observed run returned no trace".to_string())?;
    if trace.transitions.is_empty() {
        return Err("no throttle transitions recorded even at short intervals".into());
    }
    let mut checked = 0usize;
    let mut offending = Vec::new();
    for t in &trace.transitions {
        checked += 1;
        if let Err(e) = rederive_transition(t, &thresholds) {
            offending.push(format!(
                "interval {} prefetcher {}: {e}",
                t.interval, t.prefetcher
            ));
        }
        if let Err(e) = check_transition_step(t) {
            offending.push(format!(
                "interval {} prefetcher {}: {e}",
                t.interval, t.prefetcher
            ));
        }
        if offending.len() >= 8 {
            offending.push("...".into());
            break;
        }
    }
    if offending.is_empty() {
        Ok(format!("{checked} transitions re-derived, all match"))
    } else {
        Err(offending.join("; "))
    }
}

type PropertyFn = fn(&Lab, &str, InputSet) -> Result<String, String>;

/// The paired-config properties of the conformance suite, in execution
/// order.
pub const PROPERTIES: [(&str, PropertyFn); 5] = [
    ("ecdp-prunes-cdp", ecdp_prunes_cdp),
    ("aggressiveness-monotone", aggressiveness_monotone),
    ("oracle-bounds-ecdp", oracle_bounds_ecdp),
    ("throttle-bounded-bandwidth", throttle_bounded_bandwidth),
    ("table3-rederivation", table3_rederivation),
];

/// Runs one property on one workload, converting panics (e.g. injected
/// faults) into failed results instead of aborting the gate.
fn run_property(
    lab: &Lab,
    property: &str,
    f: PropertyFn,
    name: &str,
    input: InputSet,
) -> PropertyResult {
    let outcome = catch_unwind(AssertUnwindSafe(|| f(lab, name, input)));
    let (passed, detail) = match outcome {
        Ok(Ok(detail)) => (true, detail),
        Ok(Err(detail)) => (false, detail),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            (false, format!("panicked: {msg}"))
        }
    };
    PropertyResult {
        property: property.to_string(),
        workload: name.to_string(),
        passed,
        detail,
    }
}

/// Runs the full conformance suite: every [`PROPERTIES`] entry on every
/// workload, one worker thread per workload (cells are cached in `lab`,
/// so paired configs shared between properties simulate once).
pub fn run_conformance(lab: &Lab, names: &[String], input: InputSet) -> ValidateReport {
    let mut results = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = names
            .iter()
            .map(|name| {
                scope.spawn(move || {
                    PROPERTIES
                        .iter()
                        .map(|(prop, f)| run_property(lab, prop, *f, name, input))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(rs) => results.extend(rs),
                Err(_) => results.push(PropertyResult {
                    property: "worker".into(),
                    workload: "?".into(),
                    passed: false,
                    detail: "conformance worker thread panicked".into(),
                }),
            }
        }
    });
    // Deterministic report order regardless of thread scheduling.
    results.sort_by(|a, b| {
        a.workload
            .cmp(&b.workload)
            .then_with(|| a.property.cmp(&b.property))
    });
    ValidateReport { results }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn report() -> ValidateReport {
        ValidateReport {
            results: vec![
                PropertyResult {
                    property: "ecdp-prunes-cdp".into(),
                    workload: "mst".into(),
                    passed: true,
                    detail: "issued 10 <= 20".into(),
                },
                PropertyResult {
                    property: "table3-rederivation".into(),
                    workload: "mst".into(),
                    passed: false,
                    detail: "interval 3 prefetcher 1: mismatch".into(),
                },
            ],
        }
    }

    #[test]
    fn report_json_round_trips() {
        let r = report();
        let text = r.to_json().to_string_pretty();
        let back = ValidateReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        assert!(!back.passed());
        assert_eq!(back.failures().len(), 1);
    }

    #[test]
    fn report_schema_is_stable() {
        // Pins the serialized field layout of schema v1; any change must
        // bump VALIDATE_SCHEMA_VERSION.
        let j = report().to_json();
        assert_eq!(j.get("schema_version").unwrap().as_u64().unwrap(), 1);
        assert!(j.get("config_hash").unwrap().as_str().is_some());
        assert_eq!(j.get("passed"), Some(&Json::Bool(false)));
        let first = &j.get("results").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            first.to_string_compact(),
            "{\"property\":\"ecdp-prunes-cdp\",\"workload\":\"mst\",\
             \"passed\":true,\"detail\":\"issued 10 <= 20\"}"
        );
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let mut j = report().to_json();
        if let Json::Obj(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "schema_version" {
                    *v = Json::Num(99.0);
                }
            }
        }
        assert!(ValidateReport::from_json(&j).is_none());
    }

    #[test]
    fn default_thresholds_without_env() {
        // Serial test envs may set the var; only assert the default path.
        if std::env::var("BENCH_VALIDATE_THRESHOLDS").is_err() {
            assert_eq!(thresholds_from_env(), ThrottleThresholds::default());
        }
    }
}
